# Developer entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH — no install step required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint test bench all

all: lint test

# Architecture gate: layering (Fig. 2-1), type-id reservations
# (Sec. 5.2), determinism, and exception hygiene over src/repro.
lint:
	$(PYTHON) -m repro.analysis src/repro

# Tier-1 suite (includes tests/test_static_analysis.py, which re-runs
# the lint gate and the seeded-violation fixtures).
test:
	$(PYTHON) -m pytest -x -q

# Experiment benches; tables land in benchmarks/results/.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
