# Developer entry points.  Everything runs from the repo root with the
# in-tree sources on PYTHONPATH — no install step required.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: lint verify test bench bench-smoke bench-scale bench-flow \
    bench-dispatch bench-naming chaos all

all: lint test

# Architecture gate: layering (Fig. 2-1), type-id reservations
# (Sec. 5.2), determinism, exception hygiene, and protocol model
# checks over the whole tree (fixture trees excluded — they violate on
# purpose).  Waivers are ratcheted against the committed baseline, and
# results are cached on file content hashes so an unchanged tree
# re-lints in well under a second.  See ANALYSIS.md for the catalogue.
lint:
	$(PYTHON) -m repro.analysis src/repro tests benchmarks \
	    --exclude tests/fixtures \
	    --cache .ntcslint-cache.json \
	    --max-waivers $$(cat .ntcslint-baseline)

# Model stage alone: extract the protocol state machines and wire
# handshake, run the MDL deadlock/livelock checks.  Add
# `--trace FILE.jsonl` to replay recorded netsim wire traces.
verify:
	$(PYTHON) -m repro.analysis verify src/repro

# Tier-1 suite (includes tests/test_static_analysis.py, which re-runs
# the lint gate and the seeded-violation fixtures).
test:
	$(PYTHON) -m pytest -x -q

# Chaos suite (PROTOCOL.md §10): deterministic fault schedules,
# gateway/Name-Server crash recovery, FaultPlan edge cases, and
# property-based random schedules.  NTCS_CHAOS_SEED offsets the
# scripted scenarios' chaos seeds so CI sweeps several seeds; a failing
# random schedule writes its replay JSON into chaos-failures/.
chaos:
	$(PYTHON) -m pytest tests/test_chaos.py tests/test_property_chaos.py \
	    tests/test_faults_unit.py -q

# Experiment benches; tables land in benchmarks/results/.
bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Fast-path microbench subset (<60 s): regenerates BENCH_pipeline.json
# and BENCH_naming.json at the repo root, enforces the speedup floors
# (header codec, forwarding, hot resolution, URSA cold start) and the
# pinned E5-internet invariants, then re-validates the row schemas.
# CI runs this as the bench-smoke job.
bench-smoke:
	$(PYTHON) benchmarks/microbench.py
	$(PYTHON) benchmarks/microbench.py --check

# Event-core scale sweep (PROTOCOL.md §11): regenerates
# BENCH_scale.json at the repo root — timer wheel vs the pre-change
# binary heap at 10/100/1k/10k modules — and enforces the drain
# throughput floors (>=10x at 10k modules, >=3x at 1k).
# CI runs this as the bench-scale job.
bench-scale:
	$(PYTHON) benchmarks/microbench.py --scale
	$(PYTHON) benchmarks/microbench.py --check --scale

# Flow-control overload bench (PROTOCOL.md §12): regenerates
# BENCH_flow.json at the repo root — fast producer vs slow consumer
# through a gateway, flow control on vs off — and enforces the
# bounded-queue ceiling (<= the credit window), the depth ratio
# (uncontrolled >=4x deeper) and the goodput floor.
# CI runs this as the bench-flow job.
bench-flow:
	$(PYTHON) benchmarks/microbench.py --flow
	$(PYTHON) benchmarks/microbench.py --check --flow

# Sharded-naming sweep (PROTOCOL.md §14): regenerates
# BENCH_naming.json at the repo root — the control-plane benches plus
# the 1/2/4-shard bulk-load of 10^5 modules and the million-name ring
# placement sweep — and enforces the scale floors (full record count
# per configuration, resolve cost within 1.5x of single-shard, ring
# balance inside the §14 bound) and the pinned E5 establishment
# counts.  CI runs this as the bench-naming job.
bench-naming:
	$(PYTHON) benchmarks/microbench.py --naming
	$(PYTHON) benchmarks/microbench.py --check --naming

# Frame-train dispatch sweep (PROTOCOL.md §13): regenerates
# BENCH_dispatch.json at the repo root — batched delivery off vs on
# over the 10/1k/10k fan-in topologies plus the real-stack gateway
# burst — and enforces the dispatch floors (>=3x fewer scheduler
# events per delivered message and >=2x faster drain at 10k modules)
# and the pinned E5 establishment counts with trains on.
# CI runs this as the bench-dispatch job.
bench-dispatch:
	$(PYTHON) benchmarks/microbench.py --dispatch
	$(PYTHON) benchmarks/microbench.py --check --dispatch
