"""Native interprocess-communication systems (IPCSs).

The paper builds the NTCS "on top of the existing interprocess
communication system on each machine" (Sec. 1) — Unix TCP on the VAX
and Sun systems, the MBX mailbox facility on Apollo.  This package
provides both flavours over the simulated networks:

* :class:`SimTcpIpcs` — connection-oriented **byte streams** addressed
  by (host, port), with a SYN/SYNACK handshake, per-segment
  acknowledgement and bounded retransmission.  Receivers may see sends
  coalesced or fragmented, so users must frame their own messages.
* :class:`SimMbxIpcs` — Apollo-style **mailboxes** addressed by
  pathname ("//host/path"), with record (message-boundary-preserving)
  semantics and no retransmission: a lost record aborts the channel.

The two deliberately differ in addressing, semantics and failure
behaviour; unifying them behind one interface is exactly the job of the
NTCS ND-Layer (Sec. 2.2).
"""

from repro.ipcs.base import Channel, Ipcs, Listener
from repro.ipcs.tcp import SimTcpIpcs
from repro.ipcs.mbx import SimMbxIpcs

__all__ = ["Channel", "Ipcs", "Listener", "SimTcpIpcs", "SimMbxIpcs"]
