"""Abstract IPCS interface shared by both simulated native IPC systems.

This is *not* the paper's STD-IF — it is the messy, machine-specific
layer below it.  Each concrete IPCS exposes the idioms of its system
(ports vs mailbox pathnames, streams vs records); the ND-Layer drivers
translate these into the uniform STD-IF virtual circuits.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ChannelClosed
from repro.machine.machine import Machine
from repro.machine.process import SimProcess
from repro.netsim.network import Interface, Network


class Channel:
    """One established full-duplex channel.

    Concrete IPCSs create these; users interact through this class.
    ``send`` queues data for the peer; delivery invokes the receive
    handler.  When the channel dies (peer close, process death, network
    failure), the close handler runs exactly once with a reason string.
    """

    def __init__(self, ipcs: "Ipcs", channel_id: int, owner: SimProcess):
        self.ipcs = ipcs
        self.channel_id = channel_id
        self.owner = owner
        self.open = False
        self._receive_handler: Optional[Callable[[bytes], None]] = None
        self._batch_receive_handler: \
            Optional[Callable[[List[bytes]], None]] = None
        self._close_handler: Optional[Callable[[str], None]] = None
        self._closed_reason: Optional[str] = None
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- user side ----------------------------------------------------------

    def set_receive_handler(self, handler: Callable[[bytes], None]) -> None:
        """Install the callback invoked per delivered chunk/record."""
        self._receive_handler = handler

    def set_batch_receive_handler(
            self, handler: Callable[[List[bytes]], None]) -> None:
        """Install an optional callback for a frame train's worth of
        chunks/records delivered together (PROTOCOL.md §13).  Purely an
        efficiency contract: the handler must process the chunks as
        the per-chunk handler would, in list order.  Without one, a
        batch falls back to per-chunk upcalls."""
        self._batch_receive_handler = handler

    def set_close_handler(self, handler: Callable[[str], None]) -> None:
        """Install the callback invoked once when the channel dies."""
        self._close_handler = handler
        if self._closed_reason is not None:
            # Already dead: report immediately so no close is ever missed.
            handler(self._closed_reason)

    def send(self, data: bytes) -> None:
        """Queue ``data`` for the peer.  Raises ChannelClosed if dead."""
        if not self.open:
            raise ChannelClosed(
                f"{self.ipcs.protocol} channel {self.channel_id}: "
                f"{self._closed_reason or 'not open'}"
            )
        self.bytes_sent += len(data)
        self.ipcs._channel_send(self, data)

    def close(self) -> None:
        """Locally close the channel; the peer is notified."""
        if self.open:
            self.ipcs._channel_close(self, "closed by local end", notify_peer=True)

    # -- IPCS side ------------------------------------------------------------

    def _deliver(self, data: bytes) -> None:
        if not self.open:
            return
        self.bytes_received += len(data)
        if self._receive_handler is not None:
            self._receive_handler(data)

    def _deliver_many(self, chunks: List[bytes]) -> None:
        """Deliver a train's worth of chunks in one call.  The open
        check runs once up front and again only if a handler closes the
        channel mid-train (matching what per-chunk delivery would do)."""
        if not self.open:
            return
        batch = self._batch_receive_handler
        if batch is not None and len(chunks) > 1:
            self.bytes_received += sum(len(c) for c in chunks)
            batch(chunks)
            return
        for chunk in chunks:
            if not self.open:
                return
            self.bytes_received += len(chunk)
            if self._receive_handler is not None:
                self._receive_handler(chunk)

    def _mark_closed(self, reason: str) -> None:
        if self._closed_reason is not None:
            return
        self.open = False
        self._closed_reason = reason
        if self._close_handler is not None:
            self._close_handler(reason)

    @property
    def closed_reason(self) -> Optional[str]:
        return self._closed_reason

    def __repr__(self) -> str:
        state = "open" if self.open else f"closed({self._closed_reason})"
        return f"Channel({self.ipcs.protocol}#{self.channel_id}, {state})"


class Listener:
    """A passive endpoint other processes can connect to.

    Its :meth:`address_blob` is the machine/network-dependent physical
    address string that the naming service stores *uninterpreted*
    (Sec. 3.2) and that only the matching ND-Layer driver can parse.
    """

    def __init__(self, ipcs: "Ipcs", binding: str, owner: SimProcess):
        self.ipcs = ipcs
        self.binding = binding
        self.owner = owner
        self.open = True
        self.on_accept: Optional[Callable[[Channel], None]] = None

    def address_blob(self) -> str:
        """The physical-address blob for this endpoint (uninterpreted upstream)."""
        return self.ipcs.address_blob_for(self.binding)

    def close(self) -> None:
        """Close this endpoint."""
        if self.open:
            self.open = False
            self.ipcs._listener_closed(self)

    def __repr__(self) -> str:
        return f"Listener({self.address_blob()!r}, {'open' if self.open else 'closed'})"


class Ipcs:
    """Base class for the simulated native IPCSs.

    Concrete subclasses implement:
      * :meth:`listen` — create a passive endpoint,
      * :meth:`connect` — blocking active open,
      * wire handling over the network interface,
      * :meth:`address_blob_for` / :meth:`parse_blob`.
    """

    protocol = "abstract"

    def __init__(self, machine: Machine, network: Network):
        self.machine = machine
        self.network = network
        self.iface: Interface = machine.interface(network.name)
        self.iface.bind_protocol(self.protocol, self._on_datagram)
        self.iface.bind_protocol_batch(self.protocol, self._on_datagram_many)
        machine.register_ipcs(network.name, self.protocol, self)
        # Local FIFO for this endpoint's immediate work (rx coalescing
        # and the like): posts land in O(1) and only the queue head is
        # registered with the global timer wheel, so the idle majority
        # of a large topology is never visited (PROTOCOL.md §11).
        self.run_queue = machine.scheduler.run_queue(
            f"{machine.name}/{network.name}/{self.protocol}")

    @property
    def scheduler(self):
        return self.machine.scheduler

    # -- to implement -------------------------------------------------------

    def listen(self, owner: SimProcess, binding: Optional[str] = None) -> Listener:
        """Create a passive endpoint; see concrete IPCS for semantics."""
        raise NotImplementedError

    def connect(self, owner: SimProcess, address_blob: str, timeout: float = 5.0) -> Channel:
        """Blocking active open to a physical address blob."""
        raise NotImplementedError

    def address_blob_for(self, binding: str) -> str:
        """Format the physical-address blob for a local binding."""
        raise NotImplementedError

    def _on_datagram(self, datagram) -> None:
        raise NotImplementedError

    def _on_datagram_many(self, datagrams: List) -> None:
        """A frame train's worth of datagrams for this IPCS.  The base
        implementation replays them one by one; concrete IPCSs override
        it to amortize per-frame work (PROTOCOL.md §13)."""
        for datagram in datagrams:
            self._on_datagram(datagram)

    def _channel_send(self, channel: Channel, data: bytes) -> None:
        raise NotImplementedError

    def _channel_close(self, channel: Channel, reason: str, notify_peer: bool) -> None:
        raise NotImplementedError

    def _listener_closed(self, listener: Listener) -> None:
        pass
