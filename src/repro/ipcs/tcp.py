"""Simulated Unix-TCP-style IPCS: byte streams over (host, port).

Faithful-to-purpose TCP behaviours the ND-Layer driver must cope with:

* active/passive open with SYN / SYNACK (and RST on refusal),
* **byte-stream semantics** — contiguous segments are coalesced into a
  single delivery, so receivers must frame their own messages,
* per-segment acknowledgement with bounded retransmission; exhausting
  retries aborts the channel ("the link failed"),
* RST notification when the peer process dies while its host survives;
  silent loss (caught by retransmission timeout) when the host crashes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import AddressInUse, ConnectionRefused, NetworkUnreachable
from repro.ipcs.base import Channel, Ipcs, Listener
from repro.machine.machine import Machine
from repro.machine.process import SimProcess
from repro.netsim.network import Datagram, Network
from repro.util.idgen import SequenceGenerator

_SYN = "SYN"
_SYNACK = "SYNACK"
_RST = "RST"
_DATA = "DATA"
_ACK = "ACK"
_CLOSE = "CLOSE"


class _TcpConn:
    """Book-keeping for one end of a TCP connection."""

    __slots__ = (
        "local_id", "remote_id", "remote_host", "channel", "state",
        "next_send_seq", "next_recv_seq", "unacked", "out_of_order",
        "syn_timer", "syn_tries", "dst_port", "fail_reason", "rx_pending",
        "rx_flush_scheduled",
    )

    def __init__(self, local_id: int, remote_host: str, channel: Channel):
        self.local_id = local_id
        self.remote_id: Optional[int] = None
        self.remote_host = remote_host
        self.channel = channel
        self.state = "NEW"
        self.next_send_seq = 0
        self.next_recv_seq = 0
        self.unacked: Dict[int, Tuple[object, int, bytes]] = {}
        self.out_of_order: Dict[int, bytes] = {}
        self.syn_timer = None
        self.syn_tries = 0
        self.dst_port: Optional[int] = None
        self.fail_reason = ""
        self.rx_pending: list = []
        self.rx_flush_scheduled = False


class SimTcpIpcs(Ipcs):
    """The TCP-like native IPCS of one machine on one network."""

    protocol = "tcp"
    MAX_RETRIES = 5

    def __init__(self, machine: Machine, network: Network, ephemeral_base: int = 32768):
        super().__init__(machine, network)
        self._listeners: Dict[int, Listener] = {}
        self._conns: Dict[int, _TcpConn] = {}
        self._by_peer: Dict[Tuple[str, int], _TcpConn] = {}
        self._conn_ids = SequenceGenerator()
        self._ephemeral = SequenceGenerator(ephemeral_base)
        # The retransmission timeout must cover serialization delay on
        # bandwidth-limited networks or ACKs lose the race to the timer.
        serialization_headroom = (
            65536 / network.bandwidth if network.bandwidth else 0.0
        )
        self.rto = network.latency * 4 + 0.005 + serialization_headroom
        self.segments_sent = 0
        self.segments_retransmitted = 0
        self.close_notify_failures = 0

    # -- addressing -----------------------------------------------------------

    def address_blob_for(self, binding: str) -> str:
        """Blob for a port: tcp:<network>:<host>:<port>."""
        return f"tcp:{self.network.name}:{self.iface.host}:{binding}"

    @staticmethod
    def parse_blob(blob: str) -> Tuple[str, str, int]:
        """Split a tcp address blob into (network, host, port)."""
        kind, network, host, port = blob.split(":")
        if kind != "tcp":
            raise ValueError(f"not a tcp address blob: {blob!r}")
        return network, host, int(port)

    # -- passive open ------------------------------------------------------------

    def listen(self, owner: SimProcess, binding: Optional[str] = None) -> Listener:
        """Listen on a port (ephemeral when binding is None)."""
        port = int(binding) if binding is not None else self._ephemeral.next()
        if port in self._listeners:
            raise AddressInUse(f"tcp port {port} on {self.iface.host}")
        listener = Listener(self, str(port), owner)
        self._listeners[port] = listener
        owner.at_kill(listener.close)
        return listener

    def _listener_closed(self, listener: Listener) -> None:
        self._listeners.pop(int(listener.binding), None)

    # -- active open ------------------------------------------------------------

    def connect(self, owner: SimProcess, address_blob: str, timeout: float = 5.0) -> Channel:
        """Blocking active open (SYN/SYNACK) to a tcp blob."""
        network, host, port = self.parse_blob(address_blob)
        if network != self.network.name:
            raise NetworkUnreachable(
                f"tcp IPCS on {self.network.name} cannot reach network {network}"
            )
        local_id = self._conn_ids.next()
        channel = Channel(self, local_id, owner)
        conn = _TcpConn(local_id, host, channel)
        conn.state = "SYN_SENT"
        conn.dst_port = port
        self._conns[local_id] = conn
        owner.at_kill(channel.close)
        self._send_syn(conn)
        self.scheduler.pump_until(
            lambda: conn.state in ("ESTABLISHED", "FAILED"),
            timeout=timeout,
            what=f"tcp connect {address_blob}",
        )
        if conn.state != "ESTABLISHED":
            self._drop_conn(conn)
            channel._mark_closed("connect failed")
            raise ConnectionRefused(
                f"tcp connect to {address_blob}: {conn.fail_reason or 'timed out'}"
            )
        channel.open = True
        return channel

    def _send_syn(self, conn: _TcpConn) -> None:
        conn.syn_tries += 1
        if conn.syn_tries > self.MAX_RETRIES:
            conn.state = "FAILED"
            conn.fail_reason = "timed out"
            return
        self._transmit(conn.remote_host, (_SYN, self.iface.host, conn.dst_port, conn.local_id))
        conn.syn_timer = self.scheduler.schedule(
            self.rto, lambda: self._syn_timeout(conn), note="tcp syn rto"
        )

    def _syn_timeout(self, conn: _TcpConn) -> None:
        if conn.state == "SYN_SENT":
            self.segments_retransmitted += 1
            self._send_syn(conn)

    # -- data transfer ----------------------------------------------------

    def _channel_send(self, channel: Channel, data: bytes) -> None:
        conn = self._conns.get(channel.channel_id)
        if conn is None or conn.state != "ESTABLISHED":
            return
        seq = conn.next_send_seq
        conn.next_send_seq += 1
        self._send_segment(conn, seq, data, tries=1)

    def _send_segment(self, conn: _TcpConn, seq: int, data: bytes, tries: int) -> None:
        self.segments_sent += 1
        self._transmit(conn.remote_host, (_DATA, conn.remote_id, seq, data))
        timer = self.scheduler.schedule(
            self.rto,
            lambda: self._segment_timeout(conn, seq),
            note=f"tcp rto seq={seq}",
        )
        conn.unacked[seq] = (timer, tries, data)

    def _segment_timeout(self, conn: _TcpConn, seq: int) -> None:
        entry = conn.unacked.pop(seq, None)
        if entry is None or conn.state != "ESTABLISHED":
            return
        _, tries, data = entry
        if tries >= self.MAX_RETRIES:
            self._abort(conn, "retransmission timeout", notify_peer=False)
            return
        self.segments_retransmitted += 1
        self._send_segment(conn, seq, data, tries + 1)

    # -- close / abort -----------------------------------------------------

    def _channel_close(self, channel: Channel, reason: str, notify_peer: bool) -> None:
        conn = self._conns.get(channel.channel_id)
        if conn is None:
            channel._mark_closed(reason)
            return
        self._abort(conn, reason, notify_peer=notify_peer)

    def _abort(self, conn: _TcpConn, reason: str, notify_peer: bool) -> None:
        if conn.state == "CLOSED":
            return
        was_established = conn.state == "ESTABLISHED"
        if was_established:
            # Data that arrived before the close is deliverable — flush
            # it ahead of the close notification, as a real stack would.
            self._flush_rx(conn)
        conn.state = "CLOSED"
        for timer, _, _ in conn.unacked.values():
            timer.cancel()
        conn.unacked.clear()
        if conn.syn_timer is not None:
            conn.syn_timer.cancel()
        if notify_peer and was_established and conn.remote_id is not None:
            try:
                self._transmit(conn.remote_host, (_CLOSE, conn.remote_id))
            except NetworkUnreachable:
                # Peer unreachable: it will time the connection out.
                self.close_notify_failures += 1
        self._drop_conn(conn)
        conn.channel._mark_closed(reason)

    def _drop_conn(self, conn: _TcpConn) -> None:
        self._conns.pop(conn.local_id, None)
        for key, value in list(self._by_peer.items()):
            if value is conn:
                del self._by_peer[key]

    # -- wire ------------------------------------------------------------------

    def _transmit(self, dst_host: str, payload: tuple) -> None:
        # Frame size for the bandwidth model: a fixed header share plus
        # any data bytes riding in the segment.
        size = 64 + sum(len(part) for part in payload
                        if isinstance(part, (bytes, bytearray)))
        self.iface.send(dst_host, self.protocol, payload, size=size)

    def _on_datagram(self, datagram: Datagram) -> None:
        kind = datagram.payload[0]
        if kind == _SYN:
            self._handle_syn(datagram)
        elif kind == _SYNACK:
            self._handle_synack(datagram)
        elif kind == _RST:
            self._handle_rst(datagram)
        elif kind == _DATA:
            self._handle_data(datagram)
        elif kind == _ACK:
            self._handle_ack(datagram)
        elif kind == _CLOSE:
            self._handle_close(datagram)

    def _on_datagram_many(self, datagrams) -> None:
        """A frame train (PROTOCOL.md §13): runs of DATA segments for
        one connection amortize the connection lookup, the in-order
        reassembly scan, and the rx-flush scheduling decision.  Every
        segment is still acknowledged individually, in arrival order —
        the wire is unchanged (the ACK burst coalesces into its own
        train on the way back)."""
        i = 0
        n = len(datagrams)
        while i < n:
            payload = datagrams[i].payload
            if payload[0] != _DATA:
                self._on_datagram(datagrams[i])
                i += 1
                continue
            local_id = payload[1]
            j = i
            while (j < n and datagrams[j].payload[0] == _DATA
                   and datagrams[j].payload[1] == local_id):
                j += 1
            conn = self._conns.get(local_id)
            if conn is not None and conn.state == "ESTABLISHED":
                out_of_order = conn.out_of_order
                for k in range(i, j):
                    _, _, seq, data = datagrams[k].payload
                    self._transmit(conn.remote_host,
                                   (_ACK, conn.remote_id, seq))
                    if seq >= conn.next_recv_seq:
                        out_of_order[seq] = data
                while conn.next_recv_seq in out_of_order:
                    conn.rx_pending.append(
                        out_of_order.pop(conn.next_recv_seq))
                    conn.next_recv_seq += 1
                if conn.rx_pending and not conn.rx_flush_scheduled:
                    conn.rx_flush_scheduled = True
                    self.run_queue.post(lambda c=conn: self._flush_rx(c),
                                        note="tcp rx flush")
            i = j

    def _handle_syn(self, datagram: Datagram) -> None:
        _, src_host, dst_port, remote_conn_id = datagram.payload
        peer_key = (src_host, remote_conn_id)
        existing = self._by_peer.get(peer_key)
        if existing is not None:
            # Duplicate SYN (our SYNACK was lost): re-answer, don't re-open.
            self._transmit(src_host, (_SYNACK, remote_conn_id, existing.local_id))
            return
        listener = self._listeners.get(dst_port)
        if listener is None or not listener.open:
            self._transmit(src_host, (_RST, remote_conn_id))
            return
        local_id = self._conn_ids.next()
        channel = Channel(self, local_id, listener.owner)
        conn = _TcpConn(local_id, src_host, channel)
        conn.remote_id = remote_conn_id
        conn.state = "ESTABLISHED"
        channel.open = True
        self._conns[local_id] = conn
        self._by_peer[peer_key] = conn
        listener.owner.at_kill(channel.close)
        self._transmit(src_host, (_SYNACK, remote_conn_id, local_id))
        if listener.on_accept is not None:
            listener.on_accept(channel)

    def _handle_synack(self, datagram: Datagram) -> None:
        _, local_id, remote_id = datagram.payload
        conn = self._conns.get(local_id)
        if conn is None or conn.state != "SYN_SENT":
            return
        if conn.syn_timer is not None:
            conn.syn_timer.cancel()
        conn.remote_id = remote_id
        conn.state = "ESTABLISHED"
        conn.channel.open = True

    def _handle_rst(self, datagram: Datagram) -> None:
        _, local_id = datagram.payload
        conn = self._conns.get(local_id)
        if conn is not None and conn.state == "SYN_SENT":
            if conn.syn_timer is not None:
                conn.syn_timer.cancel()
            conn.state = "FAILED"
            conn.fail_reason = "refused"

    def _handle_data(self, datagram: Datagram) -> None:
        _, local_id, seq, data = datagram.payload
        conn = self._conns.get(local_id)
        if conn is None or conn.state != "ESTABLISHED":
            return
        self._transmit(conn.remote_host, (_ACK, conn.remote_id, seq))
        if seq < conn.next_recv_seq:
            return  # duplicate, already delivered
        conn.out_of_order[seq] = data
        while conn.next_recv_seq in conn.out_of_order:
            conn.rx_pending.append(conn.out_of_order.pop(conn.next_recv_seq))
            conn.next_recv_seq += 1
        if conn.rx_pending and not conn.rx_flush_scheduled:
            # Byte-stream semantics: defer delivery one scheduler tick so
            # segments arriving at the same instant coalesce into one
            # chunk — receivers must frame their own messages.
            conn.rx_flush_scheduled = True
            self.run_queue.post(lambda: self._flush_rx(conn), note="tcp rx flush")

    def _flush_rx(self, conn: _TcpConn) -> None:
        conn.rx_flush_scheduled = False
        if not conn.rx_pending or conn.state != "ESTABLISHED":
            return
        chunk = b"".join(conn.rx_pending)
        conn.rx_pending.clear()
        conn.channel._deliver(chunk)

    def _handle_ack(self, datagram: Datagram) -> None:
        _, local_id, seq = datagram.payload
        conn = self._conns.get(local_id)
        if conn is None:
            return
        entry = conn.unacked.pop(seq, None)
        if entry is not None:
            entry[0].cancel()

    def _handle_close(self, datagram: Datagram) -> None:
        _, local_id = datagram.payload
        conn = self._conns.get(local_id)
        if conn is not None:
            self._abort(conn, "closed by peer", notify_peer=False)
