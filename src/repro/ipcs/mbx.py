"""Simulated Apollo-MBX-style IPCS: record channels to named mailboxes.

Contrasts with :mod:`repro.ipcs.tcp` in every dimension the ND-Layer
must paper over:

* addressing is by **pathname** ("//host/path"), not numeric port,
* **record semantics** — each send is delivered as exactly one record;
  boundaries are preserved, never coalesced,
* no retransmission: each record is acknowledged by the destination's
  mailbox daemon, and a missing acknowledgement aborts the channel
  (the Apollo ring was assumed reliable; failure means the peer died).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import AddressInUse, ConnectionRefused, NetworkUnreachable
from repro.ipcs.base import Channel, Ipcs, Listener
from repro.machine.machine import Machine
from repro.machine.process import SimProcess
from repro.netsim.network import Datagram, Network
from repro.util.idgen import SequenceGenerator

_OPEN = "MBX_OPEN"
_OPEN_ACK = "MBX_OPEN_ACK"
_NAK = "MBX_NAK"
_PUT = "MBX_PUT"
_PUT_ACK = "MBX_PUT_ACK"
_CLOSE = "MBX_CLOSE"


class _MbxConn:
    __slots__ = ("local_id", "remote_id", "remote_host", "channel", "state",
                 "next_seq", "pending_acks")

    def __init__(self, local_id: int, remote_host: str, channel: Channel):
        self.local_id = local_id
        self.remote_id: Optional[int] = None
        self.remote_host = remote_host
        self.channel = channel
        self.state = "NEW"
        self.next_seq = 0
        self.pending_acks: Dict[int, object] = {}


class SimMbxIpcs(Ipcs):
    """The MBX-like native IPCS of one machine on one network."""

    protocol = "mbx"

    def __init__(self, machine: Machine, network: Network):
        super().__init__(machine, network)
        self._mailboxes: Dict[str, Listener] = {}
        self._conns: Dict[int, _MbxConn] = {}
        self._conn_ids = SequenceGenerator()
        self._auto_names = SequenceGenerator()
        serialization_headroom = (
            65536 / network.bandwidth if network.bandwidth else 0.0
        )
        self.ack_timeout = network.latency * 6 + 0.01 + serialization_headroom
        self.records_sent = 0
        self.close_notify_failures = 0

    # -- addressing ---------------------------------------------------------

    def address_blob_for(self, binding: str) -> str:
        """Blob for a mailbox pathname: mbx:<network>://<host><path>."""
        return f"mbx:{self.network.name}://{self.iface.host}{binding}"

    @staticmethod
    def parse_blob(blob: str) -> Tuple[str, str, str]:
        """Split an mbx address blob into (network, host, path)."""
        kind, network, pathname = blob.split(":", 2)
        if kind != "mbx" or not pathname.startswith("//"):
            raise ValueError(f"not an mbx address blob: {blob!r}")
        host, _, path = pathname[2:].partition("/")
        return network, host, "/" + path

    # -- passive open ------------------------------------------------------

    def listen(self, owner: SimProcess, binding: Optional[str] = None) -> Listener:
        """Create a server mailbox (auto-named when binding is None)."""
        path = binding or f"/mbx/auto{self._auto_names.next()}"
        if not path.startswith("/"):
            path = "/" + path
        if path in self._mailboxes:
            raise AddressInUse(f"mailbox {path} on {self.iface.host}")
        listener = Listener(self, path, owner)
        self._mailboxes[path] = listener
        owner.at_kill(listener.close)
        return listener

    def _listener_closed(self, listener: Listener) -> None:
        self._mailboxes.pop(listener.binding, None)

    # -- active open ---------------------------------------------------------

    def connect(self, owner: SimProcess, address_blob: str, timeout: float = 5.0) -> Channel:
        """Blocking open of a mailbox by pathname blob."""
        network, host, path = self.parse_blob(address_blob)
        if network != self.network.name:
            raise NetworkUnreachable(
                f"mbx IPCS on {self.network.name} cannot reach network {network}"
            )
        local_id = self._conn_ids.next()
        channel = Channel(self, local_id, owner)
        conn = _MbxConn(local_id, host, channel)
        conn.state = "OPEN_SENT"
        self._conns[local_id] = conn
        owner.at_kill(channel.close)
        self._transmit(host, (_OPEN, path, local_id))
        self.scheduler.pump_until(
            lambda: conn.state in ("ESTABLISHED", "FAILED"),
            timeout=timeout,
            what=f"mbx open {address_blob}",
        )
        if conn.state != "ESTABLISHED":
            self._conns.pop(local_id, None)
            channel._mark_closed("open failed")
            raise ConnectionRefused(
                f"mbx open {address_blob}: "
                f"{'no such mailbox' if conn.state == 'FAILED' else 'timed out'}"
            )
        channel.open = True
        return channel

    # -- data transfer ----------------------------------------------------

    def _channel_send(self, channel: Channel, data: bytes) -> None:
        conn = self._conns.get(channel.channel_id)
        if conn is None or conn.state != "ESTABLISHED":
            return
        seq = conn.next_seq
        conn.next_seq += 1
        self.records_sent += 1
        self._transmit(conn.remote_host, (_PUT, conn.remote_id, seq, data))
        timer = self.scheduler.schedule(
            self.ack_timeout,
            lambda: self._ack_timeout(conn, seq),
            note=f"mbx ack timeout seq={seq}",
        )
        conn.pending_acks[seq] = timer

    def _ack_timeout(self, conn: _MbxConn, seq: int) -> None:
        if seq in conn.pending_acks and conn.state == "ESTABLISHED":
            # No retransmission in MBX: an unacknowledged record means
            # the peer (or its host) is gone.
            self._abort(conn, "record not acknowledged", notify_peer=False)

    # -- close / abort --------------------------------------------------------

    def _channel_close(self, channel: Channel, reason: str, notify_peer: bool) -> None:
        conn = self._conns.get(channel.channel_id)
        if conn is None:
            channel._mark_closed(reason)
            return
        self._abort(conn, reason, notify_peer=notify_peer)

    def _abort(self, conn: _MbxConn, reason: str, notify_peer: bool) -> None:
        if conn.state == "CLOSED":
            return
        was_established = conn.state == "ESTABLISHED"
        conn.state = "CLOSED"
        for timer in conn.pending_acks.values():
            timer.cancel()
        conn.pending_acks.clear()
        if notify_peer and was_established and conn.remote_id is not None:
            try:
                self._transmit(conn.remote_host, (_CLOSE, conn.remote_id))
            except NetworkUnreachable:
                # Peer unreachable: it will time the connection out.
                self.close_notify_failures += 1
        self._conns.pop(conn.local_id, None)
        conn.channel._mark_closed(reason)

    # -- wire ----------------------------------------------------------------

    def _transmit(self, dst_host: str, payload: tuple) -> None:
        size = 64 + sum(len(part) for part in payload
                        if isinstance(part, (bytes, bytearray)))
        self.iface.send(dst_host, self.protocol, payload, size=size)

    def _on_datagram(self, datagram: Datagram) -> None:
        kind = datagram.payload[0]
        if kind == _OPEN:
            self._handle_open(datagram)
        elif kind == _OPEN_ACK:
            self._handle_open_ack(datagram)
        elif kind == _NAK:
            self._handle_nak(datagram)
        elif kind == _PUT:
            self._handle_put(datagram)
        elif kind == _PUT_ACK:
            self._handle_put_ack(datagram)
        elif kind == _CLOSE:
            self._handle_close(datagram)

    def _on_datagram_many(self, datagrams) -> None:
        """A frame train (PROTOCOL.md §13): runs of PUT records for one
        connection are acknowledged record-by-record (the ACK burst
        coalesces into its own train on the way back) and handed to the
        channel as one batch, boundaries intact."""
        i = 0
        n = len(datagrams)
        while i < n:
            payload = datagrams[i].payload
            if payload[0] != _PUT:
                self._on_datagram(datagrams[i])
                i += 1
                continue
            local_id = payload[1]
            j = i
            while (j < n and datagrams[j].payload[0] == _PUT
                   and datagrams[j].payload[1] == local_id):
                j += 1
            conn = self._conns.get(local_id)
            if conn is not None and conn.state == "ESTABLISHED":
                records = []
                for k in range(i, j):
                    _, _, seq, data = datagrams[k].payload
                    self._transmit(conn.remote_host,
                                   (_PUT_ACK, conn.remote_id, seq))
                    records.append(data)
                conn.channel._deliver_many(records)
            i = j

    def _handle_open(self, datagram: Datagram) -> None:
        _, path, remote_conn_id = datagram.payload
        listener = self._mailboxes.get(path)
        if listener is None or not listener.open:
            self._transmit(datagram.src_host, (_NAK, remote_conn_id))
            return
        local_id = self._conn_ids.next()
        channel = Channel(self, local_id, listener.owner)
        conn = _MbxConn(local_id, datagram.src_host, channel)
        conn.remote_id = remote_conn_id
        conn.state = "ESTABLISHED"
        channel.open = True
        self._conns[local_id] = conn
        listener.owner.at_kill(channel.close)
        self._transmit(datagram.src_host, (_OPEN_ACK, remote_conn_id, local_id))
        if listener.on_accept is not None:
            listener.on_accept(channel)

    def _handle_open_ack(self, datagram: Datagram) -> None:
        _, local_id, remote_id = datagram.payload
        conn = self._conns.get(local_id)
        if conn is None or conn.state != "OPEN_SENT":
            return
        conn.remote_id = remote_id
        conn.state = "ESTABLISHED"
        conn.channel.open = True

    def _handle_nak(self, datagram: Datagram) -> None:
        _, local_id = datagram.payload
        conn = self._conns.get(local_id)
        if conn is not None and conn.state == "OPEN_SENT":
            conn.state = "FAILED"

    def _handle_put(self, datagram: Datagram) -> None:
        _, local_id, seq, data = datagram.payload
        conn = self._conns.get(local_id)
        if conn is None or conn.state != "ESTABLISHED":
            return
        self._transmit(conn.remote_host, (_PUT_ACK, conn.remote_id, seq))
        # Record semantics: one send, one delivery, boundaries intact.
        conn.channel._deliver(data)

    def _handle_put_ack(self, datagram: Datagram) -> None:
        _, local_id, seq = datagram.payload
        conn = self._conns.get(local_id)
        if conn is None:
            return
        timer = conn.pending_acks.pop(seq, None)
        if timer is not None:
            timer.cancel()

    def _handle_close(self, datagram: Datagram) -> None:
        _, local_id = datagram.payload
        conn = self._conns.get(local_id)
        if conn is not None:
            self._abort(conn, "closed by peer", notify_peer=False)
