"""Per-machine local clocks with offset and drift.

The URSA project built a "precision time corrector" on top of the NTCS
(Sec. 1.3, [27]), which the NTCS itself then used for monitor
timestamps — one of the recursion sources of Sec. 6.1.  For that service
to be reproducible there must be something to correct: each machine's
clock reads ``true_time * (1 + drift) + offset``.
"""

from __future__ import annotations

from repro.netsim.scheduler import Scheduler


class LocalClock:
    """A drifting, offset local clock derived from the virtual true time.

    Args:
        scheduler: source of true (simulation) time.
        offset: constant error in seconds.
        drift: fractional rate error (1e-5 is 10 ppm — a realistic
            quartz oscillator).
    """

    def __init__(self, scheduler: Scheduler, offset: float = 0.0, drift: float = 0.0):
        self._scheduler = scheduler
        self.offset = offset
        self.drift = drift

    def now(self) -> float:
        """The machine's local wall-clock reading."""
        true = self._scheduler.now
        return true * (1.0 + self.drift) + self.offset

    def error(self) -> float:
        """Current deviation from true time (what the corrector fights)."""
        return self.now() - self._scheduler.now
