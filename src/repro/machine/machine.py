"""Simulated machines: the hosts that processes and IPCSs live on."""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.errors import SimulationError
from repro.machine.arch import MachineType
from repro.machine.clock import LocalClock
from repro.netsim.network import Interface, Network
from repro.netsim.scheduler import Scheduler

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.machine.process import SimProcess


class Machine:
    """One computer: a machine type, a local clock, network attachments,
    native IPCS instances, and the processes running on it.

    A machine may attach to several networks (that is what makes gateway
    hosts possible), and runs one native IPCS per attached network —
    mirroring the paper's Fig. 2-2 gateway host with one ND-Layer per
    network.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        mtype: MachineType,
        clock_offset: float = 0.0,
        clock_drift: float = 0.0,
    ):
        self.scheduler = scheduler
        self.name = name
        self.mtype = mtype
        self.clock = LocalClock(scheduler, offset=clock_offset, drift=clock_drift)
        self._interfaces: Dict[str, Interface] = {}  # network name -> interface
        self._ipcs: Dict[str, object] = {}  # "network/protocol" -> IPCS instance
        self.processes: List["SimProcess"] = []
        self.alive = True

    # -- networking -------------------------------------------------------

    def attach_network(self, network: Network, host: Optional[str] = None) -> Interface:
        """Attach this machine to ``network``; its host address defaults
        to the machine name."""
        if network.name in self._interfaces:
            raise SimulationError(f"{self.name} already attached to {network.name}")
        iface = network.attach(host or self.name)
        self._interfaces[network.name] = iface
        return iface

    def interface(self, network_name: str) -> Interface:
        """The machine's interface on one network; raises if detached."""
        try:
            return self._interfaces[network_name]
        except KeyError:
            raise SimulationError(
                f"machine {self.name!r} is not attached to network {network_name!r}"
            )

    @property
    def networks(self) -> List[str]:
        """Names of the networks this machine is attached to."""
        return list(self._interfaces)

    # -- IPCS registry ----------------------------------------------------

    def register_ipcs(self, network_name: str, protocol: str, ipcs: object) -> None:
        """Register a native IPCS instance for (network, protocol)."""
        key = f"{network_name}/{protocol}"
        if key in self._ipcs:
            raise SimulationError(f"IPCS {key} already registered on {self.name}")
        self._ipcs[key] = ipcs

    def ipcs_for(self, network_name: str, protocol: str):
        """The native IPCS serving ``protocol`` on ``network_name``."""
        key = f"{network_name}/{protocol}"
        try:
            return self._ipcs[key]
        except KeyError:
            raise SimulationError(f"no IPCS {key} on machine {self.name!r}")

    def ipcs_instances(self) -> List[object]:
        """Every native IPCS instance on this machine."""
        return list(self._ipcs.values())

    def ipcs_on(self, network_name: str) -> List[object]:
        """All native IPCS instances serving one network (usually one)."""
        prefix = f"{network_name}/"
        return [ipcs for key, ipcs in sorted(self._ipcs.items())
                if key.startswith(prefix)]

    # -- processes ----------------------------------------------------------

    def adopt(self, process: "SimProcess") -> None:
        """Track a process as running on this machine."""
        self.processes.append(process)

    def crash(self) -> None:
        """Kill the whole machine: every process dies, every interface
        goes down.  Interfaces drop first so that dying processes cannot
        get any farewell traffic (e.g. deregistrations) onto the wire —
        a crash is abrupt."""
        self.alive = False
        for iface in self._interfaces.values():
            iface.up = False
        for process in list(self.processes):
            if process.alive:
                process.kill()

    def revive(self) -> None:
        """Bring a crashed machine back: interfaces come up, ready for
        new processes.  Old processes stay dead — restarting components
        is explicit, like rebooting a host and relaunching its daemons."""
        self.alive = True
        for iface in self._interfaces.values():
            iface.up = True

    def __repr__(self) -> str:
        return f"Machine({self.name!r}, {self.mtype.name}, nets={self.networks})"
