"""Simulated processes.

A :class:`SimProcess` is the unit of distribution in the paper's model
("distributed at the process level", Sec. 1): application modules, the
Name Server, Gateways, and DRTS services are all processes.  A process
owns communication resources (IPCS endpoints) that are torn down when it
is killed — which is how the rest of the system *finds out* it died
(the ND-Layer of connected modules sees the channel close, Sec. 4.3).
"""

from __future__ import annotations

from typing import Callable, List

from repro.machine.machine import Machine
from repro.util.idgen import SequenceGenerator

_pids = SequenceGenerator()


class SimProcess:
    """One process on one machine.

    Cleanup callbacks registered with :meth:`at_kill` run when the
    process dies (endpoint closure, naming-service deregistration, ...).
    """

    def __init__(self, machine: Machine, name: str):
        self.machine = machine
        self.name = name
        self.pid = _pids.next()
        self.alive = True
        self._kill_hooks: List[Callable[[], None]] = []
        machine.adopt(self)

    @property
    def scheduler(self):
        return self.machine.scheduler

    def at_kill(self, hook: Callable[[], None]) -> None:
        """Register a cleanup hook to run when the process is killed."""
        self._kill_hooks.append(hook)

    def kill(self) -> None:
        """Terminate the process: run cleanup hooks (newest first), mark
        dead.  Idempotent."""
        if not self.alive:
            return
        self.alive = False
        for hook in reversed(self._kill_hooks):
            hook()
        self._kill_hooks.clear()
        if self in self.machine.processes:
            self.machine.processes.remove(self)

    def check_alive(self) -> bool:
        """True while the process has not been killed."""
        return self.alive

    def __repr__(self) -> str:
        state = "alive" if self.alive else "dead"
        return f"SimProcess({self.name!r} pid={self.pid} on {self.machine.name}, {state})"
