"""Simulated heterogeneous machines.

The paper's testbed mixed Apollo, VAX and Sun systems — machines that
disagree about byte order, which is the entire reason the data-conversion
machinery of Sec. 5 exists.  This package models machine *types* with
real data-format attributes (:mod:`arch`), machines with drifting local
clocks (:mod:`machine`, :mod:`clock`), and the processes that run on
them (:mod:`process`).
"""

from repro.machine.arch import MachineType, VAX, SUN3, APOLLO, IBM_PC, list_machine_types
from repro.machine.clock import LocalClock
from repro.machine.machine import Machine
from repro.machine.process import SimProcess

__all__ = [
    "MachineType",
    "VAX",
    "SUN3",
    "APOLLO",
    "IBM_PC",
    "list_machine_types",
    "LocalClock",
    "Machine",
    "SimProcess",
]
