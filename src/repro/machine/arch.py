"""Machine architectures and data-format compatibility.

Sec. 5 of the paper: "the byte ordering of long integers differs between
the VAX and the Sun systems", and the NTCS picks *image mode* between
identical machines and *packed mode* between incompatible ones, "based
on the source and destination machine types".

A :class:`MachineType` therefore carries the attributes that determine
in-memory data layout: byte order, word size, and character set.  Two
machine types are *image-compatible* when those attributes coincide —
e.g. Sun-3 and Apollo (both MC68000-family, big-endian) exchange images,
while VAX↔Sun must pack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class MachineType:
    """An architecture, as far as data representation is concerned.

    Attributes:
        name: the marketing name ("VAX", "Sun-3", ...).
        byte_order: "little" or "big" — struct-module byte order.
        word_size: size of a C ``long`` in bytes.
        charset: character encoding; the paper notes the NTCS "guarantees
            correct character representation across machines (reasonable
            since most all are the same)" — everything here is ASCII.
    """

    name: str
    byte_order: str
    word_size: int = 4
    charset: str = "ascii"

    def __post_init__(self):
        if self.byte_order not in ("little", "big"):
            raise ValueError(f"byte_order must be 'little' or 'big', not {self.byte_order!r}")

    @property
    def data_format(self) -> str:
        """Canonical tag of the in-memory data layout.  Equal tags mean
        a raw byte copy of a struct is interpreted identically."""
        return f"{self.byte_order}-{self.word_size * 8}-{self.charset}"

    def image_compatible(self, other: "MachineType") -> bool:
        """True when image mode (plain byte copy) is safe between the two
        machine types — the paper's "identical machines" test."""
        return self.data_format == other.data_format

    @property
    def struct_prefix(self) -> str:
        """The :mod:`struct` byte-order prefix for this architecture."""
        return "<" if self.byte_order == "little" else ">"

    def __str__(self) -> str:
        return self.name


# The paper's testbed, plus one extra little-endian micro so that the
# compatibility relation has more than one member per class.
VAX = MachineType(name="VAX", byte_order="little")
SUN3 = MachineType(name="Sun-3", byte_order="big")
APOLLO = MachineType(name="Apollo", byte_order="big")
IBM_PC = MachineType(name="IBM-PC", byte_order="little")

_REGISTRY: Dict[str, MachineType] = {
    mt.name: mt for mt in (VAX, SUN3, APOLLO, IBM_PC)
}


def list_machine_types() -> List[MachineType]:
    """All built-in machine types, in a stable order."""
    return [VAX, SUN3, APOLLO, IBM_PC]


def machine_type(name: str) -> MachineType:
    """Look a built-in machine type up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(f"unknown machine type {name!r}; known: {sorted(_REGISTRY)}")
