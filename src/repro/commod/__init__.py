"""The ComMod: the application's entire view of the NTCS (Sec. 2.1).

"Each application process must bind with a passive communication module
(ComMod), which is the only aspect of the NTCS visible to the
application.  To the application, the ComMod is the NTCS."
"""

from repro.commod.commod import ComMod
from repro.commod.ali import AliLayer

__all__ = ["ComMod", "AliLayer"]
