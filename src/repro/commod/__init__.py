"""The ComMod: the application's entire view of the NTCS (Sec. 2.1).

"Each application process must bind with a passive communication module
(ComMod), which is the only aspect of the NTCS visible to the
application.  To the application, the ComMod is the NTCS."

Accordingly this package re-exports the two NTCS types applications
handle directly — :class:`Address` (the opaque UAdd) and
:class:`IncomingMessage` (what :meth:`AliLayer.receive` yields) — so
application code imports nothing below the ALI veneer.
"""

from repro.commod.commod import ComMod
from repro.commod.ali import AliLayer
from repro.ntcs.address import Address
from repro.ntcs.lcm import IncomingMessage

__all__ = ["ComMod", "AliLayer", "Address", "IncomingMessage"]
