"""The Application Level Interface Layer (paper Sec. 2.4).

"The application interface primitives are provided by the Application
Level Interface Layer (ALI-Layer), forming the topmost layer in the
ComMod.  It simply provides the application interface primitives from
the Nucleus and NSP-Layer services, tailors the error returns, and
performs parameter checking.  It may be better described as a thin
veneer."

Three primitive classes (Sec. 1.3):

* **basic communication** — :meth:`send` (asynchronous),
  :meth:`call`/:meth:`receive`/:meth:`reply` (synchronous
  send/receive/reply),
* **resource location** — :meth:`register`, :meth:`locate`,
  :meth:`locate_by_attrs`, :meth:`deregister`,
* **utilities** — :meth:`ping`, :meth:`status`, :meth:`my_address`.

"An application module need only obtain an address once; module
relocation will then occur as required, during all communication,
transparent at this interface."
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import (
    BadParameter,
    NoSuchName,
    NotRegistered,
    SendWouldBlock,
    UnknownMessageType,
)
from repro.naming.protocol import NameRecord
from repro.ntcs.address import Address
from repro.ntcs.lcm import IncomingMessage
from repro.util.counters import ALI_SEND_BLOCKED, IP_CREDIT_STALLS


class AliLayer:
    """The application-facing veneer of one ComMod."""

    LAYER = "ALI"

    def __init__(self, commod):
        self.commod = commod
        self.nucleus = commod.nucleus
        self.registered_name: Optional[str] = None
        self.uadd: Optional[Address] = None

    # -- parameter checking helpers ------------------------------------------

    def _check_dst(self, dst) -> Address:
        if not isinstance(dst, Address):
            raise BadParameter(f"destination must be an Address, not {type(dst).__name__}")
        return dst

    def _check_type(self, type_name: str) -> None:
        if not isinstance(type_name, str) or not type_name:
            raise BadParameter("message type name must be a non-empty string")
        try:
            self.nucleus.registry.get_by_name(type_name)
        except UnknownMessageType:
            raise BadParameter(f"message type {type_name!r} is not registered")

    def _check_values(self, values) -> dict:
        if values is None:
            return {}
        if not isinstance(values, dict):
            raise BadParameter(f"message values must be a dict, not {type(values).__name__}")
        return values

    # -- resource location primitives ---------------------------------------------

    def register(self, name: str, attrs: Optional[Dict[str, str]] = None) -> Address:
        """Come on-line: create communication resources (already done at
        bind), register with the naming service, adopt the assigned
        UAdd (Sec. 3.2)."""
        if not isinstance(name, str) or not name or len(name) > 63:
            raise BadParameter("module name must be a string of 1-63 characters")
        if self.registered_name is not None:
            raise BadParameter(f"module already registered as {self.registered_name!r}")
        with self.nucleus.enter(self.LAYER, "register", caller="application",
                                reason=name):
            blob = self.nucleus.nd.listen_blob
            uadd = self.commod.nsp.register(
                name=name,
                attrs=attrs or {},
                addresses=[(self.commod.network, blob)],
                mtype_name=self.nucleus.mtype.name,
            )
        self.nucleus.set_identity(uadd)
        self.registered_name = name
        self.uadd = uadd
        # Graceful death deregisters so forwarding lookups see the
        # tombstone; abrupt death (machine crash) cannot.
        self.commod.process.at_kill(self._deregister_on_kill)
        return uadd

    def _deregister_on_kill(self) -> None:
        if self.uadd is None:
            return
        # Best effort — the datagram rides whatever circuit still exists.
        self.nucleus.lcm.datagram(
            self.commod.nsp.ns_uadd, "ns_deregister", {"uadd": self.uadd.value},
        )

    def locate(self, name: str) -> Address:
        """Map a logical name to a UAdd.  The UAdd stays valid across
        relocations — obtain it once."""
        if not isinstance(name, str) or not name:
            raise BadParameter("name must be a non-empty string")
        with self.nucleus.enter(self.LAYER, "locate", caller="application",
                                reason=name):
            return self.commod.nsp.resolve_name(name)

    def locate_by_attrs(self, required: Dict[str, str]) -> List[NameRecord]:
        """Attribute-based resource location (the Sec. 7 scheme)."""
        if not isinstance(required, dict) or not required:
            raise BadParameter("attribute query must be a non-empty dict")
        with self.nucleus.enter(self.LAYER, "locate_by_attrs",
                                caller="application"):
            return self.commod.nsp.query_attrs(required)

    def deregister(self) -> None:
        """Go off-line explicitly."""
        if self.uadd is None:
            raise NotRegistered("module never registered")
        self.commod.nsp.deregister(self.uadd)

    # -- basic communication primitives -----------------------------------------

    def send(self, dst, type_name: str, values: Optional[dict] = None,
             block: bool = True) -> None:
        """Send one message; returns once it is handed to the wire.

        "Asynchronous" here means no reply is awaited — *not* that the
        primitive cannot block.  Under flow control (PROTOCOL.md §12)
        a sender that has exhausted the destination circuit's credit
        window is parked on the run queue until the receiver consumes;
        with ``block=False`` it raises :class:`SendWouldBlock` at once
        instead, leaving the message unsent.  Either outcome is counted
        as ``ali_send_blocked``.  With ``flow_control_enabled=False``
        the send never waits — the receiver buffers without limit."""
        dst = self._check_dst(dst)
        self._check_type(type_name)
        values = self._check_values(values)
        counters = self.nucleus.counters
        with self.nucleus.enter(self.LAYER, "send", caller="application",
                                reason=type_name):
            stalls_before = counters[IP_CREDIT_STALLS]
            try:
                self.nucleus.lcm.send(dst, type_name, values, block=block)
            except SendWouldBlock:
                counters.incr(ALI_SEND_BLOCKED)
                raise
            stalled = counters[IP_CREDIT_STALLS] - stalls_before
            if stalled:
                # The send went through, but only after parking the
                # caller for credit at least once.
                counters.incr(ALI_SEND_BLOCKED, stalled)

    def call(self, dst, type_name: str, values: Optional[dict] = None,
             timeout: Optional[float] = None) -> IncomingMessage:
        """Synchronous send/receive/reply: blocks for the reply."""
        dst = self._check_dst(dst)
        self._check_type(type_name)
        values = self._check_values(values)
        if timeout is not None and timeout <= 0:
            raise BadParameter("timeout must be positive")
        with self.nucleus.enter(self.LAYER, "call", caller="application",
                                reason=type_name):
            return self.nucleus.lcm.call(dst, type_name, values, timeout=timeout)

    def call_async(self, dst, type_name: str, values: Optional[dict] = None):
        """Asynchronous send/receive/reply: returns a handle whose
        ``result(timeout)`` blocks for the reply."""
        dst = self._check_dst(dst)
        self._check_type(type_name)
        values = self._check_values(values)
        with self.nucleus.enter(self.LAYER, "call_async", caller="application",
                                reason=type_name):
            return self.nucleus.lcm.call_async(dst, type_name, values)

    def receive(self, timeout: Optional[float] = None) -> IncomingMessage:
        """Block until the next queued message arrives."""
        if timeout is not None and timeout <= 0:
            raise BadParameter("timeout must be positive")
        return self.nucleus.lcm.receive(timeout=timeout)

    def reply(self, request: IncomingMessage, type_name: str,
              values: Optional[dict] = None) -> None:
        """Answer a request received via :meth:`receive` or the handler."""
        if not isinstance(request, IncomingMessage):
            raise BadParameter("reply target must be an IncomingMessage")
        if not request.reply_expected:
            raise BadParameter("the request did not expect a reply")
        self._check_type(type_name)
        values = self._check_values(values)
        with self.nucleus.enter(self.LAYER, "reply", caller="application",
                                reason=type_name):
            self.nucleus.lcm.reply(request, type_name, values)

    def datagram(self, dst, type_name: str, values: Optional[dict] = None) -> bool:
        """Best-effort connectionless send (the LCM's connectionless
        protocol).  Never blocks for credit: an out-of-credit or
        overloaded circuit drops the datagram (counted as
        ``drop_connectionless``) and this returns False."""
        dst = self._check_dst(dst)
        self._check_type(type_name)
        values = self._check_values(values)
        return self.nucleus.lcm.datagram(dst, type_name, values)

    def set_request_handler(
        self, handler: Optional[Callable[[IncomingMessage], None]]
    ) -> None:
        """Install a synchronous handler (server style); None restores
        queueing."""
        if handler is not None and not callable(handler):
            raise BadParameter("handler must be callable or None")
        self.nucleus.lcm.set_handler(handler)

    # -- utilities ---------------------------------------------------------

    def my_address(self) -> Address:
        """The module's current NTCS address (TAdd until registered)."""
        return self.nucleus.self_addr

    def queued(self) -> int:
        """Messages waiting in this module's receive queue.  The queue
        is bounded only by flow control (PROTOCOL.md §12): senders stall
        once their circuit's window is spent, so the depth a polling
        receiver can accumulate is capped at roughly one window per
        sending circuit — unless ``flow_control_enabled=False``, in
        which case it grows without limit."""
        return self.nucleus.lcm.queued()

    def ping_name_server(self) -> bool:
        """True when the naming service answers (utility primitive)."""
        return self.commod.nsp.ping()

    def status(self) -> Dict[str, object]:
        """A small health/introspection snapshot."""
        nucleus = self.nucleus
        return {
            "name": self.registered_name,
            "address": str(nucleus.self_addr),
            "machine": nucleus.machine.name,
            "machine_type": nucleus.mtype.name,
            "network": self.commod.network,
            "open_circuits": nucleus.ip.open_ivc_count(),
            "queued": nucleus.lcm.queued(),
            "recursion_depth": nucleus.depth,
            "max_recursion_depth": nucleus.max_depth_seen,
        }
