"""ComMod assembly: Nucleus + NSP-Layer + ALI-Layer (paper Fig. 2-4)."""

from __future__ import annotations

from typing import Optional

from repro.commod.ali import AliLayer
from repro.machine.process import SimProcess
from repro.naming.nsp import NspLayer
from repro.ntcs.nucleus import Nucleus, NucleusConfig
from repro.ntcs.wellknown import WellKnownTable


class ComMod:
    """The passive communication module bound with one application
    process (on one network).

    Args:
        process: the owning process.
        registry: the deployment's shared conversion registry.
        wellknown: the deployment's well-known address table.
        network: which of the machine's networks to bind (defaults to
            its first).
        config: NTCS configuration for this module.

    The application talks to :attr:`ali`; everything else is internal.
    """

    def __init__(
        self,
        process: SimProcess,
        registry,
        wellknown: WellKnownTable,
        network: Optional[str] = None,
        config: Optional[NucleusConfig] = None,
        nsp_factory=None,
    ):
        self.process = process
        network = network or process.machine.networks[0]
        self.nucleus = Nucleus(process, network, registry, wellknown,
                               config=config)
        # The module's communication resource exists from bind time so
        # registration can publish its blob.
        self.nucleus.nd.create_resource()
        # The NSP-Layer isolates the naming-service implementation: a
        # different factory (e.g. the replicated service) swaps it with
        # "no direct impact on the NTCS" (Sec. 2.4).
        if nsp_factory is not None:
            self.nsp = nsp_factory(self.nucleus)
        else:
            self.nsp = NspLayer(self.nucleus)
        self.nucleus.nsp = self.nsp
        self.ali = AliLayer(self)

    @property
    def network(self) -> str:
        return self.nucleus.driver.network_name

    @property
    def address(self):
        """The module's current NTCS address (TAdd until registered)."""
        return self.nucleus.self_addr

    def __repr__(self) -> str:
        return f"ComMod({self.process.name!r} on {self.network})"
