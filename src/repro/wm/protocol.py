"""Window-manager wire structures (application type ids 80–89)."""

from __future__ import annotations

from repro.conversion import ConversionRegistry, Field, StructDef

T_WM_CREATE = 80
T_WM_CREATED = 81
T_WM_WRITE = 82
T_WM_ACK = 83
T_WM_SNAPSHOT = 84
T_WM_CONTENTS = 85
T_WM_CLOSE = 86
T_WM_INPUT = 87
T_WM_LIST = 88
T_WM_LIST_REPLY = 89

_STRUCTS = [
    StructDef("wm_create", T_WM_CREATE, [
        Field("title", "char[32]"),
        Field("width", "u16"),
        Field("height", "u16"),
    ]),
    StructDef("wm_created", T_WM_CREATED, [
        Field("ok", "u8"),
        Field("window_id", "u32"),
        Field("detail", "char[64]"),
    ]),
    StructDef("wm_write", T_WM_WRITE, [
        Field("window_id", "u32"),
        Field("row", "u16"),
        Field("text", "bytes"),
    ]),
    StructDef("wm_ack", T_WM_ACK, [
        Field("ok", "u8"),
        Field("detail", "char[64]"),
    ]),
    StructDef("wm_snapshot", T_WM_SNAPSHOT, [
        Field("window_id", "u32"),
    ]),
    StructDef("wm_contents", T_WM_CONTENTS, [
        Field("ok", "u8"),
        Field("window_id", "u32"),
        Field("title", "char[32]"),
        Field("rows", "bytes"),        # newline-separated rows
    ]),
    StructDef("wm_close", T_WM_CLOSE, [
        Field("window_id", "u32"),
    ]),
    # Input events flow server -> owning client, connectionless.
    StructDef("wm_input", T_WM_INPUT, [
        Field("window_id", "u32"),
        Field("text", "bytes"),
    ]),
    StructDef("wm_list", T_WM_LIST, []),
    StructDef("wm_list_reply", T_WM_LIST_REPLY, [
        Field("count", "u32"),
        Field("titles", "bytes"),      # newline-separated "id:title"
    ]),
]


def register_wm_types(registry: ConversionRegistry) -> None:
    """Install the window-manager wire structures into a registry."""
    for sdef in _STRUCTS:
        registry.register(sdef)
