"""The window-manager module: owns the display, serves window requests.

Windows are fixed-size text grids.  Each window remembers the NTCS
address of the module that created it; user input (injected by the
hosting workstation — here, by :meth:`inject_input`) is forwarded to
that owner as a connectionless ``wm_input`` event, and windows whose
owner's circuit dies are garbage-collected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.commod import Address, ComMod, IncomingMessage
from repro.util.idgen import SequenceGenerator

WM_NAME = "drts.windows"

MAX_WIDTH = 200
MAX_HEIGHT = 100


@dataclass
class Window:
    window_id: int
    title: str
    width: int
    height: int
    owner: Address
    rows: List[str] = field(default_factory=list)

    def __post_init__(self):
        if not self.rows:
            self.rows = [""] * self.height

    def write(self, row: int, text: str) -> bool:
        """Replace one row (clipped to the window width); False if out of range."""
        if not 0 <= row < self.height:
            return False
        self.rows[row] = text[: self.width]
        return True

    def render(self) -> str:
        """The window contents as a newline-joined string."""
        return "\n".join(self.rows)


class WindowManager:
    """The display server: an ordinary NTCS module."""

    def __init__(self, commod: ComMod, name: str = WM_NAME,
                 register: bool = True):
        self.commod = commod
        self.name = name
        self.windows: Dict[int, Window] = {}
        self._ids = SequenceGenerator()
        self.inputs_forwarded = 0
        self.inputs_dropped = 0
        if register:
            commod.ali.register(name, attrs={"kind": "windows"})
        commod.ali.set_request_handler(self._on_request)

    @classmethod
    def attach(cls, commod: ComMod, name: str = WM_NAME) -> "WindowManager":
        """Bind a fresh (empty) manager to an existing ComMod without
        registering — for relocation rebuild callbacks, where the
        process controller performs the registration itself."""
        return cls(commod, name=name, register=False)

    # -- request handling -----------------------------------------------------

    def _on_request(self, request: IncomingMessage) -> None:
        handler = {
            "wm_create": self._handle_create,
            "wm_write": self._handle_write,
            "wm_snapshot": self._handle_snapshot,
            "wm_close": self._handle_close,
            "wm_list": self._handle_list,
        }.get(request.type_name)
        if handler is not None:
            handler(request)

    def _handle_create(self, request: IncomingMessage) -> None:
        width = request.values["width"]
        height = request.values["height"]
        if not (0 < width <= MAX_WIDTH and 0 < height <= MAX_HEIGHT):
            if request.reply_expected:
                self.commod.ali.reply(request, "wm_created", {
                    "ok": 0, "window_id": 0,
                    "detail": f"bad geometry {width}x{height}",
                })
            return
        window = Window(
            window_id=self._ids.next(),
            title=request.values["title"],
            width=width,
            height=height,
            owner=request.src,
        )
        self.windows[window.window_id] = window
        if request.reply_expected:
            self.commod.ali.reply(request, "wm_created", {
                "ok": 1, "window_id": window.window_id, "detail": "",
            })

    def _window_for(self, request: IncomingMessage) -> Optional[Window]:
        window = self.windows.get(request.values["window_id"])
        if window is None or window.owner != request.src:
            return None  # unknown, or not yours
        return window

    def _handle_write(self, request: IncomingMessage) -> None:
        window = self._window_for(request)
        ok = False
        detail = "no such window (or not the owner)"
        if window is not None:
            text = request.values["text"].decode("ascii", errors="replace")
            ok = window.write(request.values["row"], text)
            detail = "" if ok else f"row out of range 0..{window.height - 1}"
        if request.reply_expected:
            self.commod.ali.reply(request, "wm_ack", {
                "ok": 1 if ok else 0, "detail": detail,
            })

    def _handle_snapshot(self, request: IncomingMessage) -> None:
        # Snapshots are not owner-restricted: the workstation operator
        # can look at anything.
        window = self.windows.get(request.values["window_id"])
        if not request.reply_expected:
            return
        if window is None:
            self.commod.ali.reply(request, "wm_contents", {
                "ok": 0, "window_id": request.values["window_id"],
                "title": "", "rows": b"",
            })
            return
        self.commod.ali.reply(request, "wm_contents", {
            "ok": 1, "window_id": window.window_id,
            "title": window.title,
            "rows": window.render().encode("ascii", errors="replace"),
        })

    def _handle_close(self, request: IncomingMessage) -> None:
        window = self._window_for(request)
        if window is not None:
            del self.windows[window.window_id]
        if request.reply_expected:
            self.commod.ali.reply(request, "wm_ack", {
                "ok": 1 if window is not None else 0,
                "detail": "" if window is not None else "no such window",
            })

    def _handle_list(self, request: IncomingMessage) -> None:
        if not request.reply_expected:
            return
        titles = "\n".join(
            f"{w.window_id}:{w.title}"
            for w in sorted(self.windows.values(),
                            key=lambda w: w.window_id)
        )
        self.commod.ali.reply(request, "wm_list_reply", {
            "count": len(self.windows),
            "titles": titles.encode("ascii", errors="replace"),
        })

    # -- the workstation side ---------------------------------------------------

    def inject_input(self, window_id: int, text: str) -> bool:
        """Simulate the user typing into a window: the event is
        forwarded to the owning module, connectionless."""
        window = self.windows.get(window_id)
        if window is None:
            return False
        ok = self.commod.nucleus.lcm.datagram(window.owner, "wm_input", {
            "window_id": window_id,
            "text": text.encode("ascii", errors="replace"),
        })
        if ok:
            self.inputs_forwarded += 1
        else:
            self.inputs_dropped += 1
        return ok

    def gc_windows_of(self, owner: Address) -> int:
        """Drop all windows owned by a dead module; returns the count."""
        doomed = [wid for wid, w in self.windows.items() if w.owner == owner]
        for wid in doomed:
            del self.windows[wid]
        return len(doomed)
