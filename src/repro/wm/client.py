"""The window-manager client library: what an application module links
to draw windows on a (possibly remote) workstation."""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.commod import Address, ComMod, IncomingMessage
from repro.errors import NtcsError
from repro.wm.server import WM_NAME


class WindowClient:
    """Create/write/snapshot windows by logical service name.

    Install an ``on_input`` callback to receive user-input events; the
    client multiplexes them with whatever other messages the module
    handles (the handler chain is explicit, no magic)."""

    def __init__(self, commod: ComMod, wm_name: str = WM_NAME,
                 on_input: Optional[Callable[[int, str], None]] = None):
        self.commod = commod
        self.wm_name = wm_name
        self._wm_uadd: Optional[Address] = None
        self.on_input = on_input
        self._previous_handler = commod.nucleus.lcm._handler
        commod.ali.set_request_handler(self._dispatch)

    def _dispatch(self, message: IncomingMessage) -> None:
        if message.type_name == "wm_input":
            if self.on_input is not None:
                self.on_input(
                    message.values["window_id"],
                    message.values["text"].decode("ascii", errors="replace"),
                )
            return
        if self._previous_handler is not None:
            self._previous_handler(message)

    @property
    def wm_uadd(self) -> Address:
        if self._wm_uadd is None:
            self._wm_uadd = self.commod.ali.locate(self.wm_name)
        return self._wm_uadd

    # -- operations ----------------------------------------------------------

    def create(self, title: str, width: int = 40, height: int = 10) -> int:
        """Create a window; returns its id.  Raises NtcsError on
        refusal."""
        reply = self.commod.ali.call(self.wm_uadd, "wm_create", {
            "title": title, "width": width, "height": height,
        })
        if not reply.values["ok"]:
            raise NtcsError(f"window refused: {reply.values['detail']}")
        return reply.values["window_id"]

    def write(self, window_id: int, row: int, text: str) -> bool:
        """Replace one row of a window; True on success."""
        reply = self.commod.ali.call(self.wm_uadd, "wm_write", {
            "window_id": window_id, "row": row,
            "text": text.encode("ascii", errors="replace"),
        })
        return bool(reply.values["ok"])

    def snapshot(self, window_id: int) -> Optional[Tuple[str, List[str]]]:
        """(title, rows) of a window, or None if it does not exist."""
        reply = self.commod.ali.call(self.wm_uadd, "wm_snapshot", {
            "window_id": window_id,
        })
        if not reply.values["ok"]:
            return None
        rows = reply.values["rows"].decode("ascii", errors="replace")
        return reply.values["title"], rows.split("\n")

    def close(self, window_id: int) -> bool:
        """Destroy a window this module owns; True on success."""
        reply = self.commod.ali.call(self.wm_uadd, "wm_close", {
            "window_id": window_id,
        })
        return bool(reply.values["ok"])

    def list_windows(self) -> List[Tuple[int, str]]:
        """All windows on the display: [(id, title)]."""
        reply = self.commod.ali.call(self.wm_uadd, "wm_list", {})
        text = reply.values["titles"].decode("ascii", errors="replace")
        out = []
        for line in text.split("\n"):
            if line:
                wid, _, title = line.partition(":")
                out.append((int(wid), title))
        return out
