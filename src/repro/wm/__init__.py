"""A portable window manager for message-based systems (paper ref [22],
Schlegel 1985 — built on the NTCS as part of the URSA project).

A second, independent application domain on the same ComMod API: a
window-manager module owns a set of text windows; client modules
anywhere in the distributed system create windows, write text, and
receive user-input events — all as NTCS messages.  Demonstrates the
paper's claim that the NTCS supports "a large class of message-based,
distributed applications", not just information retrieval.
"""

from repro.wm.protocol import register_wm_types
from repro.wm.server import WindowManager
from repro.wm.client import WindowClient

__all__ = ["register_wm_types", "WindowManager", "WindowClient"]
