"""The precision time corrector (paper Secs. 1.3, 6.1, ref [27]).

Machines' local clocks drift and sit at arbitrary offsets
(:mod:`repro.machine.clock`).  A :class:`TimeServer` module holds the
reference clock; each instrumented module's :class:`TimeClient`
estimates its own clock error with a Cristian-style exchange (send
local time, receive server time, subtract half the round trip) and
serves corrected timestamps to the Nucleus.

Sec. 6.1's recursion scenario runs through here: an LCM send asks for a
timestamp, which "may recursively call on the ComMod to communicate
with its support module.  If this is the first such communication, it
will call the resource location primitives to locate the module,
invoking the ComMod recursively again."  Resynchronisations are
rate-limited by ``refresh_interval``, matching "time service data
communication only occurs periodically" (Sec. 6.2).
"""

from __future__ import annotations

from typing import Optional

from repro.commod import Address, ComMod, IncomingMessage
from repro.errors import NtcsError

TIME_SERVER_NAME = "drts.time"


class TimeServer:
    """The reference clock module: answers time requests with its local
    clock, assumed authoritative (give its machine zero offset/drift,
    or accept its error as the reference)."""

    def __init__(self, commod: ComMod, name: str = TIME_SERVER_NAME):
        self.commod = commod
        self.name = name
        self.requests_served = 0
        commod.ali.register(name, attrs={"kind": "time"})
        commod.ali.set_request_handler(self._on_request)

    def _on_request(self, message: IncomingMessage) -> None:
        if message.type_name != "time_request" or not message.reply_expected:
            return
        self.requests_served += 1
        self.commod.ali.reply(message, "time_reply", {
            "client_send": message.values["client_send"],
            "server_time": self.commod.nucleus.machine.clock.now(),
        })


class TimeClient:
    """The per-module corrector, installed as ``nucleus.time_client``."""

    def __init__(self, nucleus, time_server_name: str = TIME_SERVER_NAME,
                 refresh_interval: float = 60.0):
        self.nucleus = nucleus
        self.time_server_name = time_server_name
        self.refresh_interval = refresh_interval
        self._server_uadd: Optional[Address] = None
        self.offset = 0.0
        self._last_sync: Optional[float] = None
        self.syncs = 0
        self.sync_failures = 0

    # -- the Nucleus-facing API -----------------------------------------------

    def corrected_now(self) -> float:
        """The corrected local time; resynchronises first when stale —
        the recursive path of Sec. 6.1."""
        nucleus = self.nucleus
        if self._needs_sync():
            self._sync()
        return nucleus.machine.clock.now() + self.offset

    def _needs_sync(self) -> bool:
        if self._last_sync is None:
            return True
        return (self.nucleus.scheduler.now - self._last_sync) >= self.refresh_interval

    def _sync(self) -> None:
        nucleus = self.nucleus
        clock = nucleus.machine.clock
        with nucleus.suppress_services():
            with nucleus.enter("TIME", "sync", caller="LCM",
                               reason="timestamp requested"):
                try:
                    if self._server_uadd is None:
                        self._server_uadd = nucleus.require_nsp().resolve_name(
                            self.time_server_name
                        )
                    t0 = clock.now()
                    reply = nucleus.lcm.call(
                        self._server_uadd, "time_request",
                        {"client_send": t0},
                    )
                    t1 = clock.now()
                except NtcsError:
                    self.sync_failures += 1
                    self._server_uadd = None
                    # Keep the stale offset; better than nothing.
                    self._last_sync = nucleus.scheduler.now
                    return
        round_trip = t1 - t0
        server_at_receipt = reply.values["server_time"] + round_trip / 2.0
        self.offset = server_at_receipt - t1
        self._last_sync = nucleus.scheduler.now
        self.syncs += 1

    def estimated_error(self) -> float:
        """Residual error of corrected time vs true simulation time."""
        nucleus = self.nucleus
        return (nucleus.machine.clock.now() + self.offset) - nucleus.scheduler.now


def enable_time_correction(commod: ComMod,
                           time_server_name: str = TIME_SERVER_NAME,
                           refresh_interval: float = 60.0) -> TimeClient:
    """Instrument one module: Nucleus timestamps become corrected."""
    client = TimeClient(commod.nucleus, time_server_name, refresh_interval)
    commod.nucleus.time_client = client
    commod.nucleus.config.time_enabled = True
    return client
