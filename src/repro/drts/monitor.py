"""The distributed network monitor (paper Secs. 1.3, 6.1, ref [27]).

A collector module receives per-send/per-receive event records from
every instrumented module's LCM-Layer, shipped over the NTCS's own
connectionless protocol.  "Since the NTCS itself utilizes [monitoring],
recursive operation ... is observed": reporting an event is itself a
send, so the client wraps its traffic in
:meth:`Nucleus.suppress_services` — the paper's "time correction and
monitoring are disabled here, to avoid the obvious infinite recursion".
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.commod import Address, ComMod, IncomingMessage
from repro.errors import NtcsError

MONITOR_NAME = "drts.monitor"


class Monitor:
    """The collector: an ordinary application module."""

    def __init__(self, commod: ComMod, name: str = MONITOR_NAME):
        self.commod = commod
        self.name = name
        self.events: List[dict] = []
        commod.ali.register(name, attrs={"kind": "monitor"})
        commod.ali.set_request_handler(self._on_event)

    def _on_event(self, message: IncomingMessage) -> None:
        if message.type_name != "monitor_event":
            return
        self.events.append(dict(message.values))

    # -- analysis helpers used by the benches -------------------------------------

    def events_for(self, module_name: str) -> List[dict]:
        """All events reported by one module."""
        return [e for e in self.events if e["module"] == module_name]

    def count(self, event: Optional[str] = None) -> int:
        """Number of recorded events, optionally of one kind."""
        if event is None:
            return len(self.events)
        return sum(1 for e in self.events if e["event"] == event)

    def clear(self) -> None:
        """Discard all recorded events."""
        self.events.clear()

    # -- analysis (ref [27]: "Performance Monitoring and Projection") -----------

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Per-module event counts: {module: {event: count}}."""
        out: Dict[str, Dict[str, int]] = {}
        for event in self.events:
            per_module = out.setdefault(event["module"], {})
            per_module[event["event"]] = per_module.get(event["event"], 0) + 1
        return out

    def conversation_matrix(self) -> Dict[tuple, int]:
        """(module, peer-address) → message count, both directions."""
        matrix: Dict[tuple, int] = {}
        for event in self.events:
            key = (event["module"], event["peer"])
            matrix[key] = matrix.get(key, 0) + 1
        return matrix

    def send_rate(self, module_name: str, msg_type: Optional[str] = None) -> float:
        """Average sends per timestamp-second for one module, optionally
        restricted to one message type (0.0 when fewer than two send
        events exist)."""
        times = sorted(e["t"] for e in self.events
                       if e["module"] == module_name and e["event"] == "send"
                       and (msg_type is None or e["msg_type"] == msg_type))
        if len(times) < 2 or times[-1] == times[0]:
            return 0.0
        return (len(times) - 1) / (times[-1] - times[0])


class MonitorClient:
    """The per-module reporting stub, installed as
    ``nucleus.monitor_client``."""

    def __init__(self, nucleus, monitor_name: str = MONITOR_NAME):
        self.nucleus = nucleus
        self.monitor_name = monitor_name
        self._monitor_uadd: Optional[Address] = None
        self.reported = 0
        self.dropped = 0

    def report(self, event: dict) -> None:
        """Ship one event record.  Locating the monitor and the send
        itself both recurse into the Nucleus — with further monitoring
        suppressed."""
        nucleus = self.nucleus
        with nucleus.suppress_services():
            with nucleus.enter("MON", "report", caller="LCM",
                               reason=event.get("event", "")):
                try:
                    if self._monitor_uadd is None:
                        self._monitor_uadd = nucleus.require_nsp().resolve_name(
                            self.monitor_name
                        )
                    ok = nucleus.lcm.datagram(self._monitor_uadd, "monitor_event", {
                        "module": nucleus.process.name,
                        "event": event.get("event", ""),
                        "peer": event.get("peer", ""),
                        "msg_type": event.get("type", ""),
                        "t": float(event.get("t", 0.0)),
                    })
                except NtcsError:
                    ok = False
                    self._monitor_uadd = None
                if ok:
                    self.reported += 1
                else:
                    self.dropped += 1


def enable_monitoring(commod: ComMod, monitor_name: str = MONITOR_NAME) -> MonitorClient:
    """Instrument one module: its LCM-Layer starts reporting."""
    client = MonitorClient(commod.nucleus, monitor_name)
    commod.nucleus.monitor_client = client
    commod.nucleus.config.monitor_enabled = True
    return client
