"""Distributed run-time support (DRTS) services (paper Secs. 1, 1.2).

"On top of both the NTCS and the native operating system at each
machine, various DRTS services have been added as required": a
distributed network monitor and precision time corrector ([27]), process
control, and error logging.  The NTCS itself uses the monitor and time
services, "forcing the Nucleus to operate recursively" (Sec. 6).
"""

from repro.drts.protocol import register_drts_types
from repro.drts.monitor import Monitor, MonitorClient
from repro.drts.timeservice import TimeServer, TimeClient
from repro.drts.errorlog import ErrorLogServer, ErrorLogClient
from repro.drts.proctl import ProcessController, ProcessControlServer

__all__ = [
    "register_drts_types",
    "Monitor",
    "MonitorClient",
    "TimeServer",
    "TimeClient",
    "ErrorLogServer",
    "ErrorLogClient",
    "ProcessController",
    "ProcessControlServer",
]
