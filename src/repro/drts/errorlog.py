"""Central error logging (paper Sec. 1.1 lists error logging among the
DRTS services the NTCS itself uses).

Sec. 6.3 motivates it: "one negative side effect of recovering from
these conditions is that the better the system is at it, the less one
may know about how it is actually running. ... a running table of
errors could be maintained and monitored."  The collector is that
table; clients ship each locally logged error, best-effort and with
services suppressed (an error in error reporting must not recurse).
"""

from __future__ import annotations

from typing import List, Optional

from repro.commod import Address, ComMod, IncomingMessage
from repro.errors import NtcsError

ERRLOG_NAME = "drts.errorlog"


class ErrorLogServer:
    """The running table of errors, one entry per reported condition."""

    def __init__(self, commod: ComMod, name: str = ERRLOG_NAME):
        self.commod = commod
        self.name = name
        self.entries: List[dict] = []
        commod.ali.register(name, attrs={"kind": "errorlog"})
        commod.ali.set_request_handler(self._on_report)

    def _on_report(self, message: IncomingMessage) -> None:
        if message.type_name != "errlog_report":
            return
        self.entries.append({
            "module": message.values["module"],
            "text": message.values["text"].decode("ascii", errors="replace"),
            "at": message.arrived_at,
        })

    def entries_for(self, module_name: str) -> List[dict]:
        """All entries reported by one module."""
        return [e for e in self.entries if e["module"] == module_name]


class ErrorLogClient:
    """Per-module shipper, installed as ``nucleus.error_client``."""

    def __init__(self, nucleus, errlog_name: str = ERRLOG_NAME):
        self.nucleus = nucleus
        self.errlog_name = errlog_name
        self._errlog_uadd: Optional[Address] = None
        self._reporting = False
        self.shipped = 0
        self.dropped = 0

    def ship(self, text: str) -> None:
        """Send one error text to the central table, best effort."""
        if self._reporting:
            return  # never recurse through our own failures
        nucleus = self.nucleus
        self._reporting = True
        try:
            with nucleus.suppress_services():
                try:
                    if self._errlog_uadd is None:
                        self._errlog_uadd = nucleus.require_nsp().resolve_name(
                            self.errlog_name
                        )
                    ok = nucleus.lcm.datagram(self._errlog_uadd, "errlog_report", {
                        "module": nucleus.process.name,
                        "text": text.encode("ascii", errors="replace"),
                    })
                except NtcsError:
                    ok = False
                    self._errlog_uadd = None
            if ok:
                self.shipped += 1
            else:
                self.dropped += 1
        finally:
            self._reporting = False


def enable_error_logging(commod: ComMod, errlog_name: str = ERRLOG_NAME) -> ErrorLogClient:
    """Hook a module's Nucleus error log up to the central table."""
    client = ErrorLogClient(commod.nucleus, errlog_name)
    commod.nucleus.error_client = client.ship
    return client
