"""Process control: spawn, kill and — centrally — relocate modules.

The paper's headline capability: "application processes can be
distributed across multiple machines and networks, while running,
transparent at the application interface" (Sec. 1).  Relocation is
modelled as the paper describes its effect: a replacement module comes
on-line on the target machine under the same logical name (the naming
service supersedes the old registration), application state is handed
over, and the old process dies.  In-flight conversations recover
through the LCM address-fault / forwarding machinery; messages *may*
drop during the window — quantified, not hidden, by experiment E4.

Substitution note (DESIGN.md): the paper's DRTS ran a process-control
server per machine; here the controller drives the simulation's process
objects directly.  The observable protocol behaviour — supersession,
forwarding, reconnection — is identical.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional

from repro.commod import ComMod
from repro.errors import SimulationError
from repro.machine.process import SimProcess


class ProcessController:
    """Spawn/kill/relocate against one testbed deployment."""

    def __init__(self, testbed):
        self.testbed = testbed
        self.relocations = 0
        # module name -> rebuild callback, for NTCS-requested relocations
        self.rebuilders: Dict[str, Callable[[ComMod, ComMod], None]] = {}

    def spawn(self, name: str, machine_name: str, **kwargs) -> ComMod:
        """Create and register a new module on a machine."""
        return self.testbed.module(name, machine_name, **kwargs)

    def kill(self, module_name: str) -> None:
        """Terminate a module by its registered name."""
        commod = self.testbed.modules.get(module_name)
        if commod is None:
            raise SimulationError(f"no module {module_name!r}")
        commod.process.kill()

    def relocate(
        self,
        module_name: str,
        target_machine: str,
        rebuild: Optional[Callable[[ComMod, ComMod], None]] = None,
        network: Optional[str] = None,
        graceful: bool = True,
    ) -> ComMod:
        """Move a module to another machine while the system runs.

        Args:
            module_name: the registered logical name.
            rebuild: callback ``(old_commod, new_commod)`` that installs
                the application's handlers/state on the replacement.
            graceful: kill the old module normally (it deregisters); if
                False the old process just vanishes (crash-style) and
                the naming service discovers the move via supersession.

        Returns the replacement ComMod.
        """
        testbed = self.testbed
        old = testbed.modules.get(module_name)
        if old is None:
            raise SimulationError(f"no module {module_name!r} to relocate")
        attrs = None
        record = None
        if old.ali.uadd is not None:
            # Preserve the module's registered attributes.
            try:
                record = testbed.name_server_instance.db.resolve_uadd(old.ali.uadd)
                attrs = dict(record.attrs)
            except Exception:
                attrs = None
        machine = testbed.machines[target_machine]
        process = SimProcess(machine, module_name)
        new = ComMod(process, testbed.registry, testbed.wellknown,
                     network=network, config=replace(old.nucleus.config))
        if rebuild is not None:
            rebuild(old, new)
        # Registration under the same name supersedes the old entry —
        # this is what the forwarding lookup (Sec. 3.5) finds.
        new.ali.register(module_name, attrs=attrs)
        if not graceful:
            # Abrupt disappearance: suppress the graceful deregistration
            # so the naming service only learns of the move by
            # supersession.
            old.ali.uadd = None
        old.process.kill()
        testbed.modules[module_name] = new
        self.relocations += 1
        return new


class ProcessControlServer:
    """The NTCS-facing face of process control: an ordinary module that
    accepts ``proctl_relocate`` requests — so operators (or other DRTS
    services) can reconfigure the system through the same message
    plumbing everything else uses.

    Relocating a module needs its application state/handlers rebuilt on
    the replacement; callers register a rebuild callback per module
    name via :meth:`allow`.
    """

    def __init__(self, commod: ComMod, controller: ProcessController,
                 name: str = "drts.proctl"):
        self.commod = commod
        self.controller = controller
        self.name = name
        self.requests = 0
        commod.ali.register(name, attrs={"kind": "proctl"})
        commod.ali.set_request_handler(self._on_request)

    def allow(self, module_name: str,
              rebuild: Optional[Callable[[ComMod, ComMod], None]]) -> None:
        """Permit NTCS-requested relocation of ``module_name``."""
        self.controller.rebuilders[module_name] = rebuild

    def _on_request(self, request) -> None:
        if request.type_name != "proctl_relocate" or not request.reply_expected:
            return
        self.requests += 1
        module = request.values["module"]
        target = request.values["target_machine"]
        if module not in self.controller.rebuilders:
            self.commod.ali.reply(request, "proctl_ack", {
                "ok": 0, "detail": f"relocation of {module!r} not allowed",
            })
            return
        try:
            self.controller.relocate(
                module, target, rebuild=self.controller.rebuilders[module])
        except (SimulationError, KeyError) as exc:
            self.commod.ali.reply(request, "proctl_ack", {
                "ok": 0, "detail": str(exc)[:90],
            })
            return
        self.commod.ali.reply(request, "proctl_ack", {
            "ok": 1, "detail": f"{module} now on {target}",
        })
