"""Wire structures for the DRTS services (type ids 40–63)."""

from __future__ import annotations

from repro.conversion import ConversionRegistry, Field, StructDef

T_MONITOR_EVENT = 40
T_TIME_REQUEST = 41
T_TIME_REPLY = 42
T_ERRLOG_REPORT = 43
T_ERRLOG_ACK = 44
T_PROCTL_RELOCATE = 45
T_PROCTL_ACK = 46

_STRUCTS = [
    # One monitor data point, sent connectionless by the LCM-Layer.
    StructDef("monitor_event", T_MONITOR_EVENT, [
        Field("module", "char[64]"),
        Field("event", "char[16]"),
        Field("peer", "char[24]"),
        Field("msg_type", "char[32]"),
        Field("t", "f64"),
    ]),
    # Cristian-style time exchange for the precision time corrector.
    StructDef("time_request", T_TIME_REQUEST, [
        Field("client_send", "f64"),
    ]),
    StructDef("time_reply", T_TIME_REPLY, [
        Field("client_send", "f64"),
        Field("server_time", "f64"),
    ]),
    StructDef("errlog_report", T_ERRLOG_REPORT, [
        Field("module", "char[64]"),
        Field("text", "bytes"),
    ]),
    StructDef("errlog_ack", T_ERRLOG_ACK, [
        Field("ok", "u8"),
    ]),
    StructDef("proctl_relocate", T_PROCTL_RELOCATE, [
        Field("module", "char[64]"),
        Field("target_machine", "char[64]"),
    ]),
    StructDef("proctl_ack", T_PROCTL_ACK, [
        Field("ok", "u8"),
        Field("detail", "char[96]"),
    ]),
]


def register_drts_types(registry: ConversionRegistry) -> None:
    """Install the DRTS wire structures into a registry."""
    for sdef in _STRUCTS:
        registry.register(sdef)
