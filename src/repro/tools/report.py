"""Experiment report generator.

Collects the tables the benches wrote to ``benchmarks/results/`` into a
single markdown report, so a fresh run of::

    pytest benchmarks/ --benchmark-only
    python -m repro.tools.report

yields an up-to-date ``EXPERIMENTS-RESULTS.md`` next to the results.
"""

from __future__ import annotations

import json
import os
import sys
from datetime import datetime, timezone
from typing import Dict, List, Optional

# Experiment-id prefix -> (title, paper sections)
_EXPERIMENTS = [
    ("test_bench_layering", "E1-layering", "Figs. 2-1 … 2-4"),
    ("test_bench_naming", "E2-naming", "Secs. 3.2–3.3"),
    ("test_bench_tadds", "E3-tadds", "Sec. 3.4"),
    ("test_bench_reconfig", "E4-reconfig", "Sec. 3.5"),
    ("test_bench_internet", "E5-internet", "Secs. 4.1–4.2"),
    ("test_bench_gwfail", "E6-gwfail", "Sec. 4.3"),
    ("test_bench_conversion", "E7-conversion", "Sec. 5"),
    ("test_bench_shift_mode", "E7-conversion (ablation)", "Sec. 5.2"),
    ("test_bench_recursion", "E8-recursion", "Sec. 6.1"),
    ("test_bench_nsloop", "E9-nsloop", "Sec. 6.3"),
    ("test_bench_portability", "E10-portability", "Secs. 1, 2.2, 7"),
    ("test_bench_ursa", "E11-ursa", "Secs. 1.2, 7"),
    ("test_bench_timemon", "E12-timemon", "Secs. 1.3, 6.1"),
    ("test_bench_scale", "E13-scale", "Secs. 3.3, 4.2"),
]


def _results_dir(base: Optional[str] = None) -> str:
    if base is not None:
        return base
    here = os.path.dirname(os.path.abspath(__file__))
    repo = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(repo, "benchmarks", "results")


def collect_tables(results_dir: Optional[str] = None) -> Dict[str, List[str]]:
    """experiment id -> list of result-file texts (sorted by filename)."""
    directory = _results_dir(results_dir)
    grouped: Dict[str, List[str]] = {}
    if not os.path.isdir(directory):
        return grouped
    for filename in sorted(os.listdir(directory)):
        if not filename.endswith(".txt"):
            continue
        for prefix, exp_id, _ in _EXPERIMENTS:
            if filename.startswith(prefix):
                with open(os.path.join(directory, filename)) as f:
                    grouped.setdefault(exp_id, []).append(f.read().strip())
                break
    return grouped


def _pipeline_path(results_dir: Optional[str] = None) -> str:
    # BENCH_pipeline.json is committed at the repo root (two levels up
    # from benchmarks/results/), written by benchmarks/microbench.py.
    directory = _results_dir(results_dir)
    return os.path.join(os.path.dirname(os.path.dirname(directory)),
                        "BENCH_pipeline.json")


def pipeline_lines(results_dir: Optional[str] = None) -> List[str]:
    """The fast-path microbench trajectory as markdown lines (empty when
    BENCH_pipeline.json is absent or unreadable)."""
    path = _pipeline_path(results_dir)
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError):
        return []
    if not isinstance(rows, list) or not rows:
        return []
    lines = [
        "## Fast-path pipeline (benchmarks/microbench.py)",
        "",
        "From `BENCH_pipeline.json` — regenerate with "
        "`python benchmarks/microbench.py`.",
        "",
        "| bench | metric | value | unit |",
        "|---|---|---|---|",
    ]
    for row in rows:
        if not isinstance(row, dict):
            continue
        lines.append(
            "| {bench} | {metric} | {value} | {unit} |".format(
                bench=row.get("bench", "?"), metric=row.get("metric", "?"),
                value=row.get("value", "?"), unit=row.get("unit", "?"),
            )
        )
    lines.append("")
    return lines


def _naming_path(results_dir: Optional[str] = None) -> str:
    # BENCH_naming.json sits next to BENCH_pipeline.json at the repo
    # root, written by the same microbench run.
    return os.path.join(os.path.dirname(_pipeline_path(results_dir)),
                        "BENCH_naming.json")


def naming_lines(results_dir: Optional[str] = None) -> List[str]:
    """The control-plane work-saved table as markdown lines (empty when
    BENCH_naming.json is absent or unreadable)."""
    path = _naming_path(results_dir)
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError):
        return []
    if not isinstance(rows, list) or not rows:
        return []
    lines = [
        "## Control-plane work saved (benchmarks/microbench.py)",
        "",
        "From `BENCH_naming.json` — the PROTOCOL.md §9 resolution cache, "
        "single-flight coalescing, and batched Name-Server operations, "
        "the pinned E5-internet invariants re-checked with the "
        "cache on, and the PROTOCOL.md §14 sharded sweep (1/2/4-shard "
        "bulk load of 10^5 modules with flat resolve cost, plus the "
        "million-name ring placement balance).  Regenerate with "
        "`python benchmarks/microbench.py --naming`.",
        "",
        "| bench | metric | value | unit |",
        "|---|---|---|---|",
    ]
    for row in rows:
        if not isinstance(row, dict):
            continue
        lines.append(
            "| {bench} | {metric} | {value} | {unit} |".format(
                bench=row.get("bench", "?"), metric=row.get("metric", "?"),
                value=row.get("value", "?"), unit=row.get("unit", "?"),
            )
        )
    lines.append("")
    return lines


def _recovery_path(results_dir: Optional[str] = None) -> str:
    # BENCH_recovery.json sits next to the other bench JSONs at the
    # repo root, written by the same microbench run.
    return os.path.join(os.path.dirname(_pipeline_path(results_dir)),
                        "BENCH_recovery.json")


def recovery_lines(results_dir: Optional[str] = None) -> List[str]:
    """The circuit-repair / crash-recovery table as markdown lines
    (empty when BENCH_recovery.json is absent or unreadable)."""
    path = _recovery_path(results_dir)
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError):
        return []
    if not isinstance(rows, list) or not rows:
        return []
    lines = [
        "## Crash recovery and circuit repair (benchmarks/microbench.py)",
        "",
        "From `BENCH_recovery.json` — the PROTOCOL.md §10 chaos run: a "
        "mid-chain gateway of the E5 3-gateway internet is crashed and "
        "restarted under a seeded fault schedule, and the conversation "
        "completes through circuit repair.  Repairs, reopen attempts, "
        "Name-Server failovers, and the bounded-backoff histogram are "
        "read straight off the run's counters.  Regenerate with "
        "`python benchmarks/microbench.py`.",
        "",
        "| bench | metric | value | unit |",
        "|---|---|---|---|",
    ]
    for row in rows:
        if not isinstance(row, dict):
            continue
        lines.append(
            "| {bench} | {metric} | {value} | {unit} |".format(
                bench=row.get("bench", "?"), metric=row.get("metric", "?"),
                value=row.get("value", "?"), unit=row.get("unit", "?"),
            )
        )
    lines.append("")
    return lines


def _flow_path(results_dir: Optional[str] = None) -> str:
    # BENCH_flow.json sits next to the other bench JSONs at the repo
    # root, written by the same microbench run.
    return os.path.join(os.path.dirname(_pipeline_path(results_dir)),
                        "BENCH_flow.json")


def flow_lines(results_dir: Optional[str] = None) -> List[str]:
    """The flow-control / backpressure table as markdown lines (empty
    when BENCH_flow.json is absent or unreadable)."""
    path = _flow_path(results_dir)
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError):
        return []
    if not isinstance(rows, list) or not rows:
        return []
    lines = [
        "## Flow control and backpressure (benchmarks/microbench.py)",
        "",
        "From `BENCH_flow.json` — the PROTOCOL.md §12 overload run: a "
        "fast producer floods a polling consumer through a gateway, "
        "with credit-based flow control on vs off.  The controlled "
        "queue ceiling, the uncontrolled queue peak, goodput on both "
        "sides, and the credit counters (stalls, probes, grants, "
        "blocked sends) are read straight off the run.  Regenerate "
        "with `python benchmarks/microbench.py`.",
        "",
        "| bench | metric | value | unit |",
        "|---|---|---|---|",
    ]
    for row in rows:
        if not isinstance(row, dict):
            continue
        lines.append(
            "| {bench} | {metric} | {value} | {unit} |".format(
                bench=row.get("bench", "?"), metric=row.get("metric", "?"),
                value=row.get("value", "?"), unit=row.get("unit", "?"),
            )
        )
    lines.append("")
    return lines


def _dispatch_path(results_dir: Optional[str] = None) -> str:
    # BENCH_dispatch.json sits next to the other bench JSONs at the
    # repo root, written by the same microbench run.
    return os.path.join(os.path.dirname(_pipeline_path(results_dir)),
                        "BENCH_dispatch.json")


def dispatch_lines(results_dir: Optional[str] = None) -> List[str]:
    """The frame-train / vectorized-dispatch table as markdown lines
    (empty when BENCH_dispatch.json is absent or unreadable)."""
    path = _dispatch_path(results_dir)
    try:
        with open(path) as f:
            rows = json.load(f)
    except (OSError, ValueError):
        return []
    if not isinstance(rows, list) or not rows:
        return []
    lines = [
        "## Dispatch efficiency: frame trains (benchmarks/microbench.py)",
        "",
        "From `BENCH_dispatch.json` — the PROTOCOL.md §13 frame-train "
        "sweep: the E13 fan-in workload at 10 / 1k / 10k modules with "
        "train coalescing off vs on.  Scheduler events per delivered "
        "message, end-to-end drain throughput, the train counters "
        "(coalesced trains, ND train frames, gateway train splices and "
        "rotations, LCM train drains), and the pinned E5 establishment "
        "frame counts re-checked with trains on are read straight off "
        "the runs.  Regenerate with `python benchmarks/microbench.py`.",
        "",
        "| bench | metric | value | unit |",
        "|---|---|---|---|",
    ]
    for row in rows:
        if not isinstance(row, dict):
            continue
        lines.append(
            "| {bench} | {metric} | {value} | {unit} |".format(
                bench=row.get("bench", "?"), metric=row.get("metric", "?"),
                value=row.get("value", "?"), unit=row.get("unit", "?"),
            )
        )
    lines.append("")
    return lines


def compose_report(results_dir: Optional[str] = None,
                   now: Optional[str] = None) -> str:
    """The full markdown report as a string."""
    grouped = collect_tables(results_dir)
    stamp = now or datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
    lines = [
        "# Experiment results (generated)",
        "",
        f"Generated {stamp} from `benchmarks/results/`.  Regenerate with:",
        "",
        "```",
        "pytest benchmarks/ --benchmark-only",
        "python -m repro.tools.report",
        "```",
        "",
        "Claim-by-claim commentary lives in EXPERIMENTS.md; these are the",
        "raw regenerated tables.",
        "",
    ]
    seen = set()
    for _, exp_id, sections in _EXPERIMENTS:
        if exp_id in seen or exp_id not in grouped:
            continue
        seen.add(exp_id)
        lines.append(f"## {exp_id}  ({sections})")
        lines.append("")
        for chunk in grouped[exp_id]:
            lines.append("```")
            lines.append(chunk)
            lines.append("```")
            lines.append("")
    lines.extend(pipeline_lines(results_dir))
    lines.extend(naming_lines(results_dir))
    lines.extend(recovery_lines(results_dir))
    lines.extend(flow_lines(results_dir))
    lines.extend(dispatch_lines(results_dir))
    missing = [exp_id for _, exp_id, _ in _EXPERIMENTS
               if exp_id not in seen]
    if missing:
        lines.append("## Missing results")
        lines.append("")
        lines.append("Run the benches to produce: " + ", ".join(
            sorted(set(missing))))
        lines.append("")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point: write the report (optional argv: output path)."""
    argv = argv if argv is not None else sys.argv[1:]
    out_path = argv[0] if argv else os.path.join(
        os.path.dirname(_results_dir()), "..", "EXPERIMENTS-RESULTS.md")
    report = compose_report()
    out_path = os.path.abspath(out_path)
    with open(out_path, "w") as f:
        f.write(report + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - thin CLI shim
    raise SystemExit(main())
