"""Operator tooling: the experiment report generator."""

from repro.tools.report import compose_report

__all__ = ["compose_report"]
