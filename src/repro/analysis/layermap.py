"""The declarative layer map: the paper's Fig. 2-1 stack as data.

Each :class:`Layer` names the modules it contains (exact names in
``MODULE_OVERRIDES``, package prefixes in ``prefixes``) and the layers
it may import from (its own layer is always allowed).  The layering
rule walks every import edge in the tree and reports any edge whose
target layer is not in the source layer's ``allowed`` set.

The stack, bottom to top (paper Sec. 2, Fig. 2-1):

====================  =====================================================
layer                 contents
====================  =====================================================
``foundation``        ``repro.errors``, ``repro.util`` — importable anywhere
``netsim``            the simulated physical network
``machine``           simulated machines, processes, clocks (the "OS")
``conversion``        data-conversion system (Sec. 5)
``ipcs``              native inter-process communication substrates
``ntcs_vocab``        shared NTCS vocabulary: addresses, wire messages,
                      control-body structs, well-known table
``protocols``         per-service wire structs (naming, DRTS, WM, URSA) —
                      packed-mode message definitions only (Sec. 5.2)
``nd``                ND-Layer: STD-IF + drivers (Sec. 2.2)
``ip``                IP-Layer: internetting (Sec. 2.2)
``lcm``               LCM-Layer: logical channel management (Sec. 2.3)
``nucleus``           the passive Nucleus assembling ND/IP/LCM
``gateway``           gateway modules (two stacks spliced; Sec. 4)
``nsp``               NSP-Layer / naming service (Sec. 3)
``ali``               ALI-Layer veneer — the ComMod (Sec. 2.1, 2.4)
``apps``              applications: WM, URSA, DRTS services — "to the
                      application, the ComMod is the NTCS"
``harness``           testbed wiring, deployment scripts, realnet
                      substrate, tools — may import anything
====================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Layer:
    """One stratum of the stack: its modules and its import rights."""

    name: str
    prefixes: Tuple[str, ...]
    allowed: FrozenSet[str]


def _layer(name: str, prefixes: Sequence[str], allowed: Sequence[str]) -> Layer:
    return Layer(name=name, prefixes=tuple(prefixes),
                 allowed=frozenset(allowed) | {name})


LAYERS: Tuple[Layer, ...] = (
    _layer("foundation", ["repro.errors", "repro.util"], []),
    _layer("netsim", ["repro.netsim"], ["foundation"]),
    _layer("machine", ["repro.machine"], ["foundation", "netsim"]),
    _layer("conversion", ["repro.conversion"], ["foundation", "machine"]),
    _layer("ipcs", ["repro.ipcs"], ["foundation", "netsim", "machine"]),
    _layer("ntcs_vocab", [], ["foundation", "conversion"]),
    _layer("protocols", [], ["foundation", "conversion", "ntcs_vocab"]),
    _layer("nd", ["repro.ntcs.drivers"],
           ["foundation", "machine", "conversion", "ipcs", "ntcs_vocab"]),
    _layer("ip", [], ["foundation", "conversion", "ntcs_vocab", "nd"]),
    _layer("lcm", [], ["foundation", "conversion", "ntcs_vocab", "ip"]),
    _layer("nucleus", [],
           ["foundation", "machine", "conversion", "ntcs_vocab",
            "nd", "ip", "lcm"]),
    _layer("gateway", [],
           ["foundation", "machine", "conversion", "ntcs_vocab",
            "nd", "ip", "lcm", "nucleus"]),
    _layer("nsp", ["repro.naming"],
           ["foundation", "machine", "conversion", "ntcs_vocab",
            "protocols", "lcm", "nucleus"]),
    _layer("ali", ["repro.commod"],
           ["foundation", "machine", "conversion", "ntcs_vocab",
            "protocols", "lcm", "nucleus", "nsp"]),
    _layer("apps", ["repro.wm", "repro.ursa", "repro.drts"],
           ["foundation", "machine", "conversion", "protocols",
            "nsp", "ali"]),
    _layer("harness",
           ["repro.realnet", "repro.tools", "repro.analysis"],
           [layer for layer in (
               "foundation", "netsim", "machine", "conversion", "ipcs",
               "ntcs_vocab", "protocols", "nd", "ip", "lcm", "nucleus",
               "gateway", "nsp", "ali", "apps")]),
)

# Exact-module assignments, consulted before the prefix rules.  These
# place the NTCS-internal stack (one module per paper layer), the
# per-service wire-struct modules, and the harness-level odd ones out
# (deployment/builder modules living inside app or substrate packages).
MODULE_OVERRIDES: Dict[str, str] = {
    # the NTCS package itself
    "repro.ntcs": "nucleus",
    "repro.ntcs.nucleus": "nucleus",
    "repro.ntcs.gateway": "gateway",
    "repro.ntcs.lcm": "lcm",
    "repro.ntcs.iplayer": "ip",
    "repro.ntcs.flow": "ip",
    "repro.ntcs.ndlayer": "nd",
    "repro.ntcs.stdif": "nd",
    # shared NTCS vocabulary
    "repro.ntcs.address": "ntcs_vocab",
    "repro.ntcs.message": "ntcs_vocab",
    "repro.ntcs.protocol": "ntcs_vocab",
    "repro.ntcs.wellknown": "ntcs_vocab",
    # per-service packed-mode wire structs (Sec. 5.2)
    "repro.naming.protocol": "protocols",
    "repro.drts.protocol": "protocols",
    "repro.wm.protocol": "protocols",
    "repro.ursa.protocol": "protocols",
    # harness-level modules living inside other packages
    "repro": "harness",
    "repro.testbed": "harness",
    "repro.netsim.topology": "harness",
    "repro.ursa": "harness",        # package init re-exports deploy helpers
    "repro.ursa.deploy": "harness",
}

_BY_NAME: Dict[str, Layer] = {layer.name: layer for layer in LAYERS}


def layer_of(module: str) -> Optional[Layer]:
    """The layer a dotted module name belongs to, or None for modules
    outside the map (non-repro modules, stdlib, third party)."""
    if module in MODULE_OVERRIDES:
        return _BY_NAME[MODULE_OVERRIDES[module]]
    best: Optional[Layer] = None
    best_len = -1
    for layer in LAYERS:
        for prefix in layer.prefixes:
            if (module == prefix or module.startswith(prefix + ".")) \
                    and len(prefix) > best_len:
                best, best_len = layer, len(prefix)
    return best


def layer_name(module: str) -> Optional[str]:
    """Convenience: the layer's name for a module, or None."""
    layer = layer_of(module)
    return layer.name if layer else None
