"""ntcslint: static analysis of the NTCS reproduction's architecture.

The paper's guarantees are architectural — strict layering (Fig. 2-1),
reserved packed-mode type-id ranges (Sec. 5.2), a simulation driven
purely by virtual time, and disciplined error propagation through the
passive Nucleus.  This package turns those conventions into
machine-checked invariants: an AST-based rule engine
(:mod:`repro.analysis.engine`), a declarative layer map
(:mod:`repro.analysis.layermap`), four built-in rule families
(:mod:`repro.analysis.rules`), and a CLI
(``python -m repro.analysis`` / ``ntcslint``).

Programmatic use::

    from repro.analysis import analyze
    findings = analyze(["src/repro"])          # [] when clean
"""

from repro.analysis.engine import (
    Finding,
    Project,
    all_rules,
    analyze,
    run_rules,
)
from repro.analysis.layermap import LAYERS, MODULE_OVERRIDES, layer_name, layer_of

__all__ = [
    "Finding",
    "Project",
    "analyze",
    "run_rules",
    "all_rules",
    "LAYERS",
    "MODULE_OVERRIDES",
    "layer_of",
    "layer_name",
]
