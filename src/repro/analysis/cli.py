"""ntcslint command line: ``python -m repro.analysis`` / ``ntcslint``.

Usage::

    ntcslint [PATH ...] [--format text|json] [--rule TOKEN ...]
             [--list-rules]

With no paths, the installed ``repro`` package tree is scanned.  Exit
status is 0 when no findings survive (waivers applied), 1 when any do,
2 on usage errors — so the command drops straight into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import Finding, all_rules, analyze


def _default_target() -> Path:
    # The repro package directory itself (…/src/repro).
    return Path(__file__).resolve().parents[1]


def build_parser() -> argparse.ArgumentParser:
    """The ntcslint argument parser (shared by tests and the CLI)."""
    parser = argparse.ArgumentParser(
        prog="ntcslint",
        description="Static architecture checks for the NTCS reproduction: "
                    "layering (Fig. 2-1), protocol type-id reservations "
                    "(Sec. 5.2), determinism, and exception hygiene.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="TOKEN",
        help="only run/report rules matching TOKEN — a family name "
             "(layering, protocol, determinism, hygiene) or a rule-id "
             "prefix (LAY, DET002, ...); repeatable",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule families and ids, then exit",
    )
    return parser


def _print_rules() -> None:
    for rule_obj in all_rules():
        print(f"{rule_obj.name}: {', '.join(rule_obj.ids)}")
        print(f"    {rule_obj.description}")


def _emit(findings: List[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
        return
    for finding in findings:
        print(finding.render())
    if findings:
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        print(f"ntcslint: {errors} error(s), {warnings} warning(s)")
    else:
        print("ntcslint: clean")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status (0 clean,
    1 findings, 2 usage error)."""
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    for token in args.rule or ():
        # A typo'd token would match nothing and report "clean", which
        # in CI silently disables the gate — reject it loudly instead.
        if not any(token == rule_obj.name
                   or any(rid.startswith(token) for rid in rule_obj.ids)
                   for rule_obj in all_rules()):
            print(f"ntcslint: unknown rule token: {token} (see --list-rules)",
                  file=sys.stderr)
            return 2
    paths = args.paths or [_default_target()]
    for path in paths:
        if not path.exists():
            print(f"ntcslint: no such path: {path}", file=sys.stderr)
            return 2
    findings = analyze(paths, rule_filter=args.rule)
    _emit(findings, args.format)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
