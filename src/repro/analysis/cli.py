"""ntcslint command line: ``python -m repro.analysis`` / ``ntcslint``.

Usage::

    ntcslint [PATH ...] [--format text|json|sarif] [--rule TOKEN ...]
             [--exclude TOKEN ...] [--max-waivers N] [--list-waivers]
             [--cache FILE] [--list-rules]
    ntcslint verify [PATH ...] [--trace FILE ...]
             [--format text|json|sarif] [--exclude TOKEN ...]

The flat form runs every rule family (the model stage included).  The
``verify`` subcommand runs *only* the model stage — protocol
extraction plus the MDL checks — and optionally replays netsim JSONL
wire traces against the extracted wire protocol (TRC001/TRC002).

With no paths, the installed ``repro`` package tree is scanned.  Exit
status is 0 when no findings survive (waivers applied), 1 when any do
— or when the waiver count exceeds ``--max-waivers`` — and 2 on usage
errors, so the command drops straight into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis import cache as result_cache
from repro.analysis.engine import (
    Finding,
    Project,
    Waiver,
    all_rules,
    run_rules_with_waivers,
)
from repro.analysis.sarif import render_sarif

FORMATS = ("text", "json", "sarif")


def _default_target() -> Path:
    # The repro package directory itself (…/src/repro).
    return Path(__file__).resolve().parents[1]


def build_parser() -> argparse.ArgumentParser:
    """The ntcslint argument parser (shared by tests and the CLI)."""
    parser = argparse.ArgumentParser(
        prog="ntcslint",
        description="Static architecture checks for the NTCS reproduction: "
                    "layering (Fig. 2-1), protocol type-id reservations "
                    "(Sec. 5.2), determinism, exception hygiene, and "
                    "protocol model checking (see also: ntcslint verify).",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to scan (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="TOKEN",
        help="only run/report rules matching TOKEN — a family name "
             "(layering, protocol, determinism, hygiene, model) or a "
             "rule-id prefix (LAY, DET002, ...); repeatable",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="TOKEN",
        help="skip files whose path contains TOKEN (posix form); "
             "repeatable — how CI scans tests/ without the "
             "intentionally-violating fixture trees",
    )
    parser.add_argument(
        "--max-waivers", type=int, default=None, metavar="N",
        help="fail (exit 1) when more than N findings are suppressed by "
             "ntcslint: allow pragmas — the committed-baseline ratchet",
    )
    parser.add_argument(
        "--list-waivers", action="store_true",
        help="print each active waiver with its justification, then exit "
             "(0 unless --max-waivers is also given and exceeded)",
    )
    parser.add_argument(
        "--cache", type=Path, default=None, metavar="FILE",
        help="result cache keyed on per-file content hashes; a hit "
             "skips parsing entirely",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule families and ids, then exit",
    )
    return parser


def build_verify_parser() -> argparse.ArgumentParser:
    """Parser for the ``verify`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="ntcslint verify",
        description="Protocol model checking: extract the message/machine "
                    "model from the tree, run the MDL rules, and "
                    "optionally replay netsim wire traces against the "
                    "extracted wire protocol.",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to extract from (default: the repro "
             "package)",
    )
    parser.add_argument(
        "--trace", action="append", default=None, metavar="FILE",
        help="netsim JSONL wire trace to conformance-check (repeatable)",
    )
    parser.add_argument(
        "--format", choices=FORMATS, default="text",
        help="findings output format (default: text)",
    )
    parser.add_argument(
        "--exclude", action="append", default=None, metavar="TOKEN",
        help="skip files whose path contains TOKEN; repeatable",
    )
    return parser


def _print_rules() -> None:
    for rule_obj in all_rules():
        print(f"{rule_obj.name}: {', '.join(rule_obj.ids)}")
        print(f"    {rule_obj.description}")


def _emit(findings: List[Finding], fmt: str) -> None:
    if fmt == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
        return
    if fmt == "sarif":
        print(render_sarif(findings))
        return
    for finding in findings:
        print(finding.render())
    if findings:
        errors = sum(1 for f in findings if f.severity == "error")
        warnings = len(findings) - errors
        print(f"ntcslint: {errors} error(s), {warnings} warning(s)")
    else:
        print("ntcslint: clean")


def _check_paths(paths: Sequence[Path]) -> Optional[int]:
    for path in paths:
        if not path.exists():
            print(f"ntcslint: no such path: {path}", file=sys.stderr)
            return 2
    return None


def _run_with_cache(paths: Sequence[Path],
                    rule_filter: Optional[Sequence[str]],
                    exclude: Sequence[str],
                    cache_path: Optional[Path]):
    if cache_path is not None:
        key = result_cache.cache_key(paths, rule_filter, exclude)
        hit = result_cache.load(cache_path, key)
        if hit is not None:
            return hit
    project = Project.load(paths, exclude=exclude)
    findings, waivers = run_rules_with_waivers(project,
                                               rule_filter=rule_filter)
    if cache_path is not None:
        result_cache.store(cache_path, key, findings, waivers)
    return findings, waivers


def _waiver_budget_exceeded(waivers: List[Waiver],
                            max_waivers: Optional[int]) -> bool:
    if max_waivers is None or len(waivers) <= max_waivers:
        return False
    print(f"ntcslint: {len(waivers)} waiver(s) active, budget is "
          f"{max_waivers} — remove a pragma or justify raising the "
          f"committed baseline", file=sys.stderr)
    for waiver in waivers:
        print(f"  {waiver.render()}", file=sys.stderr)
    return True


def main_verify(argv: Sequence[str]) -> int:
    """The ``verify`` subcommand: model checks + trace conformance."""
    args = build_verify_parser().parse_args(argv)
    paths = args.paths or [_default_target()]
    bad = _check_paths(paths)
    if bad is not None:
        return bad
    for trace in args.trace or ():
        if not Path(trace).exists():
            print(f"ntcslint: no such trace: {trace}", file=sys.stderr)
            return 2
    project = Project.load(paths, exclude=tuple(args.exclude or ()))
    findings, _ = run_rules_with_waivers(project, rule_filter=["model"])
    if args.trace:
        # Imported lazily: plain lint paths never need the extractor
        # twice nor the NTCS message module.
        from repro.analysis.model import extract
        from repro.analysis.model.tracecheck import check_traces
        findings = list(findings)
        findings.extend(check_traces(args.trace, extract(project)))
    _emit(findings, args.format)
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status (0 clean,
    1 findings, 2 usage error)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "verify":
        return main_verify(argv[1:])
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_rules()
        return 0
    for token in args.rule or ():
        # A typo'd token would match nothing and report "clean", which
        # in CI silently disables the gate — reject it loudly instead.
        if not any(token == rule_obj.name
                   or any(rid.startswith(token) for rid in rule_obj.ids)
                   for rule_obj in all_rules()):
            print(f"ntcslint: unknown rule token: {token} (see --list-rules)",
                  file=sys.stderr)
            return 2
    paths = args.paths or [_default_target()]
    bad = _check_paths(paths)
    if bad is not None:
        return bad
    exclude = tuple(args.exclude or ())
    findings, waivers = _run_with_cache(
        paths, args.rule, exclude, args.cache)
    if args.list_waivers:
        for waiver in waivers:
            print(waiver.render())
        print(f"ntcslint: {len(waivers)} waiver(s) active")
        return 1 if _waiver_budget_exceeded(waivers, args.max_waivers) else 0
    over_budget = _waiver_budget_exceeded(waivers, args.max_waivers)
    _emit(findings, args.format)
    return 1 if (findings or over_budget) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
