"""Intermediate representation for ntcsverify (the model stage).

The extractor (:mod:`repro.analysis.model.extractor`) populates a
:class:`ProtocolModel` from the parsed project; the checker
(:mod:`repro.analysis.model.checker`) runs the MDL rules over it; the
trace checker (:mod:`repro.analysis.model.tracecheck`) replays netsim
JSONL traces against the extracted wire protocol.

Three layers of fact live here:

* **messages** — every ``StructDef`` defined under the ``repro``
  package, joined with every *send site* (``call``/``send``/
  ``datagram``/``reply``/``pack_internal``/NSP ``_call``) and every
  *handler site* (``unpack_internal``, ``type_name`` comparisons,
  dispatch-dict keys, ``@handles`` annotations, kind dispatch);
* **machines** — declarative ``PROTOCOL_MACHINE`` literals in the
  source, cross-validated against the ``.state`` strings the same
  module actually assigns (the extraction proof);
* **wire** — the ``WIRE_PROTOCOL`` declaration next to the kind table
  in :mod:`repro.ntcs.message`: per-kind *requires*/*establishes*
  handshake flags, the model that chaos traces are replayed against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

# Send-site classification (Site.kind for sends).
SEND_REQUEST = "request"      # call / call_async / NSP _call / _resolve
SEND_PLAIN = "send"           # lcm/ali send
SEND_DATAGRAM = "datagram"    # one-way, no reply expected
SEND_REPLY = "reply"          # reply() / handler-return tuple
SEND_INTERNAL = "internal"    # pack_internal control body


@dataclass(frozen=True)
class Site:
    """One source location where a message is sent or handled."""

    module: str       # dotted module name
    path: str         # file path
    line: int
    kind: str         # send classification, or "handler" / "expect"


@dataclass
class MessageSpec:
    """One wire message: its StructDef plus every use site."""

    name: str
    type_id: Optional[int]
    module: str
    path: str
    line: int
    sends: List[Site] = field(default_factory=list)
    handlers: List[Site] = field(default_factory=list)
    expects: List[Site] = field(default_factory=list)   # reply consumption

    @property
    def is_request(self) -> bool:
        return any(s.kind == SEND_REQUEST for s in self.sends)

    @property
    def is_reply(self) -> bool:
        return (any(s.kind == SEND_REPLY for s in self.sends)
                or bool(self.expects))


@dataclass(frozen=True)
class Edge:
    """One transition of a declared protocol machine."""

    event: str                    # "recv X" / "send X" / "timeout t" / "local op"
    next: str
    bounded: Optional[str] = None  # names the budget bounding a retry loop
    progress: bool = False         # the loop does useful application work
    queue: Optional[str] = None    # "+q" (enqueue) or "-q" (drain)

    @property
    def is_timeout(self) -> bool:
        return self.event.startswith("timeout")


@dataclass
class Machine:
    """One declared per-module protocol state machine."""

    name: str
    module: str
    path: str
    line: int
    initial: str
    terminal: Tuple[str, ...]
    states: Dict[str, dict] = field(default_factory=dict)  # name -> raw decl
    edges: Dict[str, List[Edge]] = field(default_factory=dict)
    waits: Set[str] = field(default_factory=set)
    anchor: bool = False  # states must match the module's .state strings


@dataclass
class WireProtocol:
    """The declared wire handshake model from ``repro.ntcs.message``."""

    module: str
    path: str
    line: int
    kind_names: Dict[int, str]              # numeric kind -> "IVC_OPEN" ...
    requires: Dict[str, Tuple[str, ...]]    # kind name -> needed flags
    establishes: Dict[str, Tuple[str, ...]]  # kind name -> flags it sets


@dataclass
class ProtocolModel:
    """Everything the MDL rules and the trace checker consume."""

    messages: Dict[str, MessageSpec] = field(default_factory=dict)
    machines: List[Machine] = field(default_factory=list)
    wires: List[WireProtocol] = field(default_factory=list)
    # Modules defining KIND_NAMES (used to demand a WIRE_PROTOCOL).
    kind_table_modules: List[Tuple[str, str, int]] = field(default_factory=list)
    # module name -> .state strings observed in assignments/comparisons
    state_strings: Dict[str, Set[str]] = field(default_factory=dict)
    # declaration parse problems: (module, path, line, message)
    errors: List[Tuple[str, str, int, str]] = field(default_factory=list)

    def by_type_id(self) -> Dict[int, MessageSpec]:
        """The message table keyed by wire type id (typed specs only)."""
        return {m.type_id: m for m in self.messages.values()
                if m.type_id is not None}

    def primary_wire(self) -> Optional[WireProtocol]:
        """The wire model traces replay against: the declaration in
        ``repro.ntcs.message``, or the only one present."""
        for wire in self.wires:
            if wire.module == "repro.ntcs.message":
                return wire
        return self.wires[0] if self.wires else None
