"""Model-check the extracted protocol model: the MDL rules.

MDL001 (error) a sent, non-reply message has no handler anywhere — or
               none at the layer its reserved type-id range names
               (1–9 → ``repro.ntcs``, 10–39 → ``repro.naming``,
               40–63 → ``repro.drts``).  Replies are exempt: the LCM
               correlation table is their receiver.
MDL002 (error) a request's handling modules never send a reply, or a
               declared waits-state has no timeout edge — either way a
               caller can block forever on one lost frame.
MDL003 (error) a declared machine can deadlock: dead-end non-terminal
               state, unreachable state, no reachable terminal, edge to
               an undeclared state, anchor states that disagree with
               the ``.state`` strings the module actually uses, a kind
               table with no ``WIRE_PROTOCOL``, wire keys that disagree
               with the kind table, or a wire kind whose required
               handshake flags can never all be established (flag
               fixpoint) — plus any unparseable declaration.
MDL004 (error) a machine cycle with no exit discipline — no bounded
               retry budget, no timeout edge, no queue-draining edge,
               and no progress-marked edge — can livelock.
MDL005 (error) a cycle grows a queue (``"+q"`` edge) that no edge of
               the machine ever drains (``"-q"``) — unbounded buildup,
               the flow-control readiness check.

Machines are small (a handful of states), so the graph exploration is
exhaustive, not sampled: reachability is a full BFS and cycle analysis
runs over every strongly connected component.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import Finding, Project, SEVERITY_ERROR
from repro.analysis.model.ir import (
    Edge,
    Machine,
    MessageSpec,
    ProtocolModel,
    SEND_REPLY,
    WireProtocol,
)
from repro.analysis.rules.protocol import RESERVED_RANGES


def check_model(project: Project, model: ProtocolModel) -> List[Finding]:
    """Run every MDL rule over an extracted model."""
    findings: List[Finding] = []
    module_sources = {m.name: "\n".join(m.source_lines)
                      for m in project.modules}
    for module, path, line, message in model.errors:
        findings.append(_finding("MDL003", path, line, message))
    findings.extend(_check_receivers(model))
    findings.extend(_check_request_replies(model))
    for machine in model.machines:
        findings.extend(_check_machine(machine, module_sources))
    findings.extend(_check_anchors(model))
    findings.extend(_check_wire(model))
    return findings


def _finding(rule: str, path: str, line: int, message: str) -> Finding:
    return Finding(rule=rule, severity=SEVERITY_ERROR,
                   path=path, line=line, message=message)


# ---------------------------------------------------------------------------
# MDL001 — every sendable message has a receiver at the correct layer
# ---------------------------------------------------------------------------

def _required_layer(spec: MessageSpec) -> Optional[str]:
    if spec.type_id is None:
        return None
    for prefix, (lo, hi) in RESERVED_RANGES:
        if lo <= spec.type_id <= hi:
            return prefix
    return None


def _check_receivers(model: ProtocolModel) -> Iterable[Finding]:
    for name in sorted(model.messages):
        spec = model.messages[name]
        if not spec.sends or spec.is_reply:
            continue
        first_send = min(spec.sends, key=lambda s: (s.path, s.line))
        if not spec.handlers:
            yield _finding(
                "MDL001", first_send.path, first_send.line,
                f"message {name!r} (defined at {spec.path}:{spec.line}) "
                f"is sent here but has no handler anywhere in the tree",
            )
            continue
        layer = _required_layer(spec)
        if layer is not None and not any(
                h.module == layer or h.module.startswith(layer + ".")
                for h in spec.handlers):
            handled_in = sorted({h.module for h in spec.handlers})
            yield _finding(
                "MDL001", first_send.path, first_send.line,
                f"message {name!r} (type id {spec.type_id}) must be "
                f"handled under {layer}.* but is only handled in "
                f"{', '.join(handled_in)}",
            )


# ---------------------------------------------------------------------------
# MDL002(a) — every request's handling side can actually reply
# ---------------------------------------------------------------------------

def _check_request_replies(model: ProtocolModel) -> Iterable[Finding]:
    replying_modules: Set[str] = set()
    for spec in model.messages.values():
        replying_modules.update(
            s.module for s in spec.sends if s.kind == SEND_REPLY)
    for name in sorted(model.messages):
        spec = model.messages[name]
        if not spec.is_request or not spec.handlers:
            continue  # no handler at all is MDL001's report, not ours
        if not any(h.module in replying_modules for h in spec.handlers):
            first = min(spec.handlers, key=lambda s: (s.path, s.line))
            yield _finding(
                "MDL002", first.path, first.line,
                f"request {name!r} is handled here but no handling "
                f"module ever sends a reply — callers would block until "
                f"timeout on every call",
            )


# ---------------------------------------------------------------------------
# Machine graph checks: MDL002(b), MDL003, MDL004, MDL005
# ---------------------------------------------------------------------------

def _check_machine(machine: Machine,
                   module_sources: Dict[str, str]) -> Iterable[Finding]:
    where = f"machine {machine.name!r}"
    states = set(machine.states)

    if machine.initial not in states:
        yield _finding(
            "MDL003", machine.path, machine.line,
            f"{where}: initial state {machine.initial!r} is not declared")
        return
    bad_targets = False
    for state, edges in machine.edges.items():
        for edge in edges:
            if edge.next not in states:
                bad_targets = True
                yield _finding(
                    "MDL003", machine.path, machine.line,
                    f"{where}: state {state!r} has an edge to undeclared "
                    f"state {edge.next!r}")
    for terminal in machine.terminal:
        if terminal not in states:
            bad_targets = True
            yield _finding(
                "MDL003", machine.path, machine.line,
                f"{where}: terminal state {terminal!r} is not declared")
    if bad_targets:
        return  # graph analysis below assumes a well-formed edge set

    reachable = _reachable(machine)
    for state in sorted(states - reachable):
        yield _finding(
            "MDL003", machine.path, machine.line,
            f"{where}: state {state!r} is unreachable from "
            f"{machine.initial!r}")
    terminals = set(machine.terminal)
    if terminals and not (terminals & reachable):
        yield _finding(
            "MDL003", machine.path, machine.line,
            f"{where}: no terminal state "
            f"({', '.join(sorted(terminals))}) is reachable from "
            f"{machine.initial!r} — the machine cannot finish")
    for state in sorted(reachable):
        if state not in terminals and not machine.edges.get(state):
            yield _finding(
                "MDL003", machine.path, machine.line,
                f"{where}: non-terminal state {state!r} has no outgoing "
                f"edge — a deadlock once entered")

    # MDL002(b): a waiting state must carry a timeout edge.
    for state in sorted(machine.waits & reachable):
        if not any(e.is_timeout for e in machine.edges.get(state, [])):
            yield _finding(
                "MDL002", machine.path, machine.line,
                f"{where}: state {state!r} waits for a peer but has no "
                f"timeout edge — one lost frame blocks it forever")

    # Every claimed retry bound must be a name the module really uses.
    source = module_sources.get(machine.module, "")
    claimed = sorted({e.bounded for edges in machine.edges.values()
                      for e in edges if e.bounded})
    for bound in claimed:
        if bound not in source:
            yield _finding(
                "MDL004", machine.path, machine.line,
                f"{where}: claims retry bound {bound!r} but that name "
                f"appears nowhere in {machine.module}")

    drained = {e.queue[1:] for edges in machine.edges.values()
               for e in edges if e.queue and e.queue.startswith("-")}
    for component in _cyclic_sccs(machine, reachable):
        internal = [
            (state, edge)
            for state in component
            for edge in machine.edges.get(state, [])
            if edge.next in component
        ]
        # MDL004: a cycle needs an exit discipline.
        if not any(
                e.is_timeout or e.bounded or e.progress
                or (e.queue and e.queue.startswith("-"))
                for _, e in internal):
            cycle = " -> ".join(sorted(component))
            yield _finding(
                "MDL004", machine.path, machine.line,
                f"{where}: cycle [{cycle}] has no timeout, retry bound, "
                f"progress, or draining edge — it can livelock")
        # MDL005: a cycle growing a queue nobody drains.
        for state, edge in internal:
            if edge.queue and edge.queue.startswith("+"):
                queue = edge.queue[1:]
                if queue not in drained:
                    yield _finding(
                        "MDL005", machine.path, machine.line,
                        f"{where}: cycle through {state!r} grows queue "
                        f"{queue!r} but no edge of the machine drains it")


def _reachable(machine: Machine) -> Set[str]:
    seen = {machine.initial}
    frontier = [machine.initial]
    while frontier:
        state = frontier.pop()
        for edge in machine.edges.get(state, []):
            if edge.next not in seen:
                seen.add(edge.next)
                frontier.append(edge.next)
    return seen


def _cyclic_sccs(machine: Machine,
                 reachable: Set[str]) -> List[Set[str]]:
    """Strongly connected components that contain a cycle: size > 1, or
    a single state with a self-loop.  Iterative Tarjan — machines are
    tiny but fixture machines should not be able to blow the stack."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[Set[str]] = []

    def successors(state: str) -> List[str]:
        return [e.next for e in machine.edges.get(state, [])
                if e.next in reachable]

    for root in sorted(reachable):
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            state, child = work.pop()
            if child == 0:
                index[state] = lowlink[state] = counter[0]
                counter[0] += 1
                stack.append(state)
                on_stack.add(state)
            succ = successors(state)
            advanced = False
            for position in range(child, len(succ)):
                nxt = succ[position]
                if nxt not in index:
                    work.append((state, position + 1))
                    work.append((nxt, 0))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[state] = min(lowlink[state], index[nxt])
            if advanced:
                continue
            if lowlink[state] == index[state]:
                component: Set[str] = set()
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.add(member)
                    if member == state:
                        break
                if len(component) > 1 or any(
                        e.next == state
                        for e in machine.edges.get(state, [])):
                    components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
    return components


# ---------------------------------------------------------------------------
# Anchor proof: declared states match the module's .state strings
# ---------------------------------------------------------------------------

def _check_anchors(model: ProtocolModel) -> Iterable[Finding]:
    by_module: Dict[str, List[Machine]] = {}
    for machine in model.machines:
        if machine.anchor:
            by_module.setdefault(machine.module, []).append(machine)
    for module in sorted(by_module):
        machines = by_module[module]
        declared: Set[str] = set()
        for machine in machines:
            declared.update(machine.states)
        observed = model.state_strings.get(module, set())
        first = min(machines, key=lambda m: m.line)
        if not observed:
            yield _finding(
                "MDL003", first.path, first.line,
                f"anchor machine(s) in {module} but the module never "
                f"assigns or compares a .state string — nothing ties the "
                f"declaration to the code")
            continue
        missing = sorted(observed - declared)
        extra = sorted(declared - observed)
        if missing or extra:
            parts = []
            if missing:
                parts.append(f"code uses {missing} undeclared")
            if extra:
                parts.append(f"declaration has {extra} unused in code")
            yield _finding(
                "MDL003", first.path, first.line,
                f"anchor machine(s) in {module} disagree with the "
                f"module's .state strings: {'; '.join(parts)}")


# ---------------------------------------------------------------------------
# Wire protocol: MDL003 handshake fixpoint
# ---------------------------------------------------------------------------

def _check_wire(model: ProtocolModel) -> Iterable[Finding]:
    declared_modules = {w.module for w in model.wires}
    for module, path, line in model.kind_table_modules:
        if module not in declared_modules:
            yield _finding(
                "MDL003", path, line,
                f"{module} defines a KIND_NAMES table but no "
                f"WIRE_PROTOCOL — the wire handshake is unmodeled and "
                f"traces cannot be conformance-checked")
    for wire in model.wires:
        yield from _check_one_wire(wire)


def _check_one_wire(wire: WireProtocol) -> Iterable[Finding]:
    kind_set = set(wire.kind_names.values())
    wire_set = set(wire.requires)
    for name in sorted(kind_set - wire_set):
        yield _finding(
            "MDL003", wire.path, wire.line,
            f"wire kind {name!r} is in KIND_NAMES but missing from "
            f"WIRE_PROTOCOL")
    for name in sorted(wire_set - kind_set):
        yield _finding(
            "MDL003", wire.path, wire.line,
            f"WIRE_PROTOCOL names unknown kind {name!r} (not in "
            f"KIND_NAMES)")

    # Flag fixpoint: a kind is sendable once every flag it requires has
    # been established by some sendable kind; a kind that never becomes
    # sendable is a handshake deadlock baked into the declaration.
    sendable: Set[str] = set()
    flags: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name in sorted(wire_set - sendable):
            if set(wire.requires.get(name, ())) <= flags:
                sendable.add(name)
                flags.update(wire.establishes.get(name, ()))
                changed = True
    for name in sorted(wire_set - sendable):
        needed = sorted(set(wire.requires[name]) - flags)
        yield _finding(
            "MDL003", wire.path, wire.line,
            f"wire kind {name!r} requires flag(s) {needed} that no "
            f"sendable kind can ever establish — a handshake deadlock")
