"""ntcsverify: the model stage of the analysis package.

Importing this package registers the ``model`` rule family (MDL001–
MDL005) with the ntcslint engine, so ``python -m repro.analysis`` and
``make lint`` run the model checks alongside the per-file rule
families.  The ``verify`` subcommand runs *only* this family and adds
trace conformance (TRC001/TRC002) on top.
"""

from __future__ import annotations

from typing import Iterable

from repro.analysis.engine import Finding, Project, rule
from repro.analysis.model.checker import check_model
from repro.analysis.model.extractor import extract
from repro.analysis.model.ir import ProtocolModel
from repro.analysis.model.tracecheck import check_trace, check_traces

__all__ = ["extract", "check_model", "check_trace", "check_traces",
           "ProtocolModel"]


@rule(
    name="model",
    ids=("MDL001", "MDL002", "MDL003", "MDL004", "MDL005",
         "TRC001", "TRC002"),
    description="extracted protocol machines are complete, deadlock- and "
                "livelock-free; traces conform (verify --trace)",
)
def check_model_rule(project: Project) -> Iterable[Finding]:
    """Extract the protocol model and run the MDL rules over it.

    The TRC ids are registered here so they are filterable and known to
    the pragma checker, but they only fire from ``verify --trace`` —
    static analysis has no trace to replay.
    """
    return check_model(project, extract(project))
