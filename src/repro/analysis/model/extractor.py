"""Extract the protocol model from the parsed project.

The extractor never imports the code under analysis; everything is
read off the ASTs the ntcslint engine already holds:

* **message table** — every ``StructDef("name", T_ID, ...)`` in a
  module under the ``repro`` package, type ids resolved through the
  same constant-propagation pass the protocol rules use (module-local
  ``T_FOO = 12`` constants first, then a project-wide constant table
  for ids imported from the protocol modules);
* **send sites** — ``x.call/call_async(dst, "name", ...)``,
  ``x.send/datagram/reply(.., "name", ...)``, the NSP/replication
  ``self._call("name", ...)`` / ``self._resolve("name", ...)``
  wrappers, and ``pack_internal("name", ...)`` control bodies;
* **handler sites** — ``unpack_internal(T_CONST, ...)``,
  ``request.type_name == "name"`` comparisons (and ``in`` tuples),
  dispatch-dict literals (``self._handlers = {"name": fn}``, subscript
  assignment, and inline ``{...}.get(request.type_name)``),
  ``msg.kind == m.IVC_CLOSE`` kind dispatch joined through the kind
  table, and explicit ``@handles("name")`` annotations
  (:func:`repro.util.dispatch.handles`) for the spots AST pattern
  matching cannot see;
* **reply consumption** — ``self._expect(reply, "name")`` sites;
* **declared machines** — ``PROTOCOL_MACHINE`` / ``PROTOCOL_MACHINES``
  literals, plus the ``.state`` strings each module assigns or
  compares (the checker's extraction proof), and the
  ``WIRE_PROTOCOL`` / ``KIND_NAMES`` tables in the message module.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.engine import ModuleInfo, Project
from repro.analysis.model.ir import (
    Edge,
    Machine,
    MessageSpec,
    ProtocolModel,
    SEND_DATAGRAM,
    SEND_INTERNAL,
    SEND_PLAIN,
    SEND_REPLY,
    SEND_REQUEST,
    Site,
    WireProtocol,
)
from repro.analysis.rules.protocol import (
    _call_arg,
    _int_constants,
    _is_structdef_call,
    _literal_str,
    _resolve_id,
)

# method name -> (string-argument index, send classification)
_SEND_METHODS: Dict[str, Tuple[int, str]] = {
    "call": (1, SEND_REQUEST),
    "call_async": (1, SEND_REQUEST),
    "send": (1, SEND_PLAIN),
    "datagram": (1, SEND_DATAGRAM),
    "reply": (1, SEND_REPLY),
    "_call": (0, SEND_REQUEST),
    "_resolve": (0, SEND_REQUEST),
    "pack_internal": (0, SEND_INTERNAL),
}


def _in_repro_tree(module_name: str) -> bool:
    return module_name == "repro" or module_name.startswith("repro.")


def _callee_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


def _str_const(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The final identifier of a Name/Attribute chain (``m.IVC_CLOSE``
    -> ``IVC_CLOSE``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_attr(node: ast.expr, attr: str) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == attr


def extract(project: Project) -> ProtocolModel:
    """Build the :class:`ProtocolModel` for a parsed project."""
    model = ProtocolModel()
    global_consts = _global_constants(project)

    # Phase 1: the message table (repro-tree StructDefs only).
    for module in project.modules:
        if not _in_repro_tree(module.name):
            continue
        consts = dict(global_consts)
        consts.update(_int_constants(module.tree))
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_structdef_call(node)):
                continue
            name = _literal_str(_call_arg(node, 0, "name"))
            if name is None:
                continue
            type_id = _resolve_id(_call_arg(node, 1, "type_id"), consts)
            if name not in model.messages:
                model.messages[name] = MessageSpec(
                    name=name, type_id=type_id, module=module.name,
                    path=str(module.path), line=node.lineno,
                )

    by_id = model.by_type_id()
    kind_to_message = {
        name.upper(): name for name in model.messages
    }

    # Phase 2: use sites, declared machines, wire tables.
    for module in project.modules:
        consts = dict(global_consts)
        consts.update(_int_constants(module.tree))
        _collect_sites(model, module, consts, by_id, kind_to_message)
        _collect_declarations(model, module)
        _collect_state_strings(model, module)
    return model


def _global_constants(project: Project) -> Dict[str, int]:
    """Project-wide ``NAME = <int>`` table for resolving constants
    imported across modules (``from repro.ntcs.protocol import
    T_IVC_OPEN``).  Conflicting names are dropped — a module-local
    constant always takes precedence anyway."""
    table: Dict[str, int] = {}
    conflicted: Set[str] = set()
    for module in project.modules:
        if not _in_repro_tree(module.name):
            continue
        for name, value in _int_constants(module.tree).items():
            if name in table and table[name] != value:
                conflicted.add(name)
            else:
                table[name] = value
    for name in conflicted:
        table.pop(name, None)
    return table


# ---------------------------------------------------------------------------
# Use-site collection
# ---------------------------------------------------------------------------

def _collect_sites(
    model: ProtocolModel,
    module: ModuleInfo,
    consts: Dict[str, int],
    by_id: Dict[int, MessageSpec],
    kind_to_message: Dict[str, str],
) -> None:
    def site(line: int, kind: str) -> Site:
        return Site(module=module.name, path=str(module.path),
                    line=line, kind=kind)

    def add_send(name: str, line: int, kind: str) -> None:
        spec = model.messages.get(name)
        if spec is not None:
            spec.sends.append(site(line, kind))

    def add_handler(name: str, line: int) -> None:
        spec = model.messages.get(name)
        if spec is not None:
            spec.handlers.append(site(line, "handler"))

    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            callee = _callee_name(node)
            if callee in _SEND_METHODS:
                index, kind = _SEND_METHODS[callee]
                name = _str_const(_call_arg(node, index, "type_name"))
                if name is not None:
                    add_send(name, node.lineno, kind)
            elif callee == "unpack_internal":
                type_id = _resolve_id(_call_arg(node, 0, "type_id"), consts)
                spec = by_id.get(type_id) if type_id is not None else None
                if spec is not None:
                    spec.handlers.append(site(node.lineno, "handler"))
            elif callee == "_expect":
                name = _str_const(_call_arg(node, 1, "type_name"))
                spec = model.messages.get(name) if name else None
                if spec is not None:
                    spec.expects.append(site(node.lineno, "expect"))
            elif callee == "get" and isinstance(node.func, ast.Attribute) \
                    and isinstance(node.func.value, ast.Dict) \
                    and node.args and _is_attr(node.args[0], "type_name"):
                # Inline dispatch: {"name": fn, ...}.get(request.type_name)
                for key in node.func.value.keys:
                    name = _str_const(key)
                    if name is not None:
                        add_handler(name, key.lineno)

        elif isinstance(node, ast.Compare):
            _compare_sites(node, add_handler, kind_to_message)

        elif isinstance(node, ast.Assign):
            _assign_sites(node, add_handler)

        elif isinstance(node, ast.FunctionDef):
            _function_sites(node, add_send, add_handler)


def _compare_sites(node: ast.Compare, add_handler, kind_to_message) -> None:
    """``x.type_name == "name"`` / ``x.kind == m.IVC_CLOSE`` (and their
    ``in``-tuple forms) mark the comparing module as a handler."""
    sides = [node.left] + list(node.comparators)
    if any(_is_attr(side, "type_name") for side in sides):
        for side in sides:
            for leaf in _iter_leaves(side):
                name = _str_const(leaf)
                if name is not None:
                    add_handler(name, node.lineno)
    elif any(_is_attr(side, "kind") for side in sides):
        for side in sides:
            for leaf in _iter_leaves(side):
                kind_name = _terminal_name(leaf) if isinstance(
                    leaf, (ast.Name, ast.Attribute)) else None
                if kind_name and kind_name in kind_to_message:
                    add_handler(kind_to_message[kind_name], node.lineno)


def _iter_leaves(node: ast.expr):
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for elt in node.elts:
            yield elt
    else:
        yield node


def _assign_sites(node: ast.Assign, add_handler) -> None:
    """Dispatch-dict literals and subscript installs."""
    for target in node.targets:
        tname = _terminal_name(target) if isinstance(
            target, (ast.Name, ast.Attribute)) else None
        if tname and "handlers" in tname and isinstance(node.value, ast.Dict):
            for key in node.value.keys:
                name = _str_const(key)
                if name is not None:
                    add_handler(name, key.lineno)
        if isinstance(target, ast.Subscript):
            base = _terminal_name(target.value) if isinstance(
                target.value, (ast.Name, ast.Attribute)) else None
            sl = target.slice
            if isinstance(sl, ast.Index):  # pragma: no cover (py<3.9)
                sl = sl.value
            name = _str_const(sl)
            if base and "handlers" in base and name is not None:
                add_handler(name, node.lineno)


def _function_sites(node: ast.FunctionDef, add_send, add_handler) -> None:
    """``@handles("name")`` annotations and ``return ("ack", {...})``
    reply tuples in ``_handle_*`` methods (the Name-Server idiom)."""
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) \
                and _callee_name(decorator) == "handles":
            for arg in decorator.args:
                name = _str_const(arg)
                if name is not None:
                    add_handler(name, decorator.lineno)
    if node.name.startswith("_handle"):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Return) and isinstance(sub.value, ast.Tuple) \
                    and sub.value.elts:
                name = _str_const(sub.value.elts[0])
                if name is not None:
                    add_send(name, sub.lineno, SEND_REPLY)


# ---------------------------------------------------------------------------
# Declarations: machines, wire tables, state strings
# ---------------------------------------------------------------------------

def _collect_declarations(model: ProtocolModel, module: ModuleInfo) -> None:
    kind_names: Optional[Dict[int, str]] = None
    wire_decl: Optional[Tuple[dict, int]] = None
    consts = _int_constants(module.tree)
    for node in module.tree.body:
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)):
            continue
        target = node.targets[0].id
        if target == "KIND_NAMES":
            # Keys are the kind constants by name (``DATA: "DATA"``) —
            # resolve them through the module's constant table instead
            # of demanding a pure literal.
            if isinstance(node.value, ast.Dict):
                kind_names = {}
                for key, value in zip(node.value.keys, node.value.values):
                    kind = _resolve_id(key, consts)
                    name = _str_const(value)
                    if kind is not None and name is not None:
                        kind_names[kind] = name
                model.kind_table_modules.append(
                    (module.name, str(module.path), node.lineno))
            continue
        if target not in ("PROTOCOL_MACHINE", "PROTOCOL_MACHINES",
                          "WIRE_PROTOCOL"):
            continue
        try:
            value = ast.literal_eval(node.value)
        except (ValueError, SyntaxError):
            model.errors.append((
                module.name, str(module.path), node.lineno,
                f"{target} is not a pure literal; the extractor cannot "
                f"model-check it",
            ))
            continue
        if target == "PROTOCOL_MACHINE":
            _add_machine(model, module, node.lineno, value)
        elif target == "PROTOCOL_MACHINES":
            for decl in value:
                _add_machine(model, module, node.lineno, decl)
        elif target == "WIRE_PROTOCOL":
            wire_decl = (value, node.lineno)
    if wire_decl is not None:
        decl, lineno = wire_decl
        model.wires.append(WireProtocol(
            module=module.name, path=str(module.path), line=lineno,
            kind_names=kind_names or {},
            requires={str(k): tuple(v.get("requires", ()))
                      for k, v in decl.items()},
            establishes={str(k): tuple(v.get("establishes", ()))
                         for k, v in decl.items()},
        ))


def _add_machine(model: ProtocolModel, module: ModuleInfo,
                 lineno: int, decl: object) -> None:
    if not isinstance(decl, dict) or "states" not in decl:
        model.errors.append((
            module.name, str(module.path), lineno,
            "protocol machine declaration must be a dict with a "
            "'states' table",
        ))
        return
    machine = Machine(
        name=str(decl.get("name", "machine")),
        module=module.name, path=str(module.path), line=lineno,
        initial=str(decl.get("initial", "")),
        terminal=tuple(decl.get("terminal", ())),
        states=dict(decl["states"]),
        anchor=bool(decl.get("anchor", False)),
    )
    for state, spec in machine.states.items():
        spec = spec or {}
        if spec.get("waits"):
            machine.waits.add(state)
        edges: List[Edge] = []
        for raw in spec.get("edges", ()):
            edges.append(Edge(
                event=str(raw.get("event", "")),
                next=str(raw.get("next", "")),
                bounded=raw.get("bounded"),
                progress=bool(raw.get("progress", False)),
                queue=raw.get("queue"),
            ))
        machine.edges[state] = edges
    model.machines.append(machine)


def _collect_state_strings(model: ProtocolModel, module: ModuleInfo) -> None:
    observed: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Assign):
            if any(_is_attr(t, "state") for t in node.targets):
                for sub in ast.walk(node.value):
                    name = _str_const(sub)
                    if name is not None:
                        observed.add(name)
        elif isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            if any(_is_attr(side, "state") for side in sides):
                for side in sides:
                    for leaf in _iter_leaves(side):
                        name = _str_const(leaf)
                        if name is not None:
                            observed.add(name)
    if observed:
        model.state_strings[module.name] = observed
