"""Replay netsim JSONL wire traces against the extracted wire model.

A trace is the output of :class:`repro.netsim.tracelog.NetTraceLog` —
one JSON object per transmitted datagram, carrying every raw byte blob
of the payload as hex.  The netsim records bytes without knowing what
they are; *this* module (analysis is harness-layer, so it may import
NTCS) picks out the blobs that carry NTCS magic, reads their header
words through :class:`repro.ntcs.message.HeaderView`, and checks each
frame's kind against the ``WIRE_PROTOCOL`` declaration the extractor
pulled from :mod:`repro.ntcs.message`:

* per network and unordered host pair, handshake flags are monotonic:
  a kind *establishes* its flags when transmitted (transmit-side
  conformance — a dropped frame still proves the sender believed the
  handshake allowed it, which keeps replay robust under chaos drops
  and crash-restart re-handshakes);
* TRC001 (error) a frame whose kind *requires* a flag not yet
  established on that hop — a transition outside the model;
* TRC002 (error) a frame whose kind is not in the model at all, or a
  trace line that cannot be parsed.

Exit-code semantics are the CLI's: any finding fails the run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.analysis.engine import Finding, SEVERITY_ERROR
from repro.analysis.model.ir import ProtocolModel, WireProtocol
from repro.ntcs.message import HEADER_BYTES, HeaderView
from repro.errors import ProtocolError

_HopKey = Tuple[str, FrozenSet[str]]


def _finding(rule: str, path: str, line: int, message: str) -> Finding:
    return Finding(rule=rule, severity=SEVERITY_ERROR,
                   path=path, line=line, message=message)


def _looks_like_frame(blob: bytes) -> bool:
    """True when a payload blob starts with the NTCS magic word — the
    filter that separates NTCS frames from transport noise (TCP stream
    continuation segments, mailbox records, app payloads)."""
    if len(blob) < HEADER_BYTES:
        return False
    try:
        HeaderView(blob)
    except ProtocolError:
        return False
    return True


def check_trace(path: str, model: ProtocolModel) -> List[Finding]:
    """Replay one JSONL trace file against the model's wire protocol."""
    wire = model.primary_wire()
    if wire is None:
        return [_finding(
            "TRC002", path, 1,
            "no WIRE_PROTOCOL declaration was extracted from the tree — "
            "traces cannot be conformance-checked")]
    findings: List[Finding] = []
    flags_by_hop: Dict[_HopKey, Set[str]] = {}
    for lineno, raw in enumerate(
            Path(path).read_text().splitlines(), start=1):
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except ValueError:
            findings.append(_finding(
                "TRC002", path, lineno, "unparseable trace line"))
            continue
        if event.get("op") != "frame":
            continue
        args = event.get("args", {})
        hop: _HopKey = (
            str(event.get("target", "")),
            frozenset((str(args.get("src", "")), str(args.get("dst", "")))),
        )
        flags = flags_by_hop.setdefault(hop, set())
        for blob_hex in args.get("frames", ()):
            try:
                blob = bytes.fromhex(blob_hex)
            except ValueError:
                findings.append(_finding(
                    "TRC002", path, lineno, "frame hex is malformed"))
                continue
            if not _looks_like_frame(blob):
                continue
            findings.extend(
                _check_frame(wire, blob, flags, path, lineno, args))
    return findings


def _check_frame(wire: WireProtocol, blob: bytes, flags: Set[str],
                 path: str, lineno: int, args: dict) -> Iterable[Finding]:
    header = HeaderView(blob)
    name = wire.kind_names.get(header.kind)
    if name is None:
        yield _finding(
            "TRC002", path, lineno,
            f"frame kind {header.kind} ({args.get('src')} -> "
            f"{args.get('dst')}) is not in the wire model")
        return
    missing = sorted(set(wire.requires.get(name, ())) - flags)
    if missing:
        yield _finding(
            "TRC001", path, lineno,
            f"{name} frame ({args.get('src')} -> {args.get('dst')}) "
            f"sent before flag(s) {missing} were established on this "
            f"hop — a transition outside the extracted model")
    # Establish regardless of validity or drops: keep later findings
    # about *new* violations, not echoes of this one.
    flags.update(wire.establishes.get(name, ()))


def check_traces(paths: Sequence[str],
                 model: ProtocolModel) -> List[Finding]:
    """Replay several trace files; findings are concatenated in order."""
    findings: List[Finding] = []
    for path in paths:
        findings.extend(check_trace(path, model))
    return findings
