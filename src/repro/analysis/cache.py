"""Result caching for ntcslint: skip the run when nothing changed.

The cache key is a manifest of per-file content hashes (every ``.py``
file the scan would parse), plus the scan configuration (paths, rule
filter, excludes) and the registered rule-id set — so editing any
file, adding one, deleting one, changing the flags, or upgrading the
rule set all invalidate it.  Invalidation is whole-tree on purpose:
the interesting rules (layering, duplicate type ids, the model stage)
are cross-file, so per-file reuse of stale results would be unsound.
A hit replays the stored findings and waivers without parsing a
single AST, which is what keeps ``make lint`` on an unchanged tree
well under a second.

The cache lives wherever the caller points it (the Makefile uses
``.ntcslint-cache.json`` at the repo root, gitignored); a missing,
corrupt, or version-skewed file is simply a miss.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.engine import Finding, Waiver, all_rules, iter_python_files

CACHE_FORMAT = 1


def _manifest(paths: Sequence[Path],
              exclude: Sequence[str]) -> Dict[str, str]:
    """Relative-path → content-hash for every file the scan would see."""
    manifest: Dict[str, str] = {}
    for file_path in iter_python_files(paths, exclude=exclude):
        digest = hashlib.sha256(file_path.read_bytes()).hexdigest()
        manifest[file_path.as_posix()] = digest
    return manifest


def cache_key(paths: Sequence[Path], rule_filter: Optional[Sequence[str]],
              exclude: Sequence[str]) -> str:
    """One hash covering file contents and scan configuration."""
    payload = {
        "format": CACHE_FORMAT,
        "manifest": _manifest(paths, exclude),
        "rule_filter": sorted(rule_filter or ()),
        "exclude": sorted(exclude),
        "rule_ids": sorted(
            rid for rule_obj in all_rules() for rid in rule_obj.ids),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def _finding_from_dict(data: dict) -> Finding:
    return Finding(rule=data["rule"], severity=data["severity"],
                   path=data["path"], line=data["line"],
                   message=data["message"])


def load(cache_path: Path,
         key: str) -> Optional[Tuple[List[Finding], List[Waiver]]]:
    """The stored (findings, waivers) when the key matches, else None."""
    try:
        data = json.loads(Path(cache_path).read_text())
    except (OSError, ValueError):
        return None
    if data.get("format") != CACHE_FORMAT or data.get("key") != key:
        return None
    try:
        findings = [_finding_from_dict(f) for f in data["findings"]]
        waivers = [
            Waiver(finding=_finding_from_dict(w["finding"]),
                   pragma_line=w["pragma_line"],
                   justification=w["justification"])
            for w in data["waivers"]
        ]
    except (KeyError, TypeError):
        return None
    return findings, waivers


def store(cache_path: Path, key: str, findings: Sequence[Finding],
          waivers: Sequence[Waiver]) -> None:
    """Persist a run's results under the given key (best-effort: an
    unwritable cache never fails the lint)."""
    data = {
        "format": CACHE_FORMAT,
        "key": key,
        "findings": [f.as_dict() for f in findings],
        "waivers": [
            {"finding": w.finding.as_dict(),
             "pragma_line": w.pragma_line,
             "justification": w.justification}
            for w in waivers
        ],
    }
    try:
        Path(cache_path).write_text(json.dumps(data, sort_keys=True))
    except OSError:
        pass
