"""The ntcslint rule engine.

A :class:`Project` is a parsed snapshot of a set of Python files —
every module's AST plus its dotted name, resolved from its path (the
last ``repro`` directory component anchors the package root, so both
``src/repro/...`` and fixture trees like ``tests/fixtures/.../repro/...``
resolve to ``repro.*`` names without being imported).

Rules are small objects registered with :func:`rule`; each inspects the
whole project and yields :class:`Finding` records (file, line, rule id,
severity, message).  The engine applies inline waivers afterwards: a
finding is suppressed when the source line it points at carries a
``# ntcslint: allow=RULE_ID`` (or ``allow=all``) pragma, so intentional
exceptions stay visible — and justified — in the code itself.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_PRAGMA_RE = re.compile(r"#\s*ntcslint:\s*allow=([A-Za-z0-9_,\s]+|all)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str          # e.g. "LAY001"
    severity: str      # SEVERITY_ERROR or SEVERITY_WARNING
    path: str          # file the finding is in
    line: int          # 1-based line number
    message: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict form (the --format json record)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form: path:line: RULE [sev] message."""
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}] {self.message}"


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str                  # dotted name, e.g. "repro.ntcs.lcm"
    path: Path
    tree: ast.Module
    source_lines: List[str]

    def line(self, lineno: int) -> str:
        """The 1-based source line, or '' when out of range."""
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a dotted module name."""

    target: str        # dotted module imported ("repro.ntcs.lcm", "time", ...)
    line: int
    symbol: Optional[str] = None   # for `from X import y`: the name y


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at its last ``repro``
    path component; stand-alone files fall back to their stem."""
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    if path.name == "__init__.py":
        stem_parts = parts[:-1]
    if "repro" in stem_parts:
        anchor = len(stem_parts) - 1 - stem_parts[::-1].index("repro")
        return ".".join(stem_parts[anchor:])
    return path.stem


class Project:
    """A parsed set of modules plus import-resolution helpers."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: List[ModuleInfo] = sorted(modules, key=lambda m: str(m.path))
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in self.modules}

    @classmethod
    def load(cls, paths: Iterable[Path]) -> "Project":
        """Parse every ``.py`` file in the given files/directories."""
        files: List[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                files.append(path)
        modules = []
        for fpath in files:
            source = fpath.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(fpath))
            except SyntaxError as exc:
                raise ValueError(f"{fpath}: cannot parse: {exc}") from exc
            modules.append(ModuleInfo(
                name=module_name_for(fpath),
                path=fpath,
                tree=tree,
                source_lines=source.splitlines(),
            ))
        return cls(modules)

    # -- import extraction --------------------------------------------------

    def imports_of(self, module: ModuleInfo) -> Iterator[ImportEdge]:
        """Every import in the module, module- and function-scope alike,
        resolved against the project's module set: ``from pkg import sub``
        resolves to ``pkg.sub`` when that is a known module (it is a
        submodule import, not a symbol import)."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield ImportEdge(target=alias.name, line=node.lineno)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    candidate = f"{base}.{alias.name}"
                    if candidate in self.by_name:
                        yield ImportEdge(target=candidate, line=node.lineno)
                    else:
                        yield ImportEdge(target=base, line=node.lineno,
                                         symbol=alias.name)

    def _resolve_from(self, module: ModuleInfo,
                      node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: start at the module's package, climb one
        # package per level beyond the first.
        parts = module.name.split(".")
        if module.path.name != "__init__.py":
            parts = parts[:-1]
        parts = parts[:len(parts) - (node.level - 1)] if node.level > 1 else parts
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    # -- waivers -------------------------------------------------------------

    def is_waived(self, finding: Finding) -> bool:
        """True when the finding's source line carries a matching
        ``# ntcslint: allow=RULE_ID`` (or ``allow=all``) pragma."""
        module = next((m for m in self.modules if str(m.path) == finding.path), None)
        if module is None:
            return False
        match = _PRAGMA_RE.search(module.line(finding.line))
        if not match:
            return False
        allowed = {tok.strip() for tok in match.group(1).split(",")}
        return "all" in allowed or finding.rule in allowed


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

@dataclass
class Rule:
    """One registered rule family."""

    name: str                       # e.g. "layering"
    ids: Sequence[str]              # rule ids it can emit
    description: str
    check: Callable[[Project], Iterable[Finding]] = field(repr=False, default=None)


_RULES: List[Rule] = []


def rule(name: str, ids: Sequence[str], description: str):
    """Decorator registering a ``check(project) -> Iterable[Finding]``."""
    def wrap(fn: Callable[[Project], Iterable[Finding]]):
        _RULES.append(Rule(name=name, ids=tuple(ids),
                           description=description, check=fn))
        return fn
    return wrap


def all_rules() -> List[Rule]:
    """Every registered rule family (importing the rules package
    registers the built-ins)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return list(_RULES)


def run_rules(project: Project,
              rule_filter: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run (a filtered subset of) the rule set; returns surviving
    findings sorted by location.  ``rule_filter`` entries match rule ids
    by prefix ("LAY" selects LAY001, LAY002, ...) or family name."""
    findings: List[Finding] = []
    for rule_obj in all_rules():
        if rule_filter and not _selected(rule_obj, rule_filter):
            continue
        findings.extend(rule_obj.check(project))
    if rule_filter:
        findings = [f for f in findings
                    if any(f.rule.startswith(tok.upper()) for tok in rule_filter)
                    or _family_selected(f, rule_filter)]
    findings = [f for f in findings if not project.is_waived(f)]
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _selected(rule_obj: Rule, tokens: Sequence[str]) -> bool:
    for tok in tokens:
        if rule_obj.name == tok.lower():
            return True
        if any(rid.startswith(tok.upper()) for rid in rule_obj.ids):
            return True
    return False


def _family_selected(finding: Finding, tokens: Sequence[str]) -> bool:
    for tok in tokens:
        for rule_obj in _RULES:
            if rule_obj.name == tok.lower() and finding.rule in rule_obj.ids:
                return True
    return False


def analyze(paths: Iterable[Path],
            rule_filter: Optional[Sequence[str]] = None) -> List[Finding]:
    """Parse the given paths and run the rule set over them."""
    return run_rules(Project.load(paths), rule_filter=rule_filter)
