"""The ntcslint rule engine.

A :class:`Project` is a parsed snapshot of a set of Python files —
every module's AST plus its dotted name, resolved from its path (the
last ``repro`` directory component anchors the package root, so both
``src/repro/...`` and fixture trees like ``tests/fixtures/.../repro/...``
resolve to ``repro.*`` names without being imported).

Rules are small objects registered with :func:`rule`; each inspects the
whole project and yields :class:`Finding` records (file, line, rule id,
severity, message).  The engine applies inline waivers afterwards: a
finding is suppressed when the source line it points at — or any line
of the smallest enclosing statement, so pragmas work on multi-line
calls — carries a ``# ntcslint: allow=RULE_ID`` (or ``allow=all``)
pragma, so intentional exceptions stay visible — and justified — in
the code itself.  Waivers are collected, not discarded: the CLI's
``--list-waivers`` prints each one with its justification text, and
``--max-waivers`` ratchets the total against a committed baseline.
A pragma naming a rule id the engine does not know is itself reported
(WVR001) instead of silently suppressing nothing.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple,
)

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

_PRAGMA_RE = re.compile(r"#\s*ntcslint:\s*allow=([A-Za-z0-9_,\s]+|all)")

# Stripped off the front of a pragma's trailing justification text.
_JUSTIFICATION_LEAD = " \t-—–:;"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str          # e.g. "LAY001"
    severity: str      # SEVERITY_ERROR or SEVERITY_WARNING
    path: str          # file the finding is in
    line: int          # 1-based line number
    message: str

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready dict form (the --format json record)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        """One-line human-readable form: path:line: RULE [sev] message."""
        return f"{self.path}:{self.line}: {self.rule} [{self.severity}] {self.message}"


@dataclass(frozen=True)
class Waiver:
    """One finding suppressed by an inline ``ntcslint: allow`` pragma."""

    finding: Finding       # the finding the pragma suppressed
    pragma_line: int       # line carrying the pragma (may differ from
                           # finding.line on multi-line statements)
    justification: str     # comment text following the allow list

    def render(self) -> str:
        """One-line form: path:line: RULE waived — justification."""
        why = self.justification or "(no justification)"
        return (f"{self.finding.path}:{self.finding.line}: "
                f"{self.finding.rule} waived — {why}")


@dataclass(frozen=True)
class _Pragma:
    """One parsed ``ntcslint: allow`` pragma occurrence."""

    line: int
    allowed: frozenset       # rule ids, possibly containing "all"
    justification: str


@dataclass
class ModuleInfo:
    """One parsed source module."""

    name: str                  # dotted name, e.g. "repro.ntcs.lcm"
    path: Path
    tree: ast.Module
    source_lines: List[str]

    def line(self, lineno: int) -> str:
        """The 1-based source line, or '' when out of range."""
        if 1 <= lineno <= len(self.source_lines):
            return self.source_lines[lineno - 1]
        return ""


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a dotted module name."""

    target: str        # dotted module imported ("repro.ntcs.lcm", "time", ...)
    line: int
    symbol: Optional[str] = None   # for `from X import y`: the name y


def iter_python_files(paths: Iterable[Path],
                      exclude: Sequence[str] = ()) -> List[Path]:
    """Every ``.py`` file a scan of ``paths`` would parse, in stable
    order, minus files whose posix path contains an ``exclude`` token.
    Shared between :meth:`Project.load` and the result cache's content
    manifest so the two can never disagree about the file set."""
    files: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    if exclude:
        files = [f for f in files
                 if not any(tok in f.as_posix() for tok in exclude)]
    return files


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, anchored at its last ``repro``
    path component; stand-alone files fall back to their stem."""
    parts = list(path.parts)
    stem_parts = parts[:-1] + [path.stem]
    if path.name == "__init__.py":
        stem_parts = parts[:-1]
    if "repro" in stem_parts:
        anchor = len(stem_parts) - 1 - stem_parts[::-1].index("repro")
        return ".".join(stem_parts[anchor:])
    return path.stem


class Project:
    """A parsed set of modules plus import-resolution helpers."""

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules: List[ModuleInfo] = sorted(modules, key=lambda m: str(m.path))
        self.by_name: Dict[str, ModuleInfo] = {m.name: m for m in self.modules}
        self._pragma_cache: Dict[str, List[_Pragma]] = {}
        self._span_cache: Dict[str, List[Tuple[int, int]]] = {}

    @classmethod
    def load(cls, paths: Iterable[Path],
             exclude: Sequence[str] = ()) -> "Project":
        """Parse every ``.py`` file in the given files/directories.
        ``exclude`` entries are path substrings (posix form); matching
        files are skipped — how CI scans ``tests/`` while leaving the
        deliberately-violating fixture trees alone."""
        files = iter_python_files(paths, exclude=exclude)
        modules = []
        for fpath in files:
            source = fpath.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=str(fpath))
            except SyntaxError as exc:
                raise ValueError(f"{fpath}: cannot parse: {exc}") from exc
            modules.append(ModuleInfo(
                name=module_name_for(fpath),
                path=fpath,
                tree=tree,
                source_lines=source.splitlines(),
            ))
        return cls(modules)

    # -- import extraction --------------------------------------------------

    def imports_of(self, module: ModuleInfo) -> Iterator[ImportEdge]:
        """Every import in the module, module- and function-scope alike,
        resolved against the project's module set: ``from pkg import sub``
        resolves to ``pkg.sub`` when that is a known module (it is a
        submodule import, not a symbol import)."""
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield ImportEdge(target=alias.name, line=node.lineno)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(module, node)
                if base is None:
                    continue
                for alias in node.names:
                    candidate = f"{base}.{alias.name}"
                    if candidate in self.by_name:
                        yield ImportEdge(target=candidate, line=node.lineno)
                    else:
                        yield ImportEdge(target=base, line=node.lineno,
                                         symbol=alias.name)

    def _resolve_from(self, module: ModuleInfo,
                      node: ast.ImportFrom) -> Optional[str]:
        if node.level == 0:
            return node.module
        # Relative import: start at the module's package, climb one
        # package per level beyond the first.
        parts = module.name.split(".")
        if module.path.name != "__init__.py":
            parts = parts[:-1]
        parts = parts[:len(parts) - (node.level - 1)] if node.level > 1 else parts
        if node.module:
            parts = parts + node.module.split(".")
        return ".".join(parts) if parts else None

    # -- waivers -------------------------------------------------------------

    def _pragmas(self, module: ModuleInfo) -> List[_Pragma]:
        """Every ``ntcslint: allow`` pragma in the module, parsed once."""
        cached = self._pragma_cache.get(module.name)
        if cached is not None:
            return cached
        pragmas: List[_Pragma] = []
        # Scan actual COMMENT tokens, not raw lines: a pragma quoted
        # inside a docstring (e.g. this engine's own documentation)
        # must not register as a live waiver.
        source = "\n".join(module.source_lines) + "\n"
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            tokens = []
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if not match:
                continue
            allowed = frozenset(
                tok.strip() for tok in match.group(1).split(",")
                if tok.strip()
            )
            justification = (token.string[match.end():]
                             .strip(_JUSTIFICATION_LEAD).strip())
            pragmas.append(_Pragma(line=token.start[0], allowed=allowed,
                                   justification=justification))
        self._pragma_cache[module.name] = pragmas
        return pragmas

    def _stmt_span(self, module: ModuleInfo, line: int) -> Tuple[int, int]:
        """The line range of the smallest statement containing ``line``
        (so a pragma on any physical line of a multi-line statement
        covers findings anywhere in it)."""
        spans = self._span_cache.get(module.name)
        if spans is None:
            spans = [
                (node.lineno, getattr(node, "end_lineno", node.lineno))
                for node in ast.walk(module.tree)
                if isinstance(node, ast.stmt)
            ]
            self._span_cache[module.name] = spans
        best = (line, line)
        best_size = None
        for lo, hi in spans:
            if lo <= line <= hi:
                size = hi - lo
                if best_size is None or size < best_size:
                    best, best_size = (lo, hi), size
        return best

    def waiver_for(self, finding: Finding) -> Optional[Waiver]:
        """The :class:`Waiver` suppressing this finding, or None.  A
        pragma matches when it names the finding's rule (or ``all``)
        and sits on the finding's line or any line of the smallest
        statement enclosing it."""
        module = next((m for m in self.modules if str(m.path) == finding.path), None)
        if module is None:
            return None
        pragmas = self._pragmas(module)
        if not pragmas:
            return None
        lo, hi = self._stmt_span(module, finding.line)
        for pragma in pragmas:
            if not (pragma.line == finding.line or lo <= pragma.line <= hi):
                continue
            if "all" in pragma.allowed or finding.rule in pragma.allowed:
                return Waiver(finding=finding, pragma_line=pragma.line,
                              justification=pragma.justification)
        return None

    def is_waived(self, finding: Finding) -> bool:
        """True when a matching ``ntcslint: allow`` pragma suppresses
        the finding (see :meth:`waiver_for`)."""
        return self.waiver_for(finding) is not None

    def unknown_pragma_findings(self, known_ids: Iterable[str]) -> List[Finding]:
        """WVR001 warnings for pragma tokens naming no known rule id —
        a typo'd waiver must not silently suppress nothing."""
        known = set(known_ids) | {"all"}
        findings: List[Finding] = []
        for module in self.modules:
            for pragma in self._pragmas(module):
                for token in sorted(pragma.allowed - known):
                    findings.append(Finding(
                        rule="WVR001", severity=SEVERITY_WARNING,
                        path=str(module.path), line=pragma.line,
                        message=(f"waiver pragma names unknown rule id "
                                 f"{token!r}; it suppresses nothing "
                                 f"(see --list-rules)"),
                    ))
        return findings


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

@dataclass
class Rule:
    """One registered rule family."""

    name: str                       # e.g. "layering"
    ids: Sequence[str]              # rule ids it can emit
    description: str
    check: Callable[[Project], Iterable[Finding]] = field(repr=False, default=None)


_RULES: List[Rule] = []


def rule(name: str, ids: Sequence[str], description: str):
    """Decorator registering a ``check(project) -> Iterable[Finding]``."""
    def wrap(fn: Callable[[Project], Iterable[Finding]]):
        _RULES.append(Rule(name=name, ids=tuple(ids),
                           description=description, check=fn))
        return fn
    return wrap


def all_rules() -> List[Rule]:
    """Every registered rule family (importing the rules package
    registers the built-ins)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)
    return list(_RULES)


def run_rules_with_waivers(
    project: Project,
    rule_filter: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], List[Waiver]]:
    """Run (a filtered subset of) the rule set; returns the surviving
    findings sorted by location plus every waiver that suppressed one.
    ``rule_filter`` entries match rule ids by prefix ("LAY" selects
    LAY001, LAY002, ...) or family name.  With no filter, pragmas that
    name unknown rule ids are reported as WVR001 warnings."""
    findings: List[Finding] = []
    for rule_obj in all_rules():
        if rule_filter and not _selected(rule_obj, rule_filter):
            continue
        findings.extend(rule_obj.check(project))
    if rule_filter:
        findings = [f for f in findings
                    if any(f.rule.startswith(tok.upper()) for tok in rule_filter)
                    or _family_selected(f, rule_filter)]
    else:
        known_ids = [rid for rule_obj in all_rules() for rid in rule_obj.ids]
        findings.extend(project.unknown_pragma_findings(known_ids))
    kept: List[Finding] = []
    waivers: List[Waiver] = []
    for finding in findings:
        waiver = project.waiver_for(finding)
        if waiver is None:
            kept.append(finding)
        else:
            waivers.append(waiver)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))
    waivers.sort(key=lambda w: (w.finding.path, w.finding.line, w.finding.rule))
    return kept, waivers


def run_rules(project: Project,
              rule_filter: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the rule set; returns surviving findings sorted by location
    (:func:`run_rules_with_waivers` without the waiver list)."""
    findings, _ = run_rules_with_waivers(project, rule_filter=rule_filter)
    return findings


def _selected(rule_obj: Rule, tokens: Sequence[str]) -> bool:
    for tok in tokens:
        if rule_obj.name == tok.lower():
            return True
        if any(rid.startswith(tok.upper()) for rid in rule_obj.ids):
            return True
    return False


def _family_selected(finding: Finding, tokens: Sequence[str]) -> bool:
    for tok in tokens:
        for rule_obj in _RULES:
            if rule_obj.name == tok.lower() and finding.rule in rule_obj.ids:
                return True
    return False


def analyze(paths: Iterable[Path],
            rule_filter: Optional[Sequence[str]] = None,
            exclude: Sequence[str] = ()) -> List[Finding]:
    """Parse the given paths and run the rule set over them."""
    return run_rules(Project.load(paths, exclude=exclude),
                     rule_filter=rule_filter)
