"""SARIF 2.1.0 rendering of ntcslint findings.

``--format sarif`` emits one run in the Static Analysis Results
Interchange Format, which GitHub's code-scanning upload turns into
inline PR annotations.  Only the fields the upload actually consumes
are populated: the tool's rule index (id + short description per rule
family) and one result per finding with its physical location.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.engine import Finding, all_rules

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")

_LEVELS = {"error": "error", "warning": "warning"}


def _rules_index() -> List[dict]:
    rules: List[dict] = []
    for rule_obj in all_rules():
        for rule_id in rule_obj.ids:
            rules.append({
                "id": rule_id,
                "shortDescription": {"text": rule_obj.description},
                "properties": {"family": rule_obj.name},
            })
    # The engine's own pragma check is not a registered family.
    rules.append({
        "id": "WVR001",
        "shortDescription": {
            "text": "ntcslint pragma names an unknown rule id"},
        "properties": {"family": "engine"},
    })
    return rules


def to_sarif(findings: Sequence[Finding]) -> Dict[str, object]:
    """The findings as one SARIF log dict (json.dump-ready)."""
    rules = _rules_index()
    known = {r["id"] for r in rules}
    results = []
    for finding in findings:
        result = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "warning"),
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {"startLine": max(1, finding.line)},
                },
            }],
        }
        if finding.rule not in known:
            # Keep the log valid even for ids minted after this render.
            result.pop("ruleId")
            result["message"] = {
                "text": f"{finding.rule}: {finding.message}"}
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "ntcslint",
                    "informationUri":
                        "https://example.invalid/ntcs-repro/ANALYSIS.md",
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def render_sarif(findings: Sequence[Finding]) -> str:
    """The findings as a SARIF JSON string."""
    return json.dumps(to_sarif(findings), indent=2, sort_keys=True)
