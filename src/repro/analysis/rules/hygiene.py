"""Exception-hygiene rules.

The Nucleus is passive and reentrant (Sec. 6): conditions must travel
as typed :mod:`repro.errors` exceptions to the layer that can handle
them.  A bare ``except:`` or a silently discarded NTCS error breaks
that chain invisibly; a mutable default argument is shared state
smuggled across calls — the classic source of irreproducible behavior
in long-lived server processes.

EXC001 (error)   bare ``except:`` (catches even KeyboardInterrupt and
                 the simulator's control-flow exceptions).
EXC002 (error)   a :mod:`repro.errors` exception caught and silently
                 dropped (handler body is only ``pass``/``...``).
                 Intentional best-effort drops must either record the
                 drop (counter/trace) or carry an explicit
                 ``# ntcslint: allow=EXC002`` pragma with a reason.
EXC003 (error)   mutable default argument (list/dict/set literal,
                 comprehension, or ``list()``/``dict()``/``set()`` call).
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set

from repro.analysis.engine import (
    SEVERITY_ERROR,
    Finding,
    ModuleInfo,
    Project,
    rule,
)

_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque",
                  "defaultdict", "Counter", "OrderedDict"}


def _ntcs_error_names() -> Set[str]:
    """Every exception class exported by repro.errors, by class name."""
    import repro.errors as errors_mod
    return {
        name for name, obj in vars(errors_mod).items()
        if isinstance(obj, type) and issubclass(obj, BaseException)
    }


@rule(
    name="hygiene",
    ids=("EXC001", "EXC002", "EXC003"),
    description="no bare excepts, swallowed NTCS errors, or mutable defaults",
)
def check_hygiene(project: Project) -> Iterable[Finding]:
    """Emit EXC001–EXC003 findings for exception/default-arg hygiene."""
    error_names = _ntcs_error_names()
    findings: List[Finding] = []
    for module in project.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ExceptHandler):
                findings.extend(_check_handler(module, node, error_names))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.Lambda)):
                findings.extend(_check_defaults(module, node))
    return findings


def _check_handler(module: ModuleInfo, node: ast.ExceptHandler,
                   error_names: Set[str]) -> Iterable[Finding]:
    if node.type is None:
        yield Finding(
            rule="EXC001", severity=SEVERITY_ERROR,
            path=str(module.path), line=node.lineno,
            message="bare except: catches everything, including "
                    "KeyboardInterrupt; name the exception",
        )
        return
    caught = _caught_ntcs_errors(node.type, error_names)
    if caught and _body_is_silent(node.body):
        yield Finding(
            rule="EXC002", severity=SEVERITY_ERROR,
            path=str(module.path), line=node.lineno,
            message=(f"{'/'.join(sorted(caught))} caught and silently "
                     f"dropped; record the drop or add an explicit "
                     f"'# ntcslint: allow=EXC002' pragma with a reason"),
        )


def _caught_ntcs_errors(type_node: ast.expr,
                        error_names: Set[str]) -> Set[str]:
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    caught: Set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in error_names:
            caught.add(node.id)
        elif isinstance(node, ast.Attribute) and node.attr in error_names:
            caught.add(node.attr)
    return caught


def _body_is_silent(body: List[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant) \
                and stmt.value.value is Ellipsis:
            continue
        return False
    return True


def _check_defaults(module: ModuleInfo, node) -> Iterable[Finding]:
    args = node.args
    for default in list(args.defaults) + [d for d in args.kw_defaults if d]:
        if _is_mutable(default):
            fname = getattr(node, "name", "<lambda>")
            yield Finding(
                rule="EXC003", severity=SEVERITY_ERROR,
                path=str(module.path), line=default.lineno,
                message=(f"{fname}: mutable default argument is shared "
                         f"across calls; default to None and build inside"),
            )


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        return name in _MUTABLE_CALLS
    return False
