"""Performance rules: the data-plane hot paths stay batched.

The frame-train delivery path (PROTOCOL.md §13) exists because one
scheduled event per frame was the dominant dispatch cost at scale.  A
future edit that reintroduces a per-frame ``Scheduler.post`` loop in
the ND-Layer or gateway hot paths silently undoes the optimisation
while every golden stays green — the wire is unchanged, only the event
count regresses — so the shape itself is machine-checked.

PERF001 (error) per-frame delivery dispatch: a ``scheduler.post(...)``
                or ``scheduler.schedule(...)`` call inside a ``for``/
                ``while`` loop in one of the hot-path modules
                (:data:`_HOT_PATH_MODULES`).  Batch the frames and make
                one delivery post for the train — the sanctioned entry
                points are ``NdLayer.send_frames`` and the gateway's
                ``_forward_batch``/``_flush_backlog`` rotation, each of
                which posts at most once per batch.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.analysis.engine import (
    SEVERITY_ERROR,
    Finding,
    ModuleInfo,
    Project,
    rule,
)

# The data-plane modules whose delivery loops must stay batched.
_HOT_PATH_MODULES: Tuple[str, ...] = (
    "repro.ntcs.ndlayer",
    "repro.ntcs.gateway",
)

_DISPATCH_METHODS = ("post", "schedule")


def _is_scheduler_receiver(node: ast.expr) -> bool:
    """True when the call receiver is a scheduler: a bare ``scheduler``
    name or any attribute chain ending in ``.scheduler`` (e.g.
    ``self.scheduler``, ``nucleus.scheduler``)."""
    if isinstance(node, ast.Name):
        return node.id == "scheduler"
    if isinstance(node, ast.Attribute):
        return node.attr == "scheduler"
    return False


@rule(
    name="perf",
    ids=("PERF001",),
    description="data-plane hot paths batch frame delivery (no "
                "per-frame Scheduler.post loops)",
)
def check_perf(project: Project) -> Iterable[Finding]:
    """Emit PERF001 findings for per-frame dispatch loops."""
    findings: List[Finding] = []
    for module in project.modules:
        if module.name not in _HOT_PATH_MODULES:
            continue
        seen: Set[Tuple[int, int]] = set()
        for loop in ast.walk(module.tree):
            if not isinstance(loop, (ast.For, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (isinstance(func, ast.Attribute)
                        and func.attr in _DISPATCH_METHODS
                        and _is_scheduler_receiver(func.value)):
                    continue
                key = (node.lineno, node.col_offset)
                if key in seen:
                    continue  # nested loops surface the call once
                seen.add(key)
                findings.append(Finding(
                    rule="PERF001", severity=SEVERITY_ERROR,
                    path=str(module.path), line=node.lineno,
                    message=(
                        f"per-frame scheduler.{func.attr}() inside a "
                        f"hot-path loop; coalesce the frames and make "
                        f"one delivery post through the train API "
                        f"(PROTOCOL.md §13)"),
                ))
    return findings
