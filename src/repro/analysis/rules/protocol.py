"""Protocol rules: statically audit every ``StructDef(...)`` call.

The paper reserves packed-mode control type ids by subsystem
(Sec. 5.2): 1–9 for Nucleus control bodies, 10–39 for the naming
service, 40–63 for the DRTS services, and applications start at
``ConversionRegistry.FIRST_APPLICATION_TYPE_ID``.  A running registry
enforces uniqueness at registration time; these rules enforce the same
contract *at rest*, across every module in the tree at once, so two
modules that are never loaded together still cannot collide.

PRO001 (error) type id outside the range reserved for the defining
               module's subsystem.
PRO002 (error) the same type id defined by two StructDefs anywhere in
               the analyzed tree.
PRO003 (error) invalid field type (unknown scalar, malformed/zero-size
               ``char[N]``, or a ``bytes`` field before last position).
PRO004 (error) duplicate field names within one StructDef.

Type ids written as module-level integer constants (``T_FOO = 12``)
are resolved by a single constant-propagation pass; dynamically
computed ids are outside static reach and are skipped.

Scope: the range rule (PRO001) and the *cross-module* half of the
duplicate rule (PRO002) only bind modules resolved under the ``repro``
package — the tree whose reserved ranges Sec. 5.2 is about.  Stand-
alone files (tests, benchmarks) define throwaway ids for registries
that never coexist; they still get the intra-module duplicate check
and the field-shape rules (PRO003/PRO004), which are universal.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.engine import (
    SEVERITY_ERROR,
    Finding,
    ModuleInfo,
    Project,
    rule,
)
from repro.conversion.registry import ConversionRegistry
from repro.conversion.structdef import _CHAR_RE, _SCALAR_CODES

# (module-name prefix, inclusive id range) — first match wins.
RESERVED_RANGES: Tuple[Tuple[str, Tuple[int, int]], ...] = (
    ("repro.ntcs", (1, 9)),
    ("repro.naming", (10, 39)),
    ("repro.drts", (40, 63)),
)
APPLICATION_RANGE = (ConversionRegistry.FIRST_APPLICATION_TYPE_ID, 0xFFFFFFFF)


@dataclass
class _StructUse:
    module: ModuleInfo
    line: int
    name: Optional[str]
    type_id: Optional[int]


def _reserved_range(module_name: str) -> Tuple[int, int]:
    for prefix, id_range in RESERVED_RANGES:
        if module_name == prefix or module_name.startswith(prefix + "."):
            return id_range
    return APPLICATION_RANGE


def _in_repro_tree(module_name: str) -> bool:
    return module_name == "repro" or module_name.startswith("repro.")


def _int_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int>`` assignments."""
    consts: Dict[str, int] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Constant) \
                and isinstance(node.value.value, int) \
                and not isinstance(node.value.value, bool):
            consts[node.targets[0].id] = node.value.value
    return consts


def _is_structdef_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "StructDef"
    if isinstance(func, ast.Attribute):
        return func.attr == "StructDef"
    return False


def _literal_str(node: Optional[ast.expr]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _resolve_id(node: Optional[ast.expr],
                consts: Dict[str, int]) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


def _call_arg(node: ast.Call, index: int, keyword: str) -> Optional[ast.expr]:
    if len(node.args) > index:
        return node.args[index]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


@rule(
    name="protocol",
    ids=("PRO001", "PRO002", "PRO003", "PRO004"),
    description="StructDef type ids stay in reserved ranges, unique, well-formed",
)
def check_protocol(project: Project) -> Iterable[Finding]:
    """Emit PRO001–PRO004 findings for every StructDef in the tree."""
    findings: List[Finding] = []
    uses: List[_StructUse] = []
    for module in project.modules:
        consts = _int_constants(module.tree)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_structdef_call(node)):
                continue
            sname = _literal_str(_call_arg(node, 0, "name"))
            type_id = _resolve_id(_call_arg(node, 1, "type_id"), consts)
            uses.append(_StructUse(module=module, line=node.lineno,
                                   name=sname, type_id=type_id))
            if type_id is not None and _in_repro_tree(module.name):
                lo, hi = _reserved_range(module.name)
                if not (lo <= type_id <= hi):
                    findings.append(Finding(
                        rule="PRO001", severity=SEVERITY_ERROR,
                        path=str(module.path), line=node.lineno,
                        message=(f"StructDef {sname or '?'!r} type id {type_id} "
                                 f"outside the range {lo}..{hi} reserved for "
                                 f"{module.name}"),
                    ))
            findings.extend(_check_fields(module, node, sname))
    findings.extend(_check_duplicates(uses))
    return findings


def _check_duplicates(uses: List[_StructUse]) -> Iterable[Finding]:
    by_id: Dict[int, List[_StructUse]] = {}
    for use in uses:
        if use.type_id is not None:
            by_id.setdefault(use.type_id, []).append(use)
    for type_id, group in sorted(by_id.items()):
        if len(group) < 2:
            continue
        group.sort(key=lambda u: (str(u.module.path), u.line))
        first = group[0]
        for dup in group[1:]:
            # Cross-module collisions only bind inside the repro tree;
            # stand-alone files may reuse ids across never-coexisting
            # registries (intra-module duplicates always count).
            if dup.module.name != first.module.name and not (
                _in_repro_tree(dup.module.name)
                and _in_repro_tree(first.module.name)
            ):
                continue
            yield Finding(
                rule="PRO002", severity=SEVERITY_ERROR,
                path=str(dup.module.path), line=dup.line,
                message=(f"type id {type_id} ({dup.name or '?'!r}) already "
                         f"defined as {first.name or '?'!r} at "
                         f"{first.module.path}:{first.line}"),
            )


def _check_fields(module: ModuleInfo, node: ast.Call,
                  sname: Optional[str]) -> Iterable[Finding]:
    fields_arg = _call_arg(node, 2, "fields")
    if not isinstance(fields_arg, (ast.List, ast.Tuple)):
        return
    seen_names: Dict[str, int] = {}
    field_calls = [el for el in fields_arg.elts if isinstance(el, ast.Call)]
    for index, el in enumerate(field_calls):
        fname = _literal_str(_call_arg(el, 0, "name"))
        ftype = _literal_str(_call_arg(el, 1, "ftype"))
        where = f"{sname or '?'}.{fname or '?'}"
        if ftype is not None and not _valid_ftype(ftype):
            yield Finding(
                rule="PRO003", severity=SEVERITY_ERROR,
                path=str(module.path), line=el.lineno,
                message=f"{where}: invalid field type {ftype!r}",
            )
        if ftype == "bytes" and index != len(field_calls) - 1:
            yield Finding(
                rule="PRO003", severity=SEVERITY_ERROR,
                path=str(module.path), line=el.lineno,
                message=f"{where}: bytes field must be in last position",
            )
        if fname is not None:
            if fname in seen_names:
                yield Finding(
                    rule="PRO004", severity=SEVERITY_ERROR,
                    path=str(module.path), line=el.lineno,
                    message=(f"{where}: duplicate field name "
                             f"(first at line {seen_names[fname]})"),
                )
            else:
                seen_names[fname] = el.lineno


def _valid_ftype(ftype: str) -> bool:
    if ftype in _SCALAR_CODES or ftype == "bytes":
        return True
    match = _CHAR_RE.match(ftype)
    return bool(match) and int(match.group(1)) > 0
