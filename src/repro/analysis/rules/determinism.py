"""Determinism rules: the simulation runs on virtual time only.

Every reproduction result in this repository depends on the simulation
being a pure function of its inputs: time advances only through the
virtual clock (``machine/clock.py`` reading ``netsim/scheduler.py``),
and randomness enters only through explicitly seeded generators.  Real
wall-clock reads, real sleeps, and the process-global RNG would make
runs unrepeatable, so they are banned everywhere except the
``repro.realnet`` substrate, whose whole point is driving real sockets
in real time.

DET001 (error) wall-clock read: ``time.time``/``monotonic``/
               ``perf_counter`` (and ``_ns`` variants), or importing
               those names from ``time``.
DET002 (error) real sleep: ``time.sleep`` (the sim blocks via scheduler
               predicates, never the OS).
DET003 (error) ambient randomness: module-level ``random.*`` functions
               (the shared global RNG) or an *unseeded*
               ``random.Random()`` / any ``random.SystemRandom``.
               Seeded ``random.Random(seed)`` is the sanctioned idiom.
DET004 (error) argless ``datetime.now()`` / ``utcnow()`` / ``today()``.
DET005 (error) chaos/repair modules (:data:`_REPAIR_MODULES`) must not
               construct ``random.Random`` at all — even seeded.  Their
               streams must come from ``repro.util.seeds.derive_rng``,
               which derives per-module seeds with crc32 (stable across
               processes, unlike string ``hash()``), so a chaos schedule
               replays bit-identically from its seed alone.
DET006 (error) direct ``heapq`` use outside the shared timer module
               (:data:`_TIMER_MODULES`).  Event ordering is a protocol
               invariant — the total order ``(time, seq)`` that wire
               goldens and chaos replays are pinned to lives in
               ``netsim/timerwheel.py``, and every driver (virtual-time
               scheduler, realtime kernel) must file timers through it.
               A private heap is a second, unaccounted event queue:
               its entries are invisible to ``pending()``, escape
               cancellation accounting, and can interleave with wheel
               events in an order no replay can reproduce.  Unlike
               DET001–DET004, ``repro.realnet`` is *not* exempt.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.engine import (
    SEVERITY_ERROR,
    Finding,
    ModuleInfo,
    Project,
    rule,
)

EXEMPT_PREFIXES: Tuple[str, ...] = ("repro.realnet",)

_CLOCK_READS = {"time", "monotonic", "perf_counter",
                "time_ns", "monotonic_ns", "perf_counter_ns"}
_DATETIME_ARGLESS = {"now", "utcnow", "today"}

# Modules whose randomness must replay from a chaos seed alone: the
# fault scheduler and the circuit-repair path (backoff jitter).  These
# may only draw streams from repro.util.seeds.derive_rng (DET005).
_REPAIR_MODULES: Tuple[str, ...] = (
    "repro.netsim.chaos",
    "repro.ntcs.lcm",
    "repro.ntcs.iplayer",
    "repro.ntcs.gateway",
)

# The one home of heap-ordered event storage (DET006).  Everything
# else — including repro.realnet — files timers through its wheel.
_TIMER_MODULES: Tuple[str, ...] = (
    "repro.netsim.timerwheel",
)


def _exempt(module_name: str) -> bool:
    return any(module_name == p or module_name.startswith(p + ".")
               for p in EXEMPT_PREFIXES)


@rule(
    name="determinism",
    ids=("DET001", "DET002", "DET003", "DET004", "DET005", "DET006"),
    description="sim code uses virtual time and seeded RNGs only",
)
def check_determinism(project: Project) -> Iterable[Finding]:
    """Emit DET001–DET006 findings for wall-clock/RNG/heapq use."""
    findings: List[Finding] = []
    for module in project.modules:
        if module.name not in _TIMER_MODULES:
            findings.extend(_check_heapq(module))
        if _exempt(module.name):
            continue
        aliases = _stdlib_aliases(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.level == 0:
                findings.extend(_check_from_import(module, node))
            elif isinstance(node, ast.Call):
                findings.extend(_check_call(module, node, aliases))
    return findings


def _check_heapq(module: ModuleInfo) -> Iterable[Finding]:
    """DET006: any heapq import outside the shared timer module."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "heapq" or alias.name.startswith("heapq."):
                    yield _finding(
                        "DET006", module, node.lineno,
                        "direct heapq import; event ordering lives in "
                        "repro.netsim.timerwheel — file timers through "
                        "the shared wheel, not a private heap")
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module == "heapq":
            yield _finding(
                "DET006", module, node.lineno,
                "imports from heapq; event ordering lives in "
                "repro.netsim.timerwheel — file timers through the "
                "shared wheel, not a private heap")


def _stdlib_aliases(module: ModuleInfo) -> Dict[str, str]:
    """Local names bound to the time/random/datetime modules and to the
    datetime.datetime / datetime.date classes."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("time", "random", "datetime"):
                    aliases[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module == "datetime":
            for alias in node.names:
                if alias.name in ("datetime", "date"):
                    aliases[alias.asname or alias.name] = "datetime.class"
    return aliases


def _check_from_import(module: ModuleInfo,
                       node: ast.ImportFrom) -> Iterable[Finding]:
    if node.module == "time":
        for alias in node.names:
            if alias.name in _CLOCK_READS:
                yield _finding("DET001", module, node.lineno,
                               f"imports wall-clock time.{alias.name}; "
                               f"use the virtual clock")
            elif alias.name == "sleep":
                yield _finding("DET002", module, node.lineno,
                               "imports time.sleep; the sim must block on "
                               "scheduler predicates, not the OS")
    elif node.module == "random":
        for alias in node.names:
            if alias.name not in ("Random",):
                yield _finding("DET003", module, node.lineno,
                               f"imports random.{alias.name} (process-global "
                               f"RNG); use a seeded random.Random instead")
            elif module.name in _REPAIR_MODULES:
                yield _finding("DET005", module, node.lineno,
                               "chaos/repair module imports random.Random; "
                               "draw streams from repro.util.seeds.derive_rng "
                               "so runs replay from the chaos seed alone")


def _check_call(module: ModuleInfo, node: ast.Call,
                aliases: Dict[str, str]) -> Iterable[Finding]:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return
    base = _base_module(func.value, aliases)
    if base == "time":
        if func.attr in _CLOCK_READS:
            yield _finding("DET001", module, node.lineno,
                           f"wall-clock read time.{func.attr}(); the sim is "
                           f"driven solely by the virtual clock")
        elif func.attr == "sleep":
            yield _finding("DET002", module, node.lineno,
                           "real time.sleep(); block on scheduler "
                           "predicates instead")
    elif base == "random":
        if func.attr == "SystemRandom":
            yield _finding("DET003", module, node.lineno,
                           "random.SystemRandom is inherently nondeterministic")
        elif func.attr == "Random":
            if module.name in _REPAIR_MODULES:
                yield _finding("DET005", module, node.lineno,
                               "chaos/repair module constructs random.Random "
                               "directly (even seeded); use "
                               "repro.util.seeds.derive_rng so runs replay "
                               "from the chaos seed alone")
            elif not node.args and not node.keywords:
                yield _finding("DET003", module, node.lineno,
                               "unseeded random.Random(); pass an explicit seed")
        else:
            yield _finding("DET003", module, node.lineno,
                           f"random.{func.attr}() uses the process-global RNG; "
                           f"use a seeded random.Random instance")
    elif base in ("datetime", "datetime.class"):
        target = func.value
        # datetime.datetime.now() / dt_alias.now() / date.today()
        is_class_attr = (base == "datetime.class"
                         or (isinstance(target, ast.Attribute)
                             and target.attr in ("datetime", "date")))
        if is_class_attr and func.attr in _DATETIME_ARGLESS \
                and not node.args and not node.keywords:
            yield _finding("DET004", module, node.lineno,
                           f"argless datetime {func.attr}() reads the wall "
                           f"clock; pass an explicit time source")


def _base_module(node: ast.expr, aliases: Dict[str, str]) -> Optional[str]:
    if isinstance(node, ast.Name):
        return aliases.get(node.id)
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        # e.g. datetime.datetime.now — base name must be the module.
        return aliases.get(node.value.id)
    return None


def _finding(rule_id: str, module: ModuleInfo, line: int, msg: str) -> Finding:
    return Finding(rule=rule_id, severity=SEVERITY_ERROR,
                   path=str(module.path), line=line, message=msg)
