"""Layering rules: the paper's Fig. 2-1 stack, machine-checked.

LAY001 (error)   an import crosses layers in a forbidden direction —
                 e.g. an application importing an NTCS-internal layer,
                 the ALI veneer importing the ND-Layer, or the
                 simulated network importing the NTCS above it.
LAY002 (warning) a ``repro.*`` module is missing from the layer map —
                 new modules must be placed before they can be checked.

The map itself lives in :mod:`repro.analysis.layermap`; every import
edge (module- and function-scope alike) is checked, so lazy imports
cannot smuggle an upward dependency.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.analysis.engine import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    Project,
    rule,
)
from repro.analysis.layermap import layer_of


@rule(
    name="layering",
    ids=("LAY001", "LAY002"),
    description="imports must respect the Fig. 2-1 layer stack",
)
def check_layering(project: Project) -> Iterable[Finding]:
    """Emit LAY001/LAY002 findings for the project's import graph."""
    findings: List[Finding] = []
    for module in project.modules:
        if not _in_repro(module.name):
            continue
        src_layer = layer_of(module.name)
        if src_layer is None:
            findings.append(Finding(
                rule="LAY002", severity=SEVERITY_WARNING,
                path=str(module.path), line=1,
                message=(f"module {module.name!r} is not in the layer map; "
                         f"add it to repro.analysis.layermap"),
            ))
            continue
        for edge in project.imports_of(module):
            if not _in_repro(edge.target):
                continue
            dst_layer = layer_of(edge.target)
            if dst_layer is None:
                # Reported once, at the unmapped module itself.
                continue
            if dst_layer.name not in src_layer.allowed:
                findings.append(Finding(
                    rule="LAY001", severity=SEVERITY_ERROR,
                    path=str(module.path), line=edge.line,
                    message=(f"{module.name} (layer {src_layer.name!r}) "
                             f"imports {edge.target} (layer {dst_layer.name!r}); "
                             f"layer {src_layer.name!r} may import only "
                             f"{_fmt(src_layer.allowed)}"),
                ))
    return findings


def _in_repro(module: str) -> bool:
    return module == "repro" or module.startswith("repro.")


def _fmt(names) -> str:
    return "{" + ", ".join(sorted(names)) + "}"
