"""Built-in ntcslint rule families.  Importing this package registers
them with the engine's rule registry."""

from repro.analysis.rules import determinism, hygiene, layering, protocol

__all__ = ["layering", "protocol", "determinism", "hygiene"]
