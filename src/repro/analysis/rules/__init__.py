"""Built-in ntcslint rule families.  Importing this package registers
them with the engine's rule registry."""

from repro.analysis.rules import determinism, hygiene, layering, perf, protocol
# The model family (MDL rules) lives in its own subpackage — importing
# it here registers it with the same registry, so plain lint runs it.
from repro.analysis import model

__all__ = ["layering", "protocol", "determinism", "hygiene", "perf", "model"]
