"""repro — a reproduction of Zeleznik's NTCS (ICDCS 1986).

A portable, network-transparent communication system for message-based
applications, rebuilt in Python on a deterministic simulation of the
paper's heterogeneous testbed (VAX/Sun/Apollo machines, TCP and
Apollo-MBX native IPCSs, disjoint networks joined by portable
gateways), plus the URSA-style information-retrieval application it was
built for.

Quickstart::

    from repro import Testbed, VAX, SUN3, Field, StructDef

    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    bed.machine("vax1", VAX, networks=["ether0"])
    bed.machine("sun1", SUN3, networks=["ether0"])
    bed.name_server("vax1")
    bed.registry.register(StructDef("greeting", 100, [Field("text", "char[32]")]))

    server = bed.module("echo.server", "sun1")
    server.ali.set_request_handler(
        lambda req: server.ali.reply(req, "greeting", {"text": req.values["text"]}))

    client = bed.module("client.1", "vax1")
    uadd = client.ali.locate("echo.server")
    reply = client.ali.call(uadd, "greeting", {"text": "hello"})
    assert reply.values["text"] == "hello"

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-claim reproductions.
"""

from repro.conversion import ConversionRegistry, Field, StructDef, IMAGE, PACKED
from repro.errors import NtcsError
from repro.machine import APOLLO, IBM_PC, Machine, MachineType, SimProcess, SUN3, VAX
from repro.netsim import Network, Scheduler
from repro.ntcs import Address, NAME_SERVER_UADD, Nucleus, NucleusConfig, WellKnownTable
from repro.ntcs.gateway import Gateway
from repro.commod import ComMod
from repro.naming import NameDatabase, NameRecord, NameServer, NspLayer
from repro.testbed import Testbed, make_registry

__version__ = "1.0.0"

__all__ = [
    "Address",
    "APOLLO",
    "ComMod",
    "ConversionRegistry",
    "Field",
    "Gateway",
    "IBM_PC",
    "IMAGE",
    "Machine",
    "MachineType",
    "make_registry",
    "NAME_SERVER_UADD",
    "NameDatabase",
    "NameRecord",
    "NameServer",
    "Network",
    "NspLayer",
    "NtcsError",
    "Nucleus",
    "NucleusConfig",
    "PACKED",
    "Scheduler",
    "SimProcess",
    "StructDef",
    "SUN3",
    "Testbed",
    "VAX",
    "WellKnownTable",
]
