"""URSA: the distributed information-retrieval application (paper
Secs. 1.2, 7; ref [5]).

"The URSA system is based on a number of backend servers (e.g., for
index lookup, searching, or retrieval of documents), handling requests
from host processors or user workstations."

This package is that system, built on the NTCS public API:

* :mod:`corpus` — a deterministic synthetic document collection (the
  substitute for the project's real document base),
* :mod:`index_server` — sharded inverted-index lookup backends,
* :mod:`search_server` — boolean query evaluation, calling the index
  servers over the NTCS (server-to-server traffic),
* :mod:`document_server` — document text retrieval,
* :mod:`host` — the user-facing frontend,
* :mod:`deploy` — placement helpers used by the examples and E11.
"""

from repro.ursa.corpus import Corpus
from repro.ursa.protocol import register_ursa_types
from repro.ursa.index_server import IndexServer
from repro.ursa.search_server import SearchServer
from repro.ursa.document_server import DocumentServer
from repro.ursa.host import UrsaHost
from repro.ursa.deploy import deploy_ursa

__all__ = [
    "Corpus",
    "register_ursa_types",
    "IndexServer",
    "SearchServer",
    "DocumentServer",
    "UrsaHost",
    "deploy_ursa",
]
