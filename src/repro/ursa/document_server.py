"""The document-retrieval backend: doc id → full text, plus ingest.

Beyond serving the initial corpus, the server accepts ``doc_ingest``
requests at runtime: it stores the text and pushes an ``index_add``
update to the index shard that owns the document — live index
maintenance over the NTCS, nested inside request handling."""

from __future__ import annotations

from typing import Dict, Optional

from repro.commod import Address, ComMod, IncomingMessage
from repro.errors import NtcsError
from repro.ursa.corpus import Corpus


class DocumentServer:
    """Serves (and accepts) document text."""

    def __init__(self, commod: ComMod, corpus: Corpus,
                 name: str = "ursa.docs"):
        self.commod = commod
        self.corpus = corpus
        self.name = name
        self.fetches = 0
        self.ingests = 0
        self._store: Dict[int, str] = {d: corpus.text(d)
                                       for d in corpus.doc_ids()}
        self._shard_uadds: Dict[int, Address] = {}
        commod.ali.register(name, attrs={"kind": "docs"})
        commod.ali.set_request_handler(self._on_request)

    # -- storage ------------------------------------------------------------

    def text(self, doc_id: int) -> Optional[str]:
        """The stored text of a document, or None."""
        return self._store.get(doc_id)

    def __len__(self) -> int:
        return len(self._store)

    # -- shard discovery for ingest -----------------------------------------------

    def _shard_for(self, doc_id: int) -> Optional[Address]:
        records = self.commod.ali.locate_by_attrs({"kind": "index"})
        if not records:
            return None
        n_shards = max(int(r.attrs.get("shards", "1")) for r in records)
        shard = doc_id % n_shards
        for record in records:
            if int(record.attrs.get("shard", "-1")) == shard:
                return record.uadd
        return None

    # -- handlers ----------------------------------------------------------------

    def _on_request(self, request: IncomingMessage) -> None:
        if request.type_name == "doc_fetch" and request.reply_expected:
            self._handle_fetch(request)
        elif request.type_name == "doc_ingest" and request.reply_expected:
            self._handle_ingest(request)
        elif request.type_name == "server_stats" and request.reply_expected:
            self.commod.ali.reply(request, "server_stats_reply", {
                "requests": self.fetches,
                "items": len(self._store),
            })

    def _handle_fetch(self, request: IncomingMessage) -> None:
        self.fetches += 1
        doc_id = request.values["doc_id"]
        text = self._store.get(doc_id)
        self.commod.ali.reply(request, "doc_text", {
            "doc_id": doc_id,
            "found": 0 if text is None else 1,
            "text": b"" if text is None else text.encode("ascii"),
        })

    def _handle_ingest(self, request: IncomingMessage) -> None:
        doc_id = request.values["doc_id"]
        if doc_id in self._store:
            self.commod.ali.reply(request, "ingest_ack", {
                "doc_id": doc_id, "ok": 0, "detail": "duplicate doc id",
            })
            return
        text = request.values["text"].decode("ascii", errors="replace")
        counts: Dict[str, int] = {}
        for token in Corpus.tokenize(text):
            counts[token] = counts.get(token, 0) + 1
        terms = [f"{term}:{count}" for term, count in sorted(counts.items())]
        shard_uadd = self._shard_for(doc_id)
        if shard_uadd is None:
            self.commod.ali.reply(request, "ingest_ack", {
                "doc_id": doc_id, "ok": 0, "detail": "no index shard found",
            })
            return
        try:
            # Index update over the NTCS, from inside this handler —
            # the nested server-to-server shape again.
            self.commod.ali.call(shard_uadd, "index_add", {
                "doc_id": doc_id,
                "terms": ",".join(terms).encode("ascii"),
            })
        except NtcsError as exc:
            self.commod.ali.reply(request, "ingest_ack", {
                "doc_id": doc_id, "ok": 0, "detail": str(exc)[:60],
            })
            return
        self._store[doc_id] = text
        self.ingests += 1
        self.commod.ali.reply(request, "ingest_ack", {
            "doc_id": doc_id, "ok": 1, "detail": "",
        })
