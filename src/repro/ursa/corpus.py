"""A deterministic synthetic document collection.

The paper's URSA testbed indexed real document bases we do not have;
this corpus substitutes seeded, Zipf-distributed pseudo-English so that
index sizes, posting-list skew and query selectivity behave like text
(DESIGN.md records the substitution).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List

_SYLLABLES = [
    "ba", "co", "da", "el", "fo", "gri", "hu", "in", "jo", "ka",
    "lu", "mo", "ne", "or", "pa", "qui", "ro", "sa", "tu", "ve",
]


def _make_vocabulary(size: int, rng: random.Random) -> List[str]:
    words = set()
    while len(words) < size:
        count = rng.randint(2, 4)
        words.add("".join(rng.choice(_SYLLABLES) for _ in range(count)))
    return sorted(words)


class Corpus:
    """``n_docs`` documents over a ``vocabulary_size``-word vocabulary,
    word frequencies roughly Zipfian, fully determined by ``seed``."""

    def __init__(self, n_docs: int = 200, vocabulary_size: int = 400,
                 words_per_doc: int = 60, seed: int = 7):
        rng = random.Random(seed)
        self.vocabulary = _make_vocabulary(vocabulary_size, rng)
        # Zipf-ish weights: weight of rank r is 1/(r+1).
        weights = [1.0 / (rank + 1) for rank in range(vocabulary_size)]
        self._docs: Dict[int, str] = {}
        for doc_id in range(1, n_docs + 1):
            length = rng.randint(words_per_doc // 2, words_per_doc * 2)
            words = rng.choices(self.vocabulary, weights=weights, k=length)
            self._docs[doc_id] = " ".join(words)

    # -- access --------------------------------------------------------------

    def doc_ids(self) -> List[int]:
        """All document ids, ascending."""
        return sorted(self._docs)

    def text(self, doc_id: int) -> str:
        """The full text of one document."""
        return self._docs[doc_id]

    def __len__(self) -> int:
        return len(self._docs)

    def __contains__(self, doc_id: int) -> bool:
        return doc_id in self._docs

    @staticmethod
    def tokenize(text: str) -> List[str]:
        return [w for w in text.lower().split() if w]

    # -- derived data ----------------------------------------------------------

    def build_inverted_index(self, doc_ids: Iterable[int]) -> Dict[str, List[int]]:
        """term → sorted posting list over the given documents."""
        index: Dict[str, set] = {}
        for doc_id in doc_ids:
            for term in self.tokenize(self._docs[doc_id]):
                index.setdefault(term, set()).add(doc_id)
        return {term: sorted(postings) for term, postings in index.items()}

    def build_tf_index(self, doc_ids: Iterable[int]) -> Dict[str, Dict[int, int]]:
        """term → {doc id: term frequency} over the given documents."""
        index: Dict[str, Dict[int, int]] = {}
        for doc_id in doc_ids:
            for term in self.tokenize(self._docs[doc_id]):
                per_term = index.setdefault(term, {})
                per_term[doc_id] = per_term.get(doc_id, 0) + 1
        return index

    def common_terms(self, count: int) -> List[str]:
        """The ``count`` most frequent terms — handy query material."""
        freq: Dict[str, int] = {}
        for text in self._docs.values():
            for term in self.tokenize(text):
                freq[term] = freq.get(term, 0) + 1
        return [t for t, _ in sorted(freq.items(),
                                     key=lambda kv: (-kv[1], kv[0]))[:count]]
