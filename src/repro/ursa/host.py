"""The URSA host frontend: what a user workstation runs.

Resolves the backend services once (logical names → UAdds, Sec. 3.3's
"an application module need only obtain an address once"), then issues
search and retrieval calls; relocation of any backend is invisible
here."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.commod import Address, ComMod
from repro.ursa.protocol import decode_ids, decode_scored


class UrsaHost:
    """A user session against the URSA backends."""

    def __init__(self, commod: ComMod, name: str = "ursa.host",
                 search_name: str = "ursa.search",
                 docs_name: str = "ursa.docs"):
        self.commod = commod
        self.name = name
        self.search_name = search_name
        self.docs_name = docs_name
        self._search_uadd: Optional[Address] = None
        self._docs_uadd: Optional[Address] = None
        self.searches = 0
        commod.ali.register(name, attrs={"kind": "host"})

    # -- resource location, once ----------------------------------------------

    @property
    def search_uadd(self) -> Address:
        if self._search_uadd is None:
            self._search_uadd = self.commod.ali.locate(self.search_name)
        return self._search_uadd

    @property
    def docs_uadd(self) -> Address:
        if self._docs_uadd is None:
            self._docs_uadd = self.commod.ali.locate(self.docs_name)
        return self._docs_uadd

    # -- the user-facing operations ----------------------------------------------

    def search(self, query: str) -> List[int]:
        """Evaluate a boolean query; returns matching document ids."""
        self.searches += 1
        reply = self.commod.ali.call(self.search_uadd, "search_query",
                                     {"query": query})
        return decode_ids(reply.values["doc_ids"])

    def search_ranked(self, terms: str, limit: int = 10) -> List[Tuple[int, float]]:
        """TF-IDF ranked retrieval over a bag of terms (whitespace
        separated); returns [(doc_id, score)] best-first."""
        self.searches += 1
        reply = self.commod.ali.call(self.search_uadd, "search_ranked",
                                     {"query": terms, "limit": limit})
        return decode_scored(reply.values["scored"])

    def fetch(self, doc_id: int) -> Optional[str]:
        """Retrieve one document's text (None if unknown)."""
        reply = self.commod.ali.call(self.docs_uadd, "doc_fetch",
                                     {"doc_id": doc_id})
        if not reply.values["found"]:
            return None
        return reply.values["text"].decode("ascii")

    def search_and_fetch(self, query: str,
                         limit: int = 5) -> List[Tuple[int, str]]:
        """Search, then retrieve the first ``limit`` hits."""
        hits = self.search(query)[:limit]
        return [(doc_id, self.fetch(doc_id) or "") for doc_id in hits]

    def backend_stats(self) -> List[Tuple[str, int, int]]:
        """(service name, requests served, items held) for every URSA
        backend, gathered over the NTCS ``server_stats`` protocol."""
        out = []
        records = self.commod.ali.locate_by_attrs({"kind": "index"})
        targets = [(r.name, r.uadd) for r in sorted(records,
                                                    key=lambda r: r.name)]
        targets.append((self.search_name, self.search_uadd))
        targets.append((self.docs_name, self.docs_uadd))
        for name, uadd in targets:
            reply = self.commod.ali.call(uadd, "server_stats", {})
            out.append((name, reply.values["requests"],
                        reply.values["items"]))
        return out

    def ingest(self, doc_id: int, text: str) -> bool:
        """Add a new document to the running system.  The document
        server stores it and pushes the index update to the owning
        shard; the document is immediately searchable.  Returns False
        when refused (duplicate id, no shard, ...)."""
        reply = self.commod.ali.call(self.docs_uadd, "doc_ingest", {
            "doc_id": doc_id,
            "text": text.encode("ascii"),
        })
        return bool(reply.values["ok"])
