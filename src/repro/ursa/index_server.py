"""The inverted-index lookup backend.

One instance serves one shard of the corpus (documents whose id modulo
``n_shards`` equals ``shard``), registering with shard attributes so
search servers can locate the full shard set through attribute-based
resource location.
"""

from __future__ import annotations

from typing import Dict, List

from repro.commod import ComMod, IncomingMessage
from repro.ursa.corpus import Corpus
from repro.ursa.protocol import encode_ids


class IndexServer:
    """An index-lookup module over one corpus shard."""

    def __init__(self, commod: ComMod, corpus: Corpus, shard: int = 0,
                 n_shards: int = 1, name: str = None):
        self.commod = commod
        self.shard = shard
        self.n_shards = n_shards
        self.name = name or f"ursa.index.{shard}"
        shard_docs = [d for d in corpus.doc_ids() if d % n_shards == shard]
        self.index: Dict[str, List[int]] = corpus.build_inverted_index(shard_docs)
        # Term frequencies for ranked retrieval.
        self.tf: Dict[str, Dict[int, int]] = corpus.build_tf_index(shard_docs)
        self.requests = 0
        commod.ali.register(self.name, attrs={
            "kind": "index",
            "shard": str(shard),
            "shards": str(n_shards),
        })
        commod.ali.set_request_handler(self._on_request)

    def _on_request(self, request: IncomingMessage) -> None:
        if request.type_name == "index_lookup" and request.reply_expected:
            self.requests += 1
            postings = self.index.get(request.values["term"].lower(), [])
            self.commod.ali.reply(request, "index_posting", {
                "term": request.values["term"],
                "count": len(postings),
                "postings": encode_ids(postings),
            })
        elif request.type_name == "index_lookup_tf" and request.reply_expected:
            self.requests += 1
            term = request.values["term"].lower()
            tf_map = self.tf.get(term, {})
            pairs = ",".join(f"{doc}:{count}"
                             for doc, count in sorted(tf_map.items()))
            self.commod.ali.reply(request, "index_posting_tf", {
                "term": request.values["term"],
                "count": len(tf_map),
                "postings": pairs.encode("ascii"),
            })
        elif request.type_name == "index_add":
            self._handle_index_add(request)
        elif request.type_name == "server_stats" and request.reply_expected:
            self.commod.ali.reply(request, "server_stats_reply", {
                "requests": self.requests,
                "items": len(self.index),
            })

    def _handle_index_add(self, request: IncomingMessage) -> None:
        """Live index maintenance: add one document's terms."""
        doc_id = request.values["doc_id"]
        if doc_id % self.n_shards != self.shard:
            if request.reply_expected:
                self.commod.ali.reply(request, "index_posting", {
                    "term": "", "count": 0, "postings": b"",
                })
            return
        terms = request.values["terms"].decode("ascii")
        added = 0
        for entry in terms.split(","):
            if not entry:
                continue
            # "term" or "term:count" (the ingest path sends counts).
            term, _, count_text = entry.partition(":")
            count = int(count_text) if count_text else 1
            postings = self.index.setdefault(term, [])
            if doc_id not in postings:
                postings.append(doc_id)
                postings.sort()
                added += 1
            self.tf.setdefault(term, {})[doc_id] = count
        if request.reply_expected:
            self.commod.ali.reply(request, "index_posting", {
                "term": "", "count": added, "postings": b"",
            })

    def terms(self) -> List[str]:
        """Every indexed term on this shard, sorted."""
        return sorted(self.index)
