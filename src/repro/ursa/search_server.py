"""The search backend: boolean query evaluation over the index shards.

Queries are boolean expressions over terms::

    query  := or_expr
    or_expr  := and_expr ("OR" and_expr)*
    and_expr := not_expr ("AND" not_expr)*
    not_expr := "NOT" not_expr | term | "(" or_expr ")"

Term postings are fetched from the index servers over the NTCS — each
user query fans out into server-to-server calls *from inside the search
server's request handler*, which is precisely the nested blocking shape
that forces the Nucleus to pump reentrantly (paper Sec. 6).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.commod import Address, ComMod, IncomingMessage
from repro.errors import NtcsError
from repro.ursa.protocol import decode_ids, encode_ids, encode_scored


class QueryError(NtcsError):
    """A malformed boolean query."""


class _Parser:
    def __init__(self, text: str):
        self.tokens = text.replace("(", " ( ").replace(")", " ) ").split()
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryError("unexpected end of query")
        self.pos += 1
        return token

    def parse(self):
        node = self.or_expr()
        if self.peek() is not None:
            raise QueryError(f"trailing tokens at {self.peek()!r}")
        return node

    def or_expr(self):
        node = self.and_expr()
        while self.peek() == "OR":
            self.take()
            node = ("or", node, self.and_expr())
        return node

    def and_expr(self):
        node = self.not_expr()
        while self.peek() == "AND":
            self.take()
            node = ("and", node, self.not_expr())
        return node

    def not_expr(self):
        token = self.peek()
        if token == "NOT":
            self.take()
            return ("not", self.not_expr())
        if token == "(":
            self.take()
            node = self.or_expr()
            if self.take() != ")":
                raise QueryError("missing closing parenthesis")
            return node
        if token is None or token in ("AND", "OR", ")"):
            raise QueryError(f"expected a term, found {token!r}")
        return ("term", self.take().lower())


def parse_query(text: str):
    """Parse a boolean query into an AST (exported for testing)."""
    if not text.strip():
        raise QueryError("empty query")
    return _Parser(text).parse()


class SearchServer:
    """A search module evaluating boolean queries against the shards."""

    def __init__(self, commod: ComMod, name: str = "ursa.search",
                 universe_size: int = 0):
        self.commod = commod
        self.name = name
        # NOT needs a universe; the deployment tells us how many docs exist.
        self.universe_size = universe_size
        self._index_uadds: List[Address] = []
        self.queries = 0
        self.index_calls = 0
        commod.ali.register(name, attrs={"kind": "search"})
        commod.ali.set_request_handler(self._on_request)

    # -- shard discovery (attribute-based resource location) -----------------------

    def _shards(self) -> List[Address]:
        if not self._index_uadds:
            records = self.commod.ali.locate_by_attrs({"kind": "index"})
            if not records:
                raise QueryError("no index servers registered")
            self._index_uadds = [r.uadd for r in
                                 sorted(records, key=lambda r: r.name)]
        return self._index_uadds

    def invalidate_shards(self) -> None:
        """Forget the cached index-shard addresses (rediscover next query)."""
        self._index_uadds = []

    # -- evaluation -----------------------------------------------------------

    def _postings(self, term: str) -> Set[int]:
        result: Set[int] = set()
        for uadd in self._shards():
            self.index_calls += 1
            reply = self.commod.ali.call(uadd, "index_lookup", {"term": term})
            result.update(decode_ids(reply.values["postings"]))
        return result

    def _universe(self) -> Set[int]:
        return set(range(1, self.universe_size + 1))

    def _evaluate(self, node) -> Set[int]:
        op = node[0]
        if op == "term":
            return self._postings(node[1])
        if op == "and":
            return self._evaluate(node[1]) & self._evaluate(node[2])
        if op == "or":
            return self._evaluate(node[1]) | self._evaluate(node[2])
        if op == "not":
            return self._universe() - self._evaluate(node[1])
        raise QueryError(f"unknown node {op!r}")

    def evaluate(self, text: str) -> List[int]:
        """Evaluate a query locally (also the handler's core)."""
        return sorted(self._evaluate(parse_query(text)))

    # -- ranked retrieval (TF-IDF over a bag of terms) --------------------------

    def _tf_postings(self, term: str) -> Dict[int, int]:
        merged: Dict[int, int] = {}
        for uadd in self._shards():
            self.index_calls += 1
            reply = self.commod.ali.call(uadd, "index_lookup_tf",
                                         {"term": term})
            text = reply.values["postings"].decode("ascii")
            for part in text.split(","):
                if not part:
                    continue
                doc, _, count = part.partition(":")
                merged[int(doc)] = int(count)
        return merged

    def ranked(self, terms: List[str], limit: int = 10) -> List[Tuple[int, float]]:
        """TF-IDF ranking of a bag of terms: score(doc) = Σ tf·idf,
        idf = ln(N / df).  Ties broken by doc id for determinism."""
        n_docs = max(1, self.universe_size)
        scores: Dict[int, float] = {}
        for term in terms:
            tf_map = self._tf_postings(term.lower())
            if not tf_map:
                continue
            idf = math.log(n_docs / len(tf_map))
            for doc, tf in tf_map.items():
                scores[doc] = scores.get(doc, 0.0) + tf * idf
        ordered = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ordered[:limit]

    # -- the NTCS-facing handler --------------------------------------------------

    def _on_request(self, request: IncomingMessage) -> None:
        if request.type_name == "search_query" and request.reply_expected:
            self.queries += 1
            try:
                doc_ids = self.evaluate(request.values["query"])
            except (QueryError, NtcsError):
                doc_ids = []
            self.commod.ali.reply(request, "search_result", {
                "count": len(doc_ids),
                "doc_ids": encode_ids(doc_ids),
            })
        elif request.type_name == "search_ranked" and request.reply_expected:
            self.queries += 1
            terms = request.values["query"].split()
            try:
                scored = self.ranked(terms, limit=request.values["limit"])
            except NtcsError:
                scored = []
            self.commod.ali.reply(request, "ranked_result", {
                "count": len(scored),
                "scored": encode_scored(scored),
            })
        elif request.type_name == "server_stats" and request.reply_expected:
            self.commod.ali.reply(request, "server_stats_reply", {
                "requests": self.queries,
                "items": self.index_calls,
            })
