"""URSA deployment helpers: place the backends on a testbed.

The paper reports "three generations of distributed information
retrieval systems"; :func:`deploy_ursa` parameterizes placement so E11
can run the same application on three topologies."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.testbed import Testbed
from repro.ursa.corpus import Corpus
from repro.ursa.document_server import DocumentServer
from repro.ursa.host import UrsaHost
from repro.ursa.index_server import IndexServer
from repro.ursa.protocol import register_ursa_types
from repro.ursa.search_server import SearchServer


@dataclass
class UrsaSystem:
    """Handles to a deployed URSA instance."""

    corpus: Corpus
    index_servers: List[IndexServer]
    search_server: SearchServer
    document_server: DocumentServer
    hosts: List[UrsaHost]


def deploy_ursa(
    bed: Testbed,
    corpus: Corpus,
    index_machines: List[str],
    search_machine: str,
    docs_machine: str,
    host_machines: Optional[List[str]] = None,
) -> UrsaSystem:
    """Stand the whole IR system up on an existing testbed.

    One index shard per entry of ``index_machines`` (repeats allowed),
    one search server, one document server, one host per entry of
    ``host_machines``.
    """
    if 64 not in bed.registry:
        register_ursa_types(bed.registry)
    n_shards = len(index_machines)
    index_servers = []
    for shard, machine in enumerate(index_machines):
        commod = bed.module(f"ursa.index.{shard}", machine, register=False)
        index_servers.append(IndexServer(commod, corpus, shard=shard,
                                         n_shards=n_shards))
    search_commod = bed.module("ursa.search", search_machine, register=False)
    search_server = SearchServer(search_commod, universe_size=len(corpus))
    docs_commod = bed.module("ursa.docs", docs_machine, register=False)
    document_server = DocumentServer(docs_commod, corpus)
    hosts = []
    for i, machine in enumerate(host_machines or []):
        commod = bed.module(f"ursa.host.{i}", machine, register=False)
        hosts.append(UrsaHost(commod, name=f"ursa.host.{i}"))
    system = UrsaSystem(
        corpus=corpus,
        index_servers=index_servers,
        search_server=search_server,
        document_server=document_server,
        hosts=hosts,
    )
    if bed.config.nsp_cache_enabled:
        warm_ursa_naming(system)
    return system


def warm_ursa_naming(system: UrsaSystem) -> int:
    """Prefetch each module's peers with batched Name-Server calls
    (PROTOCOL.md §9): one ``ns_resolve_batch`` round trip per module
    primes its resolution cache with the full records of every peer it
    will talk to, replacing one round trip per (module, peer) pair
    during cold start.  Returns the number of batch calls issued."""
    batches = 0
    for host in system.hosts:
        host.commod.nsp.resolve_batch([host.search_name, host.docs_name])
        batches += 1
    index_names = sorted(
        f"ursa.index.{server.shard}" for server in system.index_servers
    )
    if index_names:
        # The search and document servers fan out to every shard on
        # their first query/ingest; warm the UAdd→record map they will
        # need (shard discovery itself is attribute-based, not cached).
        system.search_server.commod.nsp.resolve_batch(index_names)
        system.document_server.commod.nsp.resolve_batch(index_names)
        batches += 2
    return batches
