"""URSA wire structures (application type ids 64–79).

Posting lists and document ids travel as comma-separated decimal ASCII
in ``bytes`` tail fields — squarely inside the paper's character
transport format, and safely convertible in both image and packed
modes.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.conversion import ConversionRegistry, Field, StructDef

T_INDEX_LOOKUP = 64
T_INDEX_POSTING = 65
T_SEARCH_QUERY = 66
T_SEARCH_RESULT = 67
T_DOC_FETCH = 68
T_DOC_TEXT = 69
T_SERVER_STATS = 70
T_SERVER_STATS_REPLY = 71
T_DOC_INGEST = 72
T_INGEST_ACK = 73
T_INDEX_ADD = 74
T_INDEX_LOOKUP_TF = 75
T_INDEX_POSTING_TF = 76
T_SEARCH_RANKED = 77
T_RANKED_RESULT = 78

_STRUCTS = [
    StructDef("index_lookup", T_INDEX_LOOKUP, [
        Field("term", "char[32]"),
    ]),
    StructDef("index_posting", T_INDEX_POSTING, [
        Field("term", "char[32]"),
        Field("count", "u32"),
        Field("postings", "bytes"),
    ]),
    StructDef("search_query", T_SEARCH_QUERY, [
        Field("query", "char[96]"),
    ]),
    StructDef("search_result", T_SEARCH_RESULT, [
        Field("count", "u32"),
        Field("doc_ids", "bytes"),
    ]),
    StructDef("doc_fetch", T_DOC_FETCH, [
        Field("doc_id", "u32"),
    ]),
    StructDef("doc_text", T_DOC_TEXT, [
        Field("doc_id", "u32"),
        Field("found", "u8"),
        Field("text", "bytes"),
    ]),
    StructDef("server_stats", T_SERVER_STATS, []),
    StructDef("server_stats_reply", T_SERVER_STATS_REPLY, [
        Field("requests", "u32"),
        Field("items", "u32"),
    ]),
    # The ingest path: new documents arrive while the system runs.
    StructDef("doc_ingest", T_DOC_INGEST, [
        Field("doc_id", "u32"),
        Field("text", "bytes"),
    ]),
    StructDef("ingest_ack", T_INGEST_ACK, [
        Field("doc_id", "u32"),
        Field("ok", "u8"),
        Field("detail", "char[64]"),
    ]),
    StructDef("index_add", T_INDEX_ADD, [
        Field("doc_id", "u32"),
        Field("terms", "bytes"),       # comma-separated terms
    ]),
    # Ranked retrieval: term-frequency postings and scored results.
    StructDef("index_lookup_tf", T_INDEX_LOOKUP_TF, [
        Field("term", "char[32]"),
    ]),
    StructDef("index_posting_tf", T_INDEX_POSTING_TF, [
        Field("term", "char[32]"),
        Field("count", "u32"),
        Field("postings", "bytes"),    # "doc:tf,doc:tf"
    ]),
    StructDef("search_ranked", T_SEARCH_RANKED, [
        Field("query", "char[96]"),
        Field("limit", "u16"),
    ]),
    StructDef("ranked_result", T_RANKED_RESULT, [
        Field("count", "u32"),
        Field("scored", "bytes"),      # "doc:score,doc:score"
    ]),
]


def register_ursa_types(registry: ConversionRegistry) -> None:
    """Install the URSA wire structures into a registry."""
    for sdef in _STRUCTS:
        registry.register(sdef)


def encode_ids(ids: Iterable[int]) -> bytes:
    """Document ids as comma-separated decimal ASCII."""
    return ",".join(str(i) for i in ids).encode("ascii")


def decode_ids(data: bytes) -> List[int]:
    """Parse comma-separated decimal document ids."""
    text = data.decode("ascii")
    if not text:
        return []
    return [int(part) for part in text.split(",")]


def encode_scored(pairs: Iterable[tuple]) -> bytes:
    """[(doc_id, score)] → "doc:score,doc:score" (scores as repr)."""
    return ",".join(f"{doc}:{score!r}" for doc, score in pairs).encode("ascii")


def decode_scored(data: bytes) -> List[tuple]:
    """Parse 'doc:score' pairs back into (int, float) tuples."""
    text = data.decode("ascii")
    if not text:
        return []
    out = []
    for part in text.split(","):
        doc, _, score = part.partition(":")
        out.append((int(doc), float(score)))
    return out
