"""Deployment builder: whole NTCS testbeds in a few lines.

The paper's URSA testbed mixed machines, networks, gateways, a Name
Server and application modules.  :class:`Testbed` assembles exactly
that on the simulation substrate — used by the examples, integration
tests and every benchmark.

Typical use::

    bed = Testbed()
    ether = bed.network("ether0", protocol="tcp")
    bed.machine("vax1", VAX, networks=["ether0"])
    bed.machine("sun1", SUN3, networks=["ether0"])
    bed.name_server("vax1")
    server = bed.module("index.server", "sun1")
    client = bed.module("host.1", "vax1")
    uadd = client.ali.locate("index.server")
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.commod import ComMod
from repro.conversion import ConversionRegistry
from repro.errors import SimulationError
from repro.ipcs import SimMbxIpcs, SimTcpIpcs
from repro.machine import Machine, MachineType, SimProcess
from repro.naming import NameServer, NspLayer, register_naming_types
from repro.netsim import (
    ChaosEngine,
    ChaosSchedule,
    NetTraceLog,
    Network,
    Scheduler,
)
from repro.ntcs.address import blob_network
from repro.ntcs.gateway import Gateway
from repro.ntcs.nucleus import NucleusConfig
from repro.ntcs.protocol import register_nucleus_types
from repro.ntcs.wellknown import WellKnownTable
from repro.drts.protocol import register_drts_types

_IPCS_KINDS = {"tcp": SimTcpIpcs, "mbx": SimMbxIpcs}

# Well-known bindings for the Name Server's listening resource.
_NS_BINDINGS = {"tcp": "411", "mbx": "/mbx/name.server"}


def make_registry() -> ConversionRegistry:
    """A registry with every internal NTCS/naming/DRTS type installed."""
    registry = ConversionRegistry()
    register_nucleus_types(registry)
    register_naming_types(registry)
    register_drts_types(registry)
    return registry


class Testbed:
    """One deployment: scheduler, networks, machines, Name Server,
    gateways and modules, sharing a registry and well-known table."""

    __test__ = False  # not a pytest test class, despite the name

    def __init__(self, config: Optional[NucleusConfig] = None):
        self.scheduler = Scheduler()
        self.registry = make_registry()
        self.wellknown = WellKnownTable()
        self.config = config or NucleusConfig()
        self.networks: Dict[str, Network] = {}
        self.machines: Dict[str, Machine] = {}
        self.gateways: Dict[str, Gateway] = {}
        self.modules: Dict[str, ComMod] = {}
        self.name_server_instance: Optional[NameServer] = None
        # Swappable naming-service client (set by e.g. the replicated
        # deployment helper); None means the single-server NspLayer.
        self.nsp_factory = None
        # Sharded naming bookkeeping (PROTOCOL.md §14), filled by
        # repro.naming.shards.deploy_sharded_naming: machine → shard
        # server (for chaos restarts), shard id → replica group, and
        # the shard → [(uadd, blob, mtype)] directory.
        self.name_shard_servers: Dict[str, NameServer] = {}
        self.shard_groups: Dict[int, List[NameServer]] = {}
        self.shard_directory: Dict[int, list] = {}

    # -- topology -----------------------------------------------------------

    def network(self, name: str, protocol: str = "tcp",
                latency: float = 0.001,
                bandwidth: Optional[float] = None) -> Network:
        """Create a network.  ``protocol`` fixes which native IPCS runs
        on it ("tcp" for ethernets, "mbx" for the Apollo ring);
        ``bandwidth`` (bytes/virtual-second) enables the serialization-
        delay model."""
        if protocol not in _IPCS_KINDS:
            raise SimulationError(f"unknown IPCS protocol {protocol!r}")
        if name in self.networks:
            raise SimulationError(f"network {name!r} already exists")
        net = Network(self.scheduler, name, latency=latency,
                      bandwidth=bandwidth)
        net.protocol = protocol
        # Frame trains (PROTOCOL.md §13) are a delivery-path construct
        # of the substrate, configured deployment-wide.
        net.train_enabled = self.config.train_enabled
        net.train_max = self.config.train_max
        self.networks[name] = net
        return net

    def machine(
        self,
        name: str,
        mtype: MachineType,
        networks: List[str],
        clock_offset: float = 0.0,
        clock_drift: float = 0.0,
    ) -> Machine:
        """Create a machine attached to the named networks, with the
        matching native IPCS instantiated per network."""
        if name in self.machines:
            raise SimulationError(f"machine {name!r} already exists")
        machine = Machine(self.scheduler, name, mtype,
                          clock_offset=clock_offset, clock_drift=clock_drift)
        for net_name in networks:
            net = self.networks[net_name]
            machine.attach_network(net)
            _IPCS_KINDS[net.protocol](machine, net)
        self.machines[name] = machine
        return machine

    # -- system modules -----------------------------------------------------

    def name_server(self, machine_name: str,
                    network: Optional[str] = None,
                    db=None) -> NameServer:
        """Start the Name Server on a machine and publish its
        well-known address to every (current and future) module.
        Pass ``db`` to swap the database implementation (e.g. an
        :class:`~repro.naming.attributes.AttributeNameDatabase`)."""
        if self.name_server_instance is not None:
            raise SimulationError("this testbed already has a Name Server")
        machine = self.machines[machine_name]
        network = network or machine.networks[0]
        protocol = self.networks[network].protocol
        process = SimProcess(machine, "name.server")
        server = NameServer(
            process, self.registry, self.wellknown,
            network=network, binding=_NS_BINDINGS[protocol],
            config=replace(self.config), db=db,
        )
        self.wellknown.add_name_server_blob(server.listen_blob)
        self.name_server_instance = server
        return server

    def gateway(self, machine_name: str,
                prime_for: Optional[List[str]] = None) -> Gateway:
        """Start a gateway spanning all of a machine's networks,
        register it with the naming service, and optionally make it the
        *prime* gateway (the well-known route toward the Name Server)
        for some of those networks."""
        machine = self.machines[machine_name]
        process = SimProcess(machine, f"gw.{machine_name}")
        gateway = Gateway(process, self.registry, self.wellknown,
                          config=replace(self.config))
        # Prime status must exist before registration: the gateway's
        # own registration may need to route toward the Name Server.
        for network in (prime_for or []):
            blob = gateway.stacks[network].nd.listen_blob
            self.wellknown.add_prime_gateway(network, blob)
        gateway.attach_nsp(self._gateway_nsp_factory())
        gateway.register()
        self.gateways[machine_name] = gateway
        return gateway

    def _gateway_nsp_factory(self):
        """Gateways talk to whatever naming service the deployment
        runs: the swapped-in factory (replicated / sharded) when one is
        installed, the single-server NspLayer otherwise."""
        return self.nsp_factory or (lambda nucleus: NspLayer(nucleus))

    def module(
        self,
        name: str,
        machine_name: str,
        network: Optional[str] = None,
        register: bool = True,
        attrs: Optional[Dict[str, str]] = None,
        config: Optional[NucleusConfig] = None,
    ) -> ComMod:
        """Create an application module: process + ComMod, registered
        with the naming service by default."""
        machine = self.machines[machine_name]
        process = SimProcess(machine, name)
        commod = ComMod(
            process, self.registry, self.wellknown,
            network=network, config=config or replace(self.config),
            nsp_factory=self.nsp_factory,
        )
        if register:
            commod.ali.register(name, attrs=attrs)
        self.modules[name] = commod
        return commod

    # -- crash recovery (PROTOCOL.md §10) ------------------------------------

    @staticmethod
    def _binding_from_blob(blob: str) -> str:
        """Recover the listening binding (TCP port / MBX pathname) from
        a previously published address blob."""
        if blob.startswith("tcp:"):
            return str(SimTcpIpcs.parse_blob(blob)[2])
        if blob.startswith("mbx:"):
            return SimMbxIpcs.parse_blob(blob)[2]
        raise SimulationError(f"cannot recover a binding from blob {blob!r}")

    def revive_machine(self, name: str) -> Machine:
        """Bring a crashed machine's interfaces back up.  Its old
        processes stay dead — restart components explicitly, or let
        :meth:`chaos` do it."""
        machine = self.machines[name]
        machine.revive()
        return machine

    def restart_gateway(self, machine_name: str) -> Gateway:
        """Restart a crashed gateway on the same machine with the *same*
        listening bindings — well-known prime blobs and peers' cached
        routes stay valid — and re-register it under the same name, so
        the fresh record supersedes the dead one in route planning."""
        old = self.gateways[machine_name]
        machine = self.revive_machine(machine_name)
        bindings = {
            network: self._binding_from_blob(nucleus.nd.listen_blob)
            for network, nucleus in old.stacks.items()
            if nucleus.nd.listen_blob
        }
        process = SimProcess(machine, f"gw.{machine_name}")
        gateway = Gateway(process, self.registry, self.wellknown,
                          config=replace(self.config), bindings=bindings)
        gateway.attach_nsp(self._gateway_nsp_factory())
        gateway.register()
        self.gateways[machine_name] = gateway
        return gateway

    def restart_name_server(self) -> NameServer:
        """Restart the Name Server on its machine with the surviving
        database and the same well-known binding.  The restart guard in
        :class:`~repro.naming.server.NameServer` reuses the original
        UAdd, so every module's well-known table stays valid."""
        old = self.name_server_instance
        if old is None:
            raise SimulationError("this testbed has no Name Server to restart")
        machine = old.process.machine
        machine.revive()
        network = blob_network(old.listen_blob)
        protocol = self.networks[network].protocol
        process = SimProcess(machine, old.process.name)
        server = type(old)(
            process, self.registry, self.wellknown,
            network=network, binding=_NS_BINDINGS[protocol],
            config=replace(self.config), db=old.db, name=old.name,
        )
        if hasattr(old, "peer_uadds") and hasattr(server, "set_peers"):
            server.set_peers(list(old.peer_uadds))
        self.name_server_instance = server
        return server

    def restart_name_shard(self, machine_name: str) -> NameServer:
        """Restart a crashed shard server (PROTOCOL.md §14) on its
        machine with the surviving database, the same well-known
        binding, and its original UAdd, shard map and replica peers —
        then pull the writes it missed from its peers through one
        anti-entropy round."""
        old = self.name_shard_servers.get(machine_name)
        if old is None:
            raise SimulationError(
                f"machine {machine_name!r} hosts no naming shard server")
        machine = self.revive_machine(machine_name)
        network = blob_network(old.listen_blob)
        process = SimProcess(machine, old.process.name)
        server = type(old)(
            process, self.registry, self.wellknown,
            network=network,
            binding=self._binding_from_blob(old.listen_blob),
            config=replace(self.config), db=old.db, name=old.name,
            shard_id=old.shard_id,
        )
        server.set_shard_map(old.shard_directory)
        server.set_peers(list(old.peer_uadds))
        for entries in old.shard_directory.values():
            for uadd, blob, mtype_name in entries:
                server.nucleus.ns_addresses.add(uadd)
                if uadd != server.uadd and blob:
                    server.nucleus.addr_cache.store(uadd, blob, mtype_name)
        self.name_shard_servers[machine_name] = server
        group = self.shard_groups[old.shard_id]
        group[group.index(old)] = server
        if self.name_server_instance is old:
            self.name_server_instance = server
        server.run_antientropy()
        return server

    def record_wire_trace(self) -> NetTraceLog:
        """Tap every network of this deployment with one
        :class:`~repro.netsim.tracelog.NetTraceLog`.  The returned log
        accumulates every transmitted frame (dropped ones included);
        dump it with :meth:`NetTraceLog.dump_jsonl` and replay it with
        ``python -m repro.analysis verify --trace``."""
        log = NetTraceLog()
        for network in self.networks.values():
            log.attach(network)
        return log

    def chaos(self, schedule: ChaosSchedule) -> ChaosEngine:
        """Install a :class:`~repro.netsim.chaos.ChaosSchedule` onto
        this deployment: every machine becomes a crash/restart target
        (restart revives the machine and restarts whatever gateway or
        Name Server it hosted) and every network accepts link ops."""
        engine = ChaosEngine(self.scheduler, schedule)
        for name, network in self.networks.items():
            engine.register_network(name, network)
        for name, machine in self.machines.items():
            engine.register_target(
                name, crash=machine.crash, restart=self._restarter(name))
        engine.install()
        return engine

    def _restarter(self, machine_name: str):
        """A restart callable for :meth:`chaos`: revive the machine and
        relaunch the system components it hosted.  Restarting a machine
        that is already up is a no-op, so overlapping crash/restart
        windows in a random schedule cannot double-bind listen ports."""
        def restart() -> None:
            if self.machines[machine_name].alive:
                return
            self.revive_machine(machine_name)
            if machine_name in self.gateways:
                self.restart_gateway(machine_name)
            if machine_name in self.name_shard_servers:
                self.restart_name_shard(machine_name)
                return
            ns = self.name_server_instance
            if ns is not None and ns.process.machine.name == machine_name:
                self.restart_name_server()
        return restart

    # -- running -------------------------------------------------------------

    def settle(self) -> int:
        """Drain outstanding events (e.g. after asynchronous sends)."""
        return self.scheduler.run_until_idle()

    def run_for(self, duration: float) -> int:
        """Run events inside a virtual-time window; returns how many ran."""
        return self.scheduler.run_for(duration)

    @property
    def now(self) -> float:
        return self.scheduler.now
