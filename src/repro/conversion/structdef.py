"""Message structure definitions.

The paper requires every application message to be "a contiguous block
of memory (e.g., linked lists are not allowed)" — in C terms, a struct
of scalar fields and character arrays.  A :class:`StructDef` is this
repository's equivalent: an ordered list of typed fields, from which
both the image layout and the generated pack/unpack routines follow.

Supported field types:

========  ===========================================  ==============
type      meaning                                      struct code
========  ===========================================  ==============
i8/u8     signed/unsigned byte                         b / B
i16/u16   signed/unsigned 16-bit integer               h / H
i32/u32   signed/unsigned 32-bit integer               i / I
i64/u64   signed/unsigned 64-bit integer               q / Q
f64       IEEE double                                  d
char[N]   fixed-size ASCII text, NUL-padded            Ns
bytes     variable-length trailing byte field          (appended raw)
========  ===========================================  ==============

At most one ``bytes`` field is allowed, and only in last position —
it models the common C idiom of a variable tail on a fixed header.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from repro.errors import ConversionError

_SCALAR_CODES = {
    "i8": "b", "u8": "B",
    "i16": "h", "u16": "H",
    "i32": "i", "u32": "I",
    "i64": "q", "u64": "Q",
    "f64": "d",
}
_CHAR_RE = re.compile(r"^char\[(\d+)\]$")


@dataclass(frozen=True)
class Field:
    """One typed field of a message structure."""

    name: str
    ftype: str

    def __post_init__(self):
        if not self.name.isidentifier():
            raise ConversionError(f"field name {self.name!r} is not an identifier")
        if self.ftype not in _SCALAR_CODES and self.ftype != "bytes" \
                and not _CHAR_RE.match(self.ftype):
            raise ConversionError(f"unknown field type {self.ftype!r}")

    @property
    def is_scalar(self) -> bool:
        return self.ftype in _SCALAR_CODES

    @property
    def is_char(self) -> bool:
        return bool(_CHAR_RE.match(self.ftype))

    @property
    def is_bytes(self) -> bool:
        return self.ftype == "bytes"

    @property
    def char_size(self) -> int:
        match = _CHAR_RE.match(self.ftype)
        if not match:
            raise ConversionError(f"{self.ftype} is not a char field")
        return int(match.group(1))

    @property
    def struct_code(self) -> str:
        if self.is_scalar:
            return _SCALAR_CODES[self.ftype]
        if self.is_char:
            return f"{self.char_size}s"
        raise ConversionError("bytes fields have no struct code")


class StructDef:
    """An ordered, named message structure.

    Args:
        name: identifier used for the generated pack/unpack routines.
        type_id: wire type id (registered in a ConversionRegistry).
        fields: the ordered fields.
    """

    def __init__(self, name: str, type_id: int, fields: Sequence[Field]):
        if not name.isidentifier():
            raise ConversionError(f"struct name {name!r} is not an identifier")
        if type_id < 0 or type_id > 0xFFFFFFFF:
            raise ConversionError(f"type_id {type_id} out of u32 range")
        names = [f.name for f in fields]
        if len(set(names)) != len(names):
            raise ConversionError(f"duplicate field names in {name}")
        for i, field in enumerate(fields):
            if field.is_bytes and i != len(fields) - 1:
                raise ConversionError(
                    f"{name}.{field.name}: bytes field must be last"
                )
        self.name = name
        self.type_id = type_id
        self.fields: Tuple[Field, ...] = tuple(fields)
        self._fixed_fields = [f for f in self.fields if not f.is_bytes]
        self._has_tail = bool(self.fields) and self.fields[-1].is_bytes
        self._fixed_format = "".join(f.struct_code for f in self._fixed_fields)
        self.fixed_size = struct.calcsize("<" + self._fixed_format)
        # Precompiled per-byte-order codecs: struct.pack/unpack with a
        # string format re-parses the format on every message, which
        # shows up on the per-message hot path.  Definitions are static,
        # so compile once per (prefix, format) pair on demand.
        self._codecs: Dict[str, struct.Struct] = {}

    def _codec(self, byte_order_prefix: str) -> struct.Struct:
        codec = self._codecs.get(byte_order_prefix)
        if codec is None:
            codec = struct.Struct(byte_order_prefix + self._fixed_format)
            self._codecs[byte_order_prefix] = codec
        return codec

    @property
    def has_tail(self) -> bool:
        return self._has_tail

    def field_names(self) -> List[str]:
        """The field names, in wire order."""
        return [f.name for f in self.fields]

    # -- image mode ---------------------------------------------------------

    def _coerce(self, values: Dict[str, Any]) -> List[Any]:
        raw = []
        for field in self._fixed_fields:
            try:
                value = values[field.name]
            except KeyError:
                raise ConversionError(f"{self.name}: missing field {field.name!r}")
            if field.is_char:
                if isinstance(value, str):
                    value = value.encode("ascii")
                if len(value) > field.char_size:
                    raise ConversionError(
                        f"{self.name}.{field.name}: {len(value)} bytes exceeds "
                        f"char[{field.char_size}]"
                    )
            raw.append(value)
        return raw

    def image_encode(self, values: Dict[str, Any], byte_order_prefix: str) -> bytes:
        """Lay the structure out as it sits in memory on a machine with
        the given byte order — the paper's "memory image"."""
        try:
            body = self._codec(byte_order_prefix).pack(*self._coerce(values))
        except struct.error as exc:
            raise ConversionError(f"{self.name}: image encode failed: {exc}")
        if self._has_tail:
            tail = values.get(self.fields[-1].name, b"")
            if isinstance(tail, str):
                tail = tail.encode("ascii")
            body += tail
        return body

    def image_decode(self, data: bytes, byte_order_prefix: str) -> Dict[str, Any]:
        """Reinterpret a memory image with the given byte order.  This
        is *deliberately* not validated against the sender's byte order:
        a wrong-mode transfer decodes to corrupted values, as on real
        hardware."""
        if len(data) < self.fixed_size:
            raise ConversionError(
                f"{self.name}: image of {len(data)} bytes shorter than "
                f"fixed size {self.fixed_size}"
            )
        try:
            raw = self._codec(byte_order_prefix).unpack_from(data)
        except struct.error as exc:
            raise ConversionError(f"{self.name}: image decode failed: {exc}")
        values: Dict[str, Any] = {}
        for field, value in zip(self._fixed_fields, raw):
            if field.is_char:
                value = value.rstrip(b"\x00").decode("ascii", errors="replace")
            values[field.name] = value
        if self._has_tail:
            values[self.fields[-1].name] = data[self.fixed_size:]
        return values

    def __repr__(self) -> str:
        inner = ", ".join(f"{f.name}:{f.ftype}" for f in self.fields)
        return f"StructDef({self.name}#{self.type_id}: {inner})"
