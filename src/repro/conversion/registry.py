"""Message-type registry: struct definitions plus their codecs.

Every communicating module in the paper's system is compiled against
the same message structure definitions and links the (generated)
pack/unpack routines for the types it uses.  A
:class:`ConversionRegistry` is this repository's equivalent — one
shared instance per deployment, holding, per type id, the
:class:`StructDef` and its pack/unpack pair.

The transport format "is determined entirely by the application"
(Sec. 5.1): :meth:`register` accepts custom pack/unpack callables that
override the generated character-format codecs, provided only that they
produce/consume bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.conversion.codegen import build_codecs
from repro.conversion.structdef import StructDef
from repro.errors import ConversionError, DuplicateTypeId, UnknownMessageType
from repro.machine.arch import MachineType
from repro.util.counters import CounterSet


@dataclass
class RegistryEntry:
    sdef: StructDef
    pack: Callable[[Dict], bytes]
    unpack: Callable[[bytes], Dict]
    generated_source: Optional[str]


class ConversionRegistry:
    """Type id → structure definition + codecs."""

    # Type ids below this value are reserved for NTCS-internal messages.
    FIRST_APPLICATION_TYPE_ID = 64

    def __init__(self):
        self._by_id: Dict[int, RegistryEntry] = {}
        self._by_name: Dict[str, RegistryEntry] = {}
        # (type id, src data format, dst data format) -> (entry, image
        # compatible).  Sec. 5's per-destination-machine-type decision,
        # computed once per peer; safe to cache forever because type ids
        # are registered exactly once and a MachineType's data format is
        # immutable.
        self._route_cache: Dict[Tuple[int, str, str],
                                Tuple[RegistryEntry, bool]] = {}
        self.counters = CounterSet()

    def register(
        self,
        sdef: StructDef,
        pack: Optional[Callable[[Dict], bytes]] = None,
        unpack: Optional[Callable[[bytes], Dict]] = None,
    ) -> RegistryEntry:
        """Register a structure.  Without explicit codecs, pack/unpack
        are generated from the definition (the [22] code generator)."""
        if sdef.type_id in self._by_id:
            raise DuplicateTypeId(
                f"type id {sdef.type_id} already registered "
                f"(as {self._by_id[sdef.type_id].sdef.name!r})",
                type_id=sdef.type_id, name=sdef.name,
            )
        if sdef.name in self._by_name:
            raise DuplicateTypeId(
                f"type name {sdef.name!r} already registered",
                type_id=sdef.type_id, name=sdef.name,
            )
        if (pack is None) != (unpack is None):
            raise ConversionError("pack and unpack must be supplied together")
        if pack is None:
            pack, unpack, source = build_codecs(sdef)
        else:
            source = None
        entry = RegistryEntry(sdef=sdef, pack=pack, unpack=unpack,
                              generated_source=source)
        self._by_id[sdef.type_id] = entry
        self._by_name[sdef.name] = entry
        return entry

    def get(self, type_id: int) -> RegistryEntry:
        """The entry for a type id; raises UnknownMessageType if absent."""
        try:
            return self._by_id[type_id]
        except KeyError:
            raise UnknownMessageType(
                f"no registered message type {type_id}", type_id=type_id
            )

    def get_by_name(self, name: str) -> RegistryEntry:
        """The entry for a type name; raises UnknownMessageType if absent."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownMessageType(
                f"no registered message type {name!r}", name=name
            )

    def lookup_route(self, type_id: int, src: MachineType,
                     dst: MachineType) -> Tuple[RegistryEntry, bool]:
        """The cached (codec entry, image-compatible) decision for one
        (type id, source arch, destination arch) triple.

        The cache is keyed by :attr:`MachineType.data_format`, which
        fully determines both the mode rule (image between identical
        layouts, Sec. 5) and the image byte order — so the hot send
        path costs one dictionary probe per peer after warm-up.
        Raises UnknownMessageType for an unregistered type id.
        """
        key = (type_id, src.data_format, dst.data_format)
        hit = self._route_cache.get(key)
        if hit is not None:
            self.counters.incr("codec_cache_hits")
            return hit
        decision = (self.get(type_id), src.image_compatible(dst))
        self._route_cache[key] = decision
        self.counters.incr("codec_cache_misses")
        return decision

    def __contains__(self, type_id: int) -> bool:
        return type_id in self._by_id

    def type_ids(self) -> Iterable[int]:
        """All registered type ids, sorted."""
        return sorted(self._by_id)
