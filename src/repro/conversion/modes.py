"""Transfer-mode selection and body encoding (paper Secs. 5 & 5.1).

"Messages between identical machines are simply byte-copied (image
mode) while those between incompatible machines are transmitted in a
converted representation (packed mode).  The NTCS determines the
correct mode based on the source and destination machine types, thus
avoiding needless conversions."

The sender-side flow mirrors the C original: the application hands the
NTCS the *memory image* of its message (here: the image encoding under
the source machine's byte order).  If the destination is
image-compatible the bytes go out untouched; otherwise the pack routine
reads the fields out of the image and emits the character transport
format, and the destination's unpack routine rebuilds a native image.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.conversion.registry import ConversionRegistry, RegistryEntry
from repro.errors import ConversionError
from repro.machine.arch import MachineType

IMAGE = 0
PACKED = 1

MODE_NAMES = {IMAGE: "image", PACKED: "packed"}


def choose_mode(src: MachineType, dst: MachineType) -> int:
    """The paper's rule: image between identical machine types, packed
    between incompatible ones."""
    return IMAGE if src.image_compatible(dst) else PACKED


def encode_body(
    registry: ConversionRegistry,
    type_id: int,
    native_image: bytes,
    src: MachineType,
    dst: MachineType,
    mode: int = None,
) -> Tuple[int, bytes]:
    """Prepare a message body for the wire.

    Args:
        registry: message-type registry (supplies pack routines).
        type_id: the message's registered type.
        native_image: the message as it sits in the sender's memory.
        src, dst: source and destination machine types.
        mode: force a mode (for the E7 corruption demonstration);
            normally None, meaning :func:`choose_mode` decides.

    Returns:
        (mode, wire_bytes).
    """
    entry, compatible = registry.lookup_route(type_id, src, dst)
    if mode is None:
        mode = IMAGE if compatible else PACKED
    if mode == IMAGE:
        registry.counters.incr("image_sends")
        return IMAGE, native_image
    values = entry.sdef.image_decode(native_image, src.struct_prefix)
    registry.counters.incr("pack_calls")
    return PACKED, entry.pack(values)


def encode_values(
    registry: ConversionRegistry,
    type_id: int,
    values: Dict[str, Any],
    src: MachineType,
    dst: MachineType,
    mode: int = None,
) -> Tuple[int, bytes]:
    """Convenience for senders that hold field values rather than a
    prebuilt image: apply the (cached) mode rule, then materialize the
    source-machine memory image only when it actually goes on the wire
    — the pack routine reads the field values directly."""
    entry, compatible = registry.lookup_route(type_id, src, dst)
    if mode is None:
        mode = IMAGE if compatible else PACKED
    if mode == IMAGE:
        registry.counters.incr("image_sends")
        return IMAGE, entry.sdef.image_encode(values, src.struct_prefix)
    registry.counters.incr("pack_calls")
    return PACKED, entry.pack(values)


def decode_body(
    registry: ConversionRegistry,
    type_id: int,
    mode: int,
    wire: bytes,
    dst: MachineType,
    entry: Optional[RegistryEntry] = None,
) -> Dict[str, Any]:
    """Recover field values from a wire body on the destination.

    In image mode the bytes are reinterpreted under the *destination's*
    byte order — which corrupts multi-byte values if the mode decision
    was wrong, exactly as on the paper's hardware.  A receiver that
    already resolved the registry entry may pass it to skip the second
    lookup.
    """
    if entry is None:
        entry = registry.get(type_id)
    if mode == IMAGE:
        registry.counters.incr("image_receives")
        return entry.sdef.image_decode(wire, dst.struct_prefix)
    if mode == PACKED:
        registry.counters.incr("unpack_calls")
        return entry.unpack(wire)
    raise ConversionError(f"unknown transfer mode {mode}")
