"""Shift mode: endian-independent header encoding (paper Sec. 5.2).

"Message header information is transferred by byte shifting each header
integer sequentially into the final message, using standard high level
shift and mask routines. ... Byte ordering problems are hidden by the
high level shift/mask routines, and by transmitting the values as a
byte stream."

The wire contract is *most-significant byte first, four bytes per
word*, defined by the shift/mask arithmetic itself and therefore
identical on every architecture.  The original implementation here ran
the shifts one byte at a time in Python; that loop dominated the
header hot path, so the codecs now batch all words through
:mod:`struct` with an explicit big-endian format — ``">NI"`` is the
same function the shift loop computed, expressed once per header
instead of once per byte.  The contract is unchanged and locked by the
golden fixtures in ``tests/fixtures/wire/`` (frames captured from the
per-byte implementation) plus the reference shift loop in
``benchmarks/microbench.py``.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Sequence, Tuple, Union

from repro.errors import ConversionError

U32_BYTES = 4

# Compiled big-endian formats, one per word count.  Headers are twelve
# words, addresses two: the cache stays tiny and saves the per-call
# format parse.
_CODECS: Dict[int, struct.Struct] = {}


def _codec(count: int) -> struct.Struct:
    codec = _CODECS.get(count)
    if codec is None:
        codec = _CODECS[count] = struct.Struct(">%dI" % count)
    return codec


def shift_encode_u32s(values: Sequence[int]) -> bytes:
    """Encode a sequence of 32-bit unsigned integers, four bytes each,
    most-significant byte first."""
    try:
        return _codec(len(values)).pack(*values)
    except struct.error:
        for value in values:
            if not 0 <= value <= 0xFFFFFFFF:
                raise ConversionError(
                    f"shift mode value {value} out of u32 range"
                )
        raise ConversionError(f"shift mode encode failed for {values!r}")


def shift_decode_u32s(data: Union[bytes, memoryview], count: int,
                      offset: int = 0) -> List[int]:
    """Decode ``count`` 32-bit integers from ``data`` starting at
    ``offset``.  Accepts a memoryview so callers can decode in place."""
    need = offset + count * U32_BYTES
    if len(data) < need:
        raise ConversionError(
            f"shift mode: need {need} bytes, have {len(data)}"
        )
    return list(_codec(count).unpack_from(data, offset))


def shift_encode_u32s_many(groups: Sequence[Sequence[int]]) -> bytes:
    """Encode several equal-length integer groups back to back with one
    struct call — the vectorized form used when a frame train shares a
    header layout (PROTOCOL.md §13).  Equivalent to concatenating
    :func:`shift_encode_u32s` over each group."""
    if not groups:
        return b""
    width = len(groups[0])
    flat: List[int] = []
    for group in groups:
        if len(group) != width:
            raise ConversionError(
                "shift mode: ragged groups in vectorized encode"
            )
        flat.extend(group)
    return shift_encode_u32s(flat)


def shift_decode_u32s_many(data: Union[bytes, memoryview], count: int,
                           width: int, offset: int = 0) -> List[List[int]]:
    """Decode ``count`` groups of ``width`` 32-bit integers each from
    ``data`` in a single struct call, returning one list per group.
    The vectorized inverse of :func:`shift_encode_u32s_many`."""
    if count == 0:
        return []
    flat = shift_decode_u32s(data, count * width, offset)
    return [flat[i:i + width] for i in range(0, count * width, width)]


# Credit words (PROTOCOL.md §12).  Flow control piggybacks a cumulative
# credit counter in the header aux word.  Aux zero has always meant "no
# auxiliary information" on DATA frames, so the encoding must never
# produce zero: bit 31 is a validity marker and the low 31 bits carry
# the counter.  A frame from a flow-disabled sender keeps aux == 0 and
# decodes as None — the ablation stays byte-identical off the wire.
CREDIT_VALID = 0x80000000
CREDIT_MASK = 0x7FFFFFFF


def shift_encode_credit(count: int) -> int:
    """Encode a cumulative credit counter into a nonzero aux word."""
    return CREDIT_VALID | (count & CREDIT_MASK)


def shift_decode_credit(word: int) -> Union[int, None]:
    """Decode an aux word into a credit counter, or None when the word
    carries no credit information (flow control off, or a pre-flow
    sender)."""
    if word & CREDIT_VALID:
        return word & CREDIT_MASK
    return None


def split_u64(value: int) -> Tuple[int, int]:
    """Split a 64-bit value into (high, low) 32-bit halves for headers
    built from 4-byte integers."""
    if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
        raise ConversionError(f"{value} out of u64 range")
    return (value >> 32) & 0xFFFFFFFF, value & 0xFFFFFFFF


def join_u64(high: int, low: int) -> int:
    """Reassemble a 64-bit value from its header halves."""
    return ((high & 0xFFFFFFFF) << 32) | (low & 0xFFFFFFFF)
