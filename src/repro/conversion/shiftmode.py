"""Shift mode: endian-independent header encoding (paper Sec. 5.2).

"Message header information is transferred by byte shifting each header
integer sequentially into the final message, using standard high level
shift and mask routines. ... Byte ordering problems are hidden by the
high level shift/mask routines, and by transmitting the values as a
byte stream."

These functions intentionally avoid :mod:`struct`: the point of shift
mode is that explicit shifts and masks define the wire order themselves,
so the code is identical on every architecture.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ConversionError

U32_BYTES = 4


def shift_encode_u32s(values: Sequence[int]) -> bytes:
    """Encode a sequence of 32-bit unsigned integers, four bytes each,
    most-significant byte first — by shifting, not by struct."""
    out = bytearray()
    for value in values:
        if not 0 <= value <= 0xFFFFFFFF:
            raise ConversionError(f"shift mode value {value} out of u32 range")
        out.append((value >> 24) & 0xFF)
        out.append((value >> 16) & 0xFF)
        out.append((value >> 8) & 0xFF)
        out.append(value & 0xFF)
    return bytes(out)


def shift_decode_u32s(data: bytes, count: int, offset: int = 0) -> List[int]:
    """Decode ``count`` 32-bit integers from ``data`` starting at
    ``offset``, by shifting the bytes back together."""
    need = offset + count * U32_BYTES
    if len(data) < need:
        raise ConversionError(
            f"shift mode: need {need} bytes, have {len(data)}"
        )
    values = []
    pos = offset
    for _ in range(count):
        value = (
            (data[pos] << 24)
            | (data[pos + 1] << 16)
            | (data[pos + 2] << 8)
            | data[pos + 3]
        )
        values.append(value)
        pos += U32_BYTES
    return values


def split_u64(value: int) -> Tuple[int, int]:
    """Split a 64-bit value into (high, low) 32-bit halves for headers
    built from 4-byte integers."""
    if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
        raise ConversionError(f"{value} out of u64 range")
    return (value >> 32) & 0xFFFFFFFF, value & 0xFFFFFFFF


def join_u64(high: int, low: int) -> int:
    """Reassemble a 64-bit value from its header halves."""
    return ((high & 0xFFFFFFFF) << 32) | (low & 0xFFFFFFFF)
