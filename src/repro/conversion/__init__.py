"""Inter-machine data conversion (paper Sec. 5).

Three representations move application and control data between
machines of different architectures:

* **image mode** — a plain byte copy of the in-memory structure, legal
  only between image-compatible machine types.  Encoded with the
  *source* machine's byte order and decoded with the *destination's*;
  using it across incompatible machines visibly corrupts data, exactly
  as it would have on the paper's VAX↔Sun pairs.
* **packed mode** — an application-determined character (ASCII)
  transport format produced by per-message-type pack/unpack routines.
  Those routines are built automatically by :mod:`codegen` from the
  message structure definitions, reproducing the URSA project's
  code-generating mechanism ([22] in the paper).
* **shift mode** — endian-independent byte-shifting of 4-byte-integer
  message headers (:mod:`shiftmode`), cheap enough to use for every
  transfer regardless of destination.

The decision between image and packed is *not* made here: the lowest
NTCS layer that can see the destination machine type makes it, via
:func:`choose_mode`, so that no needless conversion ever happens.
"""

from repro.conversion.structdef import Field, StructDef
from repro.conversion.modes import (
    IMAGE,
    PACKED,
    choose_mode,
    decode_body,
    encode_body,
    encode_values,
)
from repro.conversion.registry import ConversionRegistry
from repro.conversion.codegen import generate_pack_source, generate_unpack_source, build_codecs
from repro.conversion.shiftmode import (
    shift_encode_u32s,
    shift_decode_u32s,
    split_u64,
    join_u64,
)

__all__ = [
    "Field",
    "StructDef",
    "IMAGE",
    "PACKED",
    "choose_mode",
    "encode_body",
    "encode_values",
    "decode_body",
    "ConversionRegistry",
    "generate_pack_source",
    "generate_unpack_source",
    "build_codecs",
    "shift_encode_u32s",
    "shift_decode_u32s",
    "split_u64",
    "join_u64",
]
