"""Exception hierarchy for the NTCS reproduction.

The paper's C implementation signalled conditions with tailored status
codes returned by the ALI-Layer ("tailors the error returns", Sec. 2.4).
In Python the idiomatic equivalent is an exception hierarchy rooted at
:class:`NtcsError`, with one subclass per condition class the paper
names.  Layers raise the most specific subclass; the ALI-Layer re-raises
NTCS-internal conditions as application-facing ones.
"""

from __future__ import annotations


class NtcsError(Exception):
    """Base class for every error raised by the NTCS and its substrates."""


# ---------------------------------------------------------------------------
# Simulation-kernel level
# ---------------------------------------------------------------------------

class SimulationError(NtcsError):
    """Misuse of, or an invariant violation inside, the simulation kernel."""


class DeadlockError(SimulationError):
    """A blocking call pumped the event queue dry without its predicate
    becoming true — no future event can ever satisfy it."""


class VirtualTimeout(SimulationError):
    """A blocking call's virtual-time deadline passed before its predicate
    became true."""


# ---------------------------------------------------------------------------
# IPCS / network level
# ---------------------------------------------------------------------------

class IpcsError(NtcsError):
    """Base class for native-IPCS failures (the layer below the ND-Layer)."""


class ConnectionRefused(IpcsError):
    """No endpoint is listening at the requested physical address."""


class ChannelClosed(IpcsError):
    """The physical channel was closed by the peer or by a failure."""


class AddressInUse(IpcsError):
    """The requested port / mailbox pathname is already taken."""


class NetworkUnreachable(IpcsError):
    """The destination physical address names a network this machine is
    not attached to (the ND-Layer cannot internet; Sec. 2.2)."""


# ---------------------------------------------------------------------------
# NTCS internal layers
# ---------------------------------------------------------------------------

class AddressFault(NtcsError):
    """A previously resolved address is invalid: the module moved, died,
    or the communication link failed (Sec. 3.5).  Raised by the ND-Layer,
    handled by the LCM-Layer's address-fault handler."""

    def __init__(self, uadd, reason=""):
        super().__init__(f"address fault on {uadd}: {reason or 'unreachable'}")
        self.uadd = uadd
        self.reason = reason


class NoSuchName(NtcsError):
    """The naming service has no entry for the requested logical name."""


class NoSuchAddress(NtcsError):
    """The naming service has no entry for the requested UAdd."""


class NoForwardingAddress(NtcsError):
    """The address-fault handler asked the naming service for a forwarding
    UAdd and none was available: no replacement module was located
    (Sec. 3.5, first case)."""


class ModuleStillAlive(NtcsError):
    """The naming service reports the faulted module is still registered
    and alive; the fault was a broken link, not a relocation (Sec. 3.5,
    second case)."""


class NameServerUnreachable(NtcsError):
    """The Name Server itself cannot be reached, even through its
    well-known physical address."""


class RecursionLimitExceeded(NtcsError):
    """The Nucleus re-entered itself more deeply than the configured
    bound — the reproduction's stand-in for the C stack overflow the
    paper observed in the Sec. 6.3 runaway-recursion scenario."""


class RouteNotFound(NtcsError):
    """The IP-Layer could not assemble a gateway chain from the local
    network to the destination network."""


class ProtocolError(NtcsError):
    """A malformed or unexpected NTCS internal message was received."""


# ---------------------------------------------------------------------------
# Conversion layer
# ---------------------------------------------------------------------------

class ConversionError(NtcsError):
    """Packing or unpacking a message failed."""


class UnknownMessageType(ConversionError):
    """A message arrived whose type id is not in the local registry.

    Every lookup path normalizes to this typed error — a raw
    ``KeyError`` must never escape the conversion layer — and carries
    the offending ``type_id`` (or ``name``) so handlers can log or
    NAK precisely.
    """

    def __init__(self, message: str, type_id=None, name=None):
        super().__init__(message)
        self.type_id = type_id
        self.name = name


class DuplicateTypeId(ConversionError):
    """A structure was registered under a type id or type name that the
    registry already holds.  Reserved-range discipline (Sec. 5.2) is
    also enforced at rest by ``ntcslint``'s protocol rules."""

    def __init__(self, message: str, type_id=None, name=None):
        super().__init__(message)
        self.type_id = type_id
        self.name = name


# ---------------------------------------------------------------------------
# Application-facing (ALI-Layer) errors
# ---------------------------------------------------------------------------

class AliError(NtcsError):
    """Base class for errors the ALI-Layer reports to the application."""


class BadParameter(AliError):
    """The application passed an invalid argument to an ALI primitive
    (the ALI-Layer "performs parameter checking", Sec. 2.4)."""


class DestinationUnavailable(AliError):
    """Communication could not reach the destination and no relocation
    was possible; the application-facing form of
    :class:`NoForwardingAddress` / :class:`AddressFault`."""


class ReplyTimeout(AliError):
    """A synchronous call did not receive its reply within the deadline."""


class SendWouldBlock(AliError):
    """A non-blocking send found the destination IVC out of flow-control
    credit (PROTOCOL.md §12): the receiver has not consumed enough of
    what was already sent.  The message was *not* transmitted.  Retry
    after backing off, or call with ``block=True`` to park on the run
    queue until credit returns."""


class NotRegistered(AliError):
    """A primitive requiring registration was invoked before the module
    registered itself with the naming service."""
