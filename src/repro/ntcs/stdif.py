"""STD-IF: the ND-Layer's uniform virtual-circuit interface (Sec. 2.2).

"A simple STD-IF was desired, and since direct compatibility with
external standards was not required, a custom interface was specified."

The interface has exactly three capabilities, each message-oriented:

* :meth:`StdIfDriver.listen` — create the local communication resource
  and return its physical-address blob,
* :meth:`StdIfDriver.connect` — open a circuit to a blob (blocking,
  with retry on open),
* :class:`MessageChannel` — send/receive *whole NTCS messages* over the
  circuit, however the underlying IPCS chooses to move bytes.

Concrete drivers live in :mod:`repro.ntcs.drivers`; everything above
them is portable, which is the paper's central architectural claim.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.ipcs.base import Channel


class MessageChannel:
    """A message-boundary-preserving wrapper over one IPCS channel.

    Subclasses adapt the IPCS's delivery semantics: the TCP driver
    frames messages over the byte stream, the MBX driver maps records
    one-to-one.
    """

    def __init__(self, channel: Channel):
        self.channel = channel
        self._message_handler: Optional[Callable[[bytes], None]] = None
        self._train_handler: Optional[Callable[[List[bytes]], None]] = None
        channel.set_receive_handler(self._on_bytes)
        # Batch delivery is an optional channel capability: real-socket
        # adapters and other duck-typed channels only provide the
        # per-chunk path, which stays fully sufficient.
        bind_batch = getattr(channel, "set_batch_receive_handler", None)
        if bind_batch is not None:
            bind_batch(self._on_bytes_many)

    # -- upward-facing API ---------------------------------------------------

    def send_message(self, data: bytes) -> None:
        """Transmit one whole NTCS message (driver-specific framing)."""
        raise NotImplementedError

    def set_message_handler(self, handler: Callable[[bytes], None]) -> None:
        """Install the per-message delivery callback."""
        self._message_handler = handler

    def set_train_handler(
            self, handler: Callable[[List[bytes]], None]) -> None:
        """Install an optional callback receiving a frame train's worth
        of whole messages at once (PROTOCOL.md §13).  Efficiency only:
        the handler must process the messages exactly as the per-message
        handler would, in list order.  Without one, trains fall back to
        per-message upcalls."""
        self._train_handler = handler

    def set_close_handler(self, handler: Callable[[str], None]) -> None:
        """Install the channel-death callback."""
        self.channel.set_close_handler(handler)

    def close(self) -> None:
        """Close the underlying IPCS channel."""
        self.channel.close()

    @property
    def open(self) -> bool:
        return self.channel.open

    # -- downward-facing -------------------------------------------------

    def _on_bytes(self, data: bytes) -> None:
        raise NotImplementedError

    def _on_bytes_many(self, chunks: List[bytes]) -> None:
        """A train's worth of chunks/records from the IPCS.  Drivers
        override this to extract all messages in one pass; the default
        replays the per-chunk path."""
        for chunk in chunks:
            self._on_bytes(chunk)

    def _emit(self, message: bytes) -> None:
        if self._message_handler is not None:
            self._message_handler(message)

    def _emit_train(self, messages: List[bytes]) -> None:
        """Hand a batch of complete messages upward: one call when a
        train handler is installed, per-message upcalls otherwise."""
        if not messages:
            return
        if self._train_handler is not None and len(messages) > 1:
            self._train_handler(messages)
            return
        handler = self._message_handler
        if handler is not None:
            for message in messages:
                handler(message)


class StdIfDriver:
    """Base class for ND-Layer drivers.  One instance per
    (machine, network, IPCS) triple, shared by every ComMod on that
    machine using that network."""

    protocol = "abstract"

    def listen(self, process, on_accept: Callable[[MessageChannel], None],
               binding: Optional[str] = None) -> str:
        """Create the module's communication resource (a TCP port, an
        MBX server mailbox, ...).  ``binding`` pins a specific port or
        pathname (needed for well-known addresses); None auto-assigns.
        Returns the physical-address blob."""
        raise NotImplementedError

    def connect(self, process, blob: str, timeout: float = 5.0) -> MessageChannel:
        """Open a circuit to ``blob``.  Blocking; raises
        ConnectionRefused / NetworkUnreachable on failure."""
        raise NotImplementedError

    @property
    def network_name(self) -> str:
        raise NotImplementedError
