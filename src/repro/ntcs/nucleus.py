"""The Nucleus: the passive core bound with every NTCS module.

"Internally, the NTCS is designed around a single communication
Nucleus, which provides a fundamental set of protocols and access
points supporting all NTCS functions.  The Nucleus is bound with every
NTCS module, just as the ComMod is bound with every application module.
Both ... are completely passive; they do not exist as separate
processes" (Sec. 2.1).

One :class:`Nucleus` composes the three layers (ND, IP, LCM) over one
network driver, and carries the cross-layer state: the module's current
address (a TAdd until registration), the address cache, the well-known
table, recursion accounting (Sec. 6), and the hooks through which the
DRTS services — which are built *on top of* this very Nucleus — are
called back *by* it (time stamps, monitor data, error logging).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, List, Optional, Set

from repro.errors import NameServerUnreachable, NtcsError, RecursionLimitExceeded
from repro.machine.arch import MachineType, machine_type
from repro.machine.process import SimProcess
from repro.ntcs.address import Address, AddressCache, TAddAllocator
from repro.ntcs.drivers import make_driver
from repro.ntcs.wellknown import WellKnownTable
from repro.util.counters import CounterSet
from repro.util.seeds import derive_rng
from repro.util.trace import LayerTracer, NullTracer


@dataclass
class NucleusConfig:
    """Per-module NTCS configuration.

    Attributes:
        monitor_enabled: report send/recv events to the DRTS monitor.
        time_enabled: timestamp with the DRTS precision time corrector
            instead of the raw (drifting) machine clock.
        ns_fault_patch: the Sec. 6.3 fix in the LCM address-fault
            handler.  Turn off only to reproduce the runaway recursion.
        ns_fault_retry_limit: bounded well-known-address retries when
            the patch is active.
        recursion_limit: maximum Nucleus re-entry depth — the
        reproduction's stand-in for the C stack limit.
        open_timeout / call_timeout: virtual-seconds deadlines.
        nsp_cache_enabled: the NSP-layer resolution cache and
            single-flight coalescing (PROTOCOL.md §9).  Off reproduces
            the uncached control plane message-for-message.
        nsp_negative_ttl: virtual seconds a cached negative resolution
            (no such name / address / forwarding) stays valid.
        repair_max_attempts: circuit-repair rounds the LCM send path
            runs after its per-round relocation attempts exhaust
            (PROTOCOL.md §10).  0 disables repair entirely, reproducing
            the pre-repair fault behavior message for message.
        repair_backoff_base / repair_backoff_cap: exponential-backoff
            schedule between repair rounds — round k waits
            ``min(base * 2**k, cap)`` virtual seconds plus seeded
            jitter.
        chaos_seed: base seed for the per-module repair-jitter RNG
            (derived per process and network, so every module draws an
            independent but reproducible stream).
        flow_control_enabled: credit-based IVC flow control and
            end-to-end backpressure (PROTOCOL.md §12).  Off reproduces
            the unbounded pre-flow data plane byte-for-byte: no credit
            kinds on the wire, every DATA aux word zero.
        flow_window: end-to-end IVC window — unconsumed flow-debited
            messages a sender may have outstanding before it stalls.
        flow_low_watermark: receive-queue depth at which a receiver
            owing a grant sends it (hysteresis: the grant is owed once
            depth crossed ``flow_high_watermark``).  Defaults to
            ``flow_window // 4``.
        flow_high_watermark: receive-queue depth above which
            connectionless arrivals are dropped (and counted) instead
            of queued.  Defaults to ``flow_window``.
        flow_probe_timeout: virtual seconds a zero-credit sender waits
            per credit probe before retrying (bounded retries, then
            the send fails as destination-unavailable).
        train_enabled: frame trains (PROTOCOL.md §13) — coalesce
            back-to-back same-destination frames into one scheduled
            delivery event and keep the batch intact down the receive
            stack.  Purely a delivery-path construct: the wire is
            byte-identical either way, and off reproduces the
            pre-train per-frame event schedule event-for-event.
        train_max: maximum frames one train may carry before the next
            frame opens a fresh train (the size flush rule).
        trace: record layer entry/exit (Sec. 6.2 debugging support).
    """

    monitor_enabled: bool = False
    time_enabled: bool = False
    ns_fault_patch: bool = True
    ns_fault_retry_limit: int = 2
    recursion_limit: int = 64
    open_timeout: float = 5.0
    call_timeout: float = 10.0
    call_retries: int = 2
    nsp_cache_enabled: bool = True
    nsp_negative_ttl: float = 2.0
    repair_max_attempts: int = 4
    repair_backoff_base: float = 0.05
    repair_backoff_cap: float = 2.0
    chaos_seed: int = 0
    flow_control_enabled: bool = True
    flow_window: int = 256
    flow_low_watermark: Optional[int] = None
    flow_high_watermark: Optional[int] = None
    flow_probe_timeout: float = 1.0
    train_enabled: bool = True
    train_max: int = 64
    trace: bool = False

    def effective_flow_low_watermark(self) -> int:
        """The queue depth below which an owed credit grant is sent
        (PROTOCOL.md §12); defaults to a quarter of the window."""
        if self.flow_low_watermark is not None:
            return self.flow_low_watermark
        return max(1, self.flow_window // 4)

    def effective_flow_high_watermark(self) -> int:
        """The queue depth at which connectionless arrivals are dropped
        rather than queued; defaults to the full window."""
        if self.flow_high_watermark is not None:
            return self.flow_high_watermark
        return self.flow_window


class Nucleus:
    """The per-module (per-network) NTCS core."""

    def __init__(
        self,
        process: SimProcess,
        network_name: str,
        registry,
        wellknown: WellKnownTable,
        config: Optional[NucleusConfig] = None,
        tracer=None,
    ):
        self.process = process
        self.machine = process.machine
        self.scheduler = process.scheduler
        self.registry = registry
        self.wellknown = wellknown
        self.config = config or NucleusConfig()
        self.mtype: MachineType = self.machine.mtype

        self.tadds = TAddAllocator()
        # Repair-jitter stream (PROTOCOL.md §10): derived — not hashed —
        # from the chaos seed and this module's identity, so two runs
        # with the same seed draw identical backoff jitter while
        # distinct modules never share a stream.
        self.repair_rng = derive_rng(
            self.config.chaos_seed, process.name, network_name,
        )
        # "Each module assigns itself one initially" (Sec. 3.4).
        self.self_addr: Address = self.tadds.allocate()
        self._past_addrs: Set[Address] = set()
        self.addr_cache = AddressCache()
        self.counters = CounterSet()
        if tracer is not None:
            self.tracer = tracer
        elif self.config.trace:
            self.tracer = LayerTracer(clock=lambda: self.scheduler.now)
        else:
            self.tracer = NullTracer()

        # Recursion accounting (Sec. 6).
        self._depth = 0
        self.max_depth_seen = 0
        self._suppress = 0

        # Frame-train scope (PROTOCOL.md §13): while a train walk is
        # active, per-IVC flow-grant checks are deferred and discharged
        # once at the walk's end — or earlier, at the entry of any
        # blocking pump, so the deferral can never hold back a grant
        # something mid-walk is waiting on.
        self.train_depth = 0
        self.train_serial = 0
        self._train_deferred: List[Callable[[], None]] = []
        self._train_deferred_keys: Set[int] = set()

        # Hooks filled in by higher components.
        self.nsp = None                   # NSP-Layer (naming service stub)
        self.gateway_handler = None       # set on gateway stacks only
        self.time_client = None           # DRTS precision time corrector
        self.monitor_client = None        # DRTS network monitor client
        self.error_log: List[str] = []
        self.error_client: Optional[Callable[[str], None]] = None
        self.tadd_purge_hooks: List[Callable[[Address, Address], None]] = []
        # Addresses the LCM's Sec. 6.3 patch must recognize as "the
        # naming service" (replicated NSP-Layers add their servers).
        self.ns_addresses: Set[Address] = {wellknown.ns_uadd}

        # The layers, bottom-up.
        ipcs_list = self.machine.ipcs_on(network_name)
        if not ipcs_list:
            raise NtcsError(
                f"machine {self.machine.name!r} has no IPCS on network "
                f"{network_name!r}"
            )
        self.driver = make_driver(ipcs_list[0])
        from repro.ntcs.ndlayer import NdLayer
        from repro.ntcs.iplayer import IpLayer
        from repro.ntcs.lcm import LcmLayer

        self.nd = NdLayer(self)
        self.ip = IpLayer(self)
        self.lcm = LcmLayer(self)
        self.tadd_purge_hooks.append(self.lcm.rekey_route)

    # -- identity ------------------------------------------------------------

    def set_identity(self, uadd: Address) -> None:
        """Adopt the real UAdd assigned by the naming service; the
        initial TAdd is remembered so in-flight messages still match."""
        self._past_addrs.add(self.self_addr)
        self.self_addr = uadd

    def is_self(self, addr: Address) -> bool:
        """True when an address is (or was) this module's identity."""
        return addr == self.self_addr or addr in self._past_addrs

    def on_tadd_purged(self, old: Address, new: Address) -> None:
        """Propagate a TAdd-to-UAdd replacement to all table holders."""
        for hook in self.tadd_purge_hooks:
            hook(old, new)

    # -- recursion accounting (Sec. 6) -------------------------------------------

    @property
    def depth(self) -> int:
        return self._depth

    @contextmanager
    def enter(self, layer: str, operation: str, caller: str = "",
              reason: str = ""):
        """Track one layer entry.  Exceeding the recursion limit raises
        — the reproduction of the paper's observed stack overflow."""
        self._depth += 1
        self.max_depth_seen = max(self.max_depth_seen, self._depth)
        self.tracer.record(
            self.process.name, layer, operation, "enter",
            caller=caller, reason=reason, depth=self._depth,
        )
        try:
            if self._depth > self.config.recursion_limit:
                raise RecursionLimitExceeded(
                    f"Nucleus re-entered {self._depth} deep in "
                    f"{self.process.name}:{layer}.{operation} "
                    f"(limit {self.config.recursion_limit}) — the Sec. 6.3 "
                    "stack overflow"
                )
            yield
        finally:
            self.tracer.record(
                self.process.name, layer, operation, "exit",
                caller=caller, reason=reason, depth=self._depth,
            )
            self._depth -= 1

    # -- frame-train scope (PROTOCOL.md §13) ---------------------------------

    def train_begin(self) -> None:
        """Open a train walk: deferrable per-IVC checks registered via
        :meth:`train_defer` accumulate until :meth:`train_end`."""
        self.train_depth += 1
        if self.train_depth == 1:
            self.train_serial += 1

    def train_end(self) -> None:
        """Close a train walk; the outermost close discharges every
        deferred check (the single owed-grant check per train)."""
        self.train_depth -= 1
        if self.train_depth == 0:
            self.train_flush()

    def train_defer(self, key, check: Callable[[], None]) -> None:
        """Defer ``check`` to the end of the active train walk, at most
        once per ``key`` (identity) per walk."""
        ident = id(key)
        if ident in self._train_deferred_keys:
            return
        if not self._train_deferred:
            # Safety net: if anything blocks mid-walk, the scheduler
            # discharges these at pump entry before running events.
            self.scheduler.defer_flush(self.train_flush)
        self._train_deferred_keys.add(ident)
        self._train_deferred.append(check)

    def train_flush(self) -> None:
        """Run the deferred checks now (idempotent)."""
        if not self._train_deferred:
            return
        checks = self._train_deferred
        self._train_deferred = []
        self._train_deferred_keys.clear()
        for check in checks:
            check()

    def trace(self, layer: str, operation: str, caller: str = "",
              reason: str = "") -> None:
        """Record a point event without changing the depth."""
        self.tracer.record(
            self.process.name, layer, operation, "enter",
            caller=caller, reason=reason, depth=self._depth,
        )

    # -- internal (control-plane) bodies ---------------------------------------

    def pack_internal(self, type_name: str, values: dict):
        """Pack an NTCS control body — always packed mode (Sec. 5.2).
        Returns (type_id, body_bytes)."""
        entry = self.registry.get_by_name(type_name)
        return entry.sdef.type_id, entry.pack(values)

    def unpack_internal(self, type_id: int, body: bytes) -> dict:
        """Unpack an NTCS control body by type id."""
        return self.registry.get(type_id).unpack(body)

    # -- naming-service access -----------------------------------------------

    def require_nsp(self):
        """The attached NSP-Layer; raises if the module has none."""
        if self.nsp is None:
            raise NameServerUnreachable(
                f"module {self.process.name!r} has no NSP-Layer attached"
            )
        return self.nsp

    # -- machine-type directory ------------------------------------------------

    _UNKNOWN_MTYPE = MachineType(name="unknown", byte_order="big",
                                 charset="unknown")

    # name -> MachineType memo, shared across all nuclei: the directory
    # of known machine types is a static table, and the send hot path
    # resolves the peer's name on every message.
    _MTYPE_CACHE: dict = {}

    def mtype_by_name(self, name: str) -> MachineType:
        """Resolve a peer's machine-type name; an unknown or missing
        name yields a type image-compatible with nothing, forcing
        packed mode (the safe default)."""
        if not name:
            return self._UNKNOWN_MTYPE
        mtype = self._MTYPE_CACHE.get(name)
        if mtype is None:
            try:
                mtype = machine_type(name)
            except KeyError:
                mtype = self._UNKNOWN_MTYPE
            self._MTYPE_CACHE[name] = mtype
        return mtype

    # -- DRTS hooks (recursion sources, Sec. 6.1) ----------------------------------

    @contextmanager
    def suppress_services(self):
        """Disable time correction and monitoring for the duration —
        used by the DRTS clients' own sends "to avoid the obvious
        infinite recursion" (Sec. 6.1)."""
        self._suppress += 1
        try:
            yield
        finally:
            self._suppress -= 1

    @property
    def services_suppressed(self) -> bool:
        return self._suppress > 0

    def timestamp(self) -> float:
        """A timestamp for monitor data: corrected time when the time
        service is enabled (possibly a recursive NTCS exchange), the raw
        drifting machine clock otherwise."""
        if (
            self.config.time_enabled
            and self.time_client is not None
            and not self.services_suppressed
        ):
            return self.time_client.corrected_now()
        return self.machine.clock.now()

    @property
    def monitoring_active(self) -> bool:
        return (
            self.config.monitor_enabled
            and self.monitor_client is not None
            and not self.services_suppressed
        )

    def emit_monitor(self, event: dict) -> None:
        """Report one event to the DRTS monitor, if active."""
        if self.monitoring_active:
            self.monitor_client.report(event)

    def log_error(self, text: str) -> None:
        """Record an error locally and ship it to the error-log service."""
        self.error_log.append(text)
        self.counters.incr("errors_logged")
        if self.error_client is not None:
            self.error_client(text)

    def __repr__(self) -> str:
        return (
            f"Nucleus({self.process.name!r} as {self.self_addr} on "
            f"{self.driver.network_name}/{self.driver.protocol})"
        )
