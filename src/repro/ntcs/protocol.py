"""NTCS-internal control message bodies.

Control messages carry shift-mode headers (:mod:`repro.ntcs.message`)
and, when they need data fields at all, packed-mode bodies: "Any
necessary data field in an NTCS control message is built in packed
mode.  Since these data fields are relatively rare, this conversion
overhead is not bothersome" (Sec. 5.2).

Type ids 1–9 are reserved for Nucleus control bodies; 10–39 for the
naming service protocol; 40–63 for DRTS services; applications start at
:attr:`ConversionRegistry.FIRST_APPLICATION_TYPE_ID`.
"""

from __future__ import annotations

from repro.conversion import ConversionRegistry, Field, StructDef

# Nucleus control-plane type ids.
T_LVC_HELLO = 1
T_LVC_HELLO_ACK = 2
T_IVC_OPEN = 3
T_IVC_OPEN_ACK = 4
T_IVC_OPEN_NAK = 5
T_IVC_CLOSE = 6
T_CREDIT_GRANT = 7
T_CREDIT_PROBE = 8

_STRUCTS = [
    # Exchanged during the channel open protocol (Sec. 3.3): each end
    # learns the peer's machine type and listening blob and caches them.
    StructDef("lvc_hello", T_LVC_HELLO, [
        Field("mtype", "char[16]"),
        Field("listen_blob", "char[96]"),
        Field("network", "char[24]"),
    ]),
    StructDef("lvc_hello_ack", T_LVC_HELLO_ACK, [
        Field("mtype", "char[16]"),
        Field("listen_blob", "char[96]"),
    ]),
    # Internet circuit establishment (Sec. 4.2).  Hop count rides in the
    # header aux word; the body carries what gateways route by.
    StructDef("ivc_open", T_IVC_OPEN, [
        Field("dst_network", "char[24]"),
        Field("src_mtype", "char[16]"),
        Field("src_listen_blob", "char[96]"),
    ]),
    StructDef("ivc_open_ack", T_IVC_OPEN_ACK, [
        Field("dst_mtype", "char[16]"),
    ]),
    StructDef("ivc_open_nak", T_IVC_OPEN_NAK, [
        Field("reason", "char[96]"),
    ]),
    StructDef("ivc_close", T_IVC_CLOSE, [
        Field("reason", "char[96]"),
    ]),
    # Flow control (PROTOCOL.md §12).  Credits normally piggyback in the
    # header aux word of DATA frames; these standalone bodies exist for
    # the demand-driven path — a stalled sender probes, the receiver
    # answers with an explicit grant.  Counters are cumulative
    # (sent-to-date / consumed-to-date), so redelivery is idempotent.
    StructDef("credit_grant", T_CREDIT_GRANT, [
        Field("consumed", "u32"),
        Field("window", "u32"),
    ]),
    StructDef("credit_probe", T_CREDIT_PROBE, [
        Field("sent", "u32"),
    ]),
]


def register_nucleus_types(registry: ConversionRegistry) -> None:
    """Install the Nucleus control structures into a registry."""
    for sdef in _STRUCTS:
        registry.register(sdef)
