"""ND-Layer driver for the Apollo-MBX-like IPCS.

MBX already preserves record boundaries, so one NTCS message maps to
exactly one mailbox record — no framing needed.  What this driver must
handle instead is the pathname addressing of its IPCS.
"""

from __future__ import annotations

from typing import Callable

from repro.ipcs.mbx import SimMbxIpcs
from repro.ntcs.stdif import MessageChannel, StdIfDriver


class RecordChannel(MessageChannel):
    """One record per message: a trivial adaptation."""

    def send_message(self, data: bytes) -> None:
        """One NTCS message = one mailbox record."""
        self.channel.send(data)

    def _on_bytes(self, data: bytes) -> None:
        self._emit(data)

    def _on_bytes_many(self, chunks) -> None:
        # A frame train (PROTOCOL.md §13): records map to messages 1:1.
        self._emit_train(list(chunks))


class SimMbxDriver(StdIfDriver):
    """STD-IF over :class:`~repro.ipcs.mbx.SimMbxIpcs`."""

    protocol = "mbx"

    def __init__(self, ipcs: SimMbxIpcs):
        self.ipcs = ipcs

    @property
    def network_name(self) -> str:
        return self.ipcs.network.name

    def listen(self, process, on_accept: Callable[[MessageChannel], None],
               binding: str = None) -> str:
        """Create the module's server mailbox; returns its blob."""
        listener = self.ipcs.listen(process, binding)
        listener.on_accept = lambda channel: on_accept(RecordChannel(channel))
        return listener.address_blob()

    def connect(self, process, blob: str, timeout: float = 5.0) -> MessageChannel:
        """Open a record channel to a mailbox blob."""
        return RecordChannel(self.ipcs.connect(process, blob, timeout=timeout))
