"""ND-Layer driver for the TCP-like IPCS.

TCP gives a byte stream, so this driver supplies the message framing:
each NTCS message is prefixed with its length as one shift-mode 32-bit
integer (endian-independent, per Sec. 5.2), and the receive side
reassembles messages from arbitrarily coalesced or fragmented chunks.
"""

from __future__ import annotations

from typing import Callable

from repro.conversion.shiftmode import shift_decode_u32s, shift_encode_u32s
from repro.errors import ProtocolError
from repro.ipcs.tcp import SimTcpIpcs
from repro.ntcs.stdif import MessageChannel, StdIfDriver

_LEN_BYTES = 4
_MAX_MESSAGE = 16 * 1024 * 1024


class FramedChannel(MessageChannel):
    """Length-prefix framing over a byte-stream channel."""

    def __init__(self, channel):
        self._buffer = bytearray()
        super().__init__(channel)

    def send_message(self, data: bytes) -> None:
        """Frame one NTCS message with a shift-mode length prefix."""
        self.channel.send(shift_encode_u32s([len(data)]) + data)

    def _on_bytes(self, data: bytes) -> None:
        self._buffer.extend(data)
        self._emit_train(self._extract_all())

    def _on_bytes_many(self, chunks) -> None:
        # A frame train (PROTOCOL.md §13): extend the buffer with every
        # chunk first, then extract all complete messages in one pass
        # and hand them up as one train.
        buffer = self._buffer
        for chunk in chunks:
            buffer.extend(chunk)
        self._emit_train(self._extract_all())

    def _extract_all(self) -> list:
        """Pop every complete length-prefixed message off the buffer."""
        messages = []
        buffer = self._buffer
        while True:
            if len(buffer) < _LEN_BYTES:
                return messages
            (length,) = shift_decode_u32s(buffer, 1)
            if length > _MAX_MESSAGE:
                raise ProtocolError(f"insane frame length {length}")
            if len(buffer) < _LEN_BYTES + length:
                return messages
            messages.append(bytes(buffer[_LEN_BYTES:_LEN_BYTES + length]))
            del buffer[:_LEN_BYTES + length]


class SimTcpDriver(StdIfDriver):
    """STD-IF over :class:`~repro.ipcs.tcp.SimTcpIpcs`."""

    protocol = "tcp"

    def __init__(self, ipcs: SimTcpIpcs):
        self.ipcs = ipcs

    @property
    def network_name(self) -> str:
        return self.ipcs.network.name

    def listen(self, process, on_accept: Callable[[MessageChannel], None],
               binding: str = None) -> str:
        """Listen on a TCP port; returns the blob."""
        listener = self.ipcs.listen(process, binding)
        listener.on_accept = lambda channel: on_accept(FramedChannel(channel))
        return listener.address_blob()

    def connect(self, process, blob: str, timeout: float = 5.0) -> MessageChannel:
        """Open a framed channel to a tcp blob."""
        return FramedChannel(self.ipcs.connect(process, blob, timeout=timeout))
