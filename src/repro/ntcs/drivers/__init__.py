"""ND-Layer drivers: the only network-dependent code in the NTCS.

"All machine and network communication dependencies are localized here,
providing a uniform virtual circuit interface (STD-IF) for the
remainder of the NTCS" (Sec. 2.2).  Everything above these drivers is
portable across IPCSs — demonstrated by experiment E10, which runs the
identical upper layers over all drivers, including real OS sockets.

Out-of-tree substrates plug in through :func:`register_driver` rather
than being imported from here: the ND-Layer sits below them, so the
dependency must point upward from the substrate into this registry
(``repro.realnet`` registers its ``rtcp`` driver on import; an ``rtcp``
IPCS can only exist once that module is loaded).
"""

from typing import Callable, Dict

from repro.ntcs.drivers.sim_tcp import SimTcpDriver
from repro.ntcs.drivers.sim_mbx import SimMbxDriver

_DRIVER_FACTORIES: Dict[str, Callable] = {
    "tcp": SimTcpDriver,
    "mbx": SimMbxDriver,
}


def register_driver(protocol: str, factory: Callable) -> None:
    """Register a STD-IF driver factory for a native IPCS protocol."""
    _DRIVER_FACTORIES[protocol] = factory


def make_driver(ipcs):
    """Build the matching STD-IF driver for a native IPCS instance."""
    try:
        factory = _DRIVER_FACTORIES[ipcs.protocol]
    except KeyError:
        raise ValueError(
            f"no ND-Layer driver for IPCS protocol {ipcs.protocol!r}"
        ) from None
    return factory(ipcs)


__all__ = ["SimTcpDriver", "SimMbxDriver", "make_driver", "register_driver"]
