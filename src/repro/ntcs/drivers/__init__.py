"""ND-Layer drivers: the only network-dependent code in the NTCS.

"All machine and network communication dependencies are localized here,
providing a uniform virtual circuit interface (STD-IF) for the
remainder of the NTCS" (Sec. 2.2).  Everything above these drivers is
portable across IPCSs — demonstrated by experiment E10, which runs the
identical upper layers over all drivers, including real OS sockets.
"""

from repro.ntcs.drivers.sim_tcp import SimTcpDriver
from repro.ntcs.drivers.sim_mbx import SimMbxDriver


def make_driver(ipcs):
    """Build the matching STD-IF driver for a native IPCS instance."""
    if ipcs.protocol == "tcp":
        return SimTcpDriver(ipcs)
    if ipcs.protocol == "mbx":
        return SimMbxDriver(ipcs)
    if ipcs.protocol == "rtcp":
        # Imported lazily: the real-socket substrate is optional.
        from repro.realnet.driver import LoopbackTcpDriver
        return LoopbackTcpDriver(ipcs)
    raise ValueError(f"no ND-Layer driver for IPCS protocol {ipcs.protocol!r}")


__all__ = ["SimTcpDriver", "SimMbxDriver", "make_driver"]
