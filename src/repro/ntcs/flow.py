"""Credit accounting for IVC flow control (PROTOCOL.md §12).

One :class:`FlowState` lives on each end of an IVC and holds both
directions of the credit ledger in pure, side-effect-free arithmetic —
the IP-Layer decides *when* to probe, grant, or stall; this module
decides only *how much*.

The scheme is cumulative, in the DECnet-NSP style: the sender counts
every flow-debited message it has ever transmitted on the circuit
(``tx_sent``); the receiver counts every one it has ever disposed of
(``rx_consumed`` — handed to a handler, popped by ``receive``,
suppressed as a duplicate, or dropped under overload).  The sender's
available credit is::

    credit = window - (tx_sent - tx_consumed_seen)

where ``tx_consumed_seen`` is the receiver's consumed counter as last
advertised (piggybacked in DATA aux words or carried by an explicit
credit grant).  Cumulative counters make every advertisement idempotent
— a retransmitted or reordered grant can only move ``tx_consumed_seen``
forward — and make loss self-healing: a receiver that learns the
sender's cumulative ``sent`` counter (from a credit probe) can tell how
many frames died in flight (``sent`` minus everything that arrived) and
fold them into its advertisement so their credit is never stranded.

Credit state never survives a circuit: a repaired/reopened IVC starts a
fresh :class:`FlowState` on both sides (see ``IpLayer.resync_credit``),
which is the whole resynchronization story — no merge, no carry-over.
"""

from __future__ import annotations

__all__ = ["FlowState"]


class FlowState:
    """Both directions of one IVC endpoint's credit ledger."""

    __slots__ = (
        "window",
        "tx_sent",
        "tx_consumed_seen",
        "rx_arrivals",
        "rx_consumed",
        "rx_queued",
        "peer_sent",
        "grant_owed",
        "stalls",
    )

    def __init__(self, window: int):
        if window < 1:
            raise ValueError(f"flow window must be >= 1, got {window}")
        self.window = window
        self.reset()

    def reset(self) -> None:
        """Return to the just-opened state (both ledgers zero)."""
        self.tx_sent = 0
        self.tx_consumed_seen = 0
        self.rx_arrivals = 0
        self.rx_consumed = 0
        self.rx_queued = 0
        self.peer_sent = 0
        self.grant_owed = False
        self.stalls = 0

    # -- sender side ------------------------------------------------------

    @property
    def credit(self) -> int:
        """Flow-debited messages this end may still send."""
        return self.window - (self.tx_sent - self.tx_consumed_seen)

    def debit(self) -> None:
        """Account one outbound flow-debited message."""
        self.tx_sent += 1

    def on_advertised(self, consumed: int) -> None:
        """Fold in the peer's advertised cumulative consumed counter
        (piggybacked aux or explicit grant).  Monotonic and clamped to
        what was actually sent, so a stale, duplicated, or corrupt
        advertisement can neither retract credit nor mint more than
        ``window``."""
        if consumed > self.tx_consumed_seen:
            self.tx_consumed_seen = min(consumed, self.tx_sent)

    # -- receiver side ----------------------------------------------------

    def on_arrival(self, queued: bool) -> None:
        """Account one inbound flow-debited message; ``queued`` when it
        entered the receive queue rather than being disposed of at
        once."""
        self.rx_arrivals += 1
        if queued:
            self.rx_queued += 1

    def on_consumed(self, from_queue: bool) -> None:
        """Account one disposal: handler return, ``receive()`` pop,
        duplicate suppression, or overload drop."""
        self.rx_consumed += 1
        if from_queue and self.rx_queued > 0:
            self.rx_queued -= 1

    def on_probe(self, peer_sent: int) -> None:
        """Record the peer's cumulative sent counter from a credit
        probe (monotonic)."""
        if peer_sent > self.peer_sent:
            self.peer_sent = peer_sent

    def advertised(self) -> int:
        """The cumulative consumed counter to advertise to the peer:
        everything disposed of, plus everything the peer claims to have
        sent that neither arrived nor is queued — frames lost in
        flight, whose credit must not stay stranded."""
        lost = self.peer_sent - self.rx_consumed - self.rx_queued
        if lost > 0:
            return self.rx_consumed + lost
        return self.rx_consumed
