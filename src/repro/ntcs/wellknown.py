"""The well-known address table (paper Sec. 3.4).

"A small number of 'well known' addresses are loaded into the ComMod
address tables when each module is initialized; those of the Name
Server and of certain 'prime' gateways.  Once in operation, other
(non-prime) gateways can be located through the naming service."

One :class:`WellKnownTable` is built per deployment and shared by every
module's Nucleus — the reproduction of compiling the same configuration
constants into every binary.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ntcs.address import Address, NAME_SERVER_UADD, blob_network


class WellKnownTable:
    """Bootstrap physical addresses: the Name Server's, per network it
    is directly reachable on, and one prime gateway per network that
    needs to route toward it."""

    def __init__(self, ns_uadd: Address = NAME_SERVER_UADD):
        self.ns_uadd = ns_uadd
        self._ns_blobs: Dict[str, str] = {}
        # Each network may know several prime gateways ("certain 'prime'
        # gateways", plural — Sec. 3.4); callers try them in order.
        self._prime_gateway_blobs: Dict[str, List[str]] = {}

    # -- construction ------------------------------------------------------

    def add_name_server_blob(self, blob: str) -> None:
        """Record the Name Server's listening blob (network implied)."""
        self._ns_blobs[blob_network(blob)] = blob

    def add_prime_gateway(self, network: str, blob: str) -> None:
        """Record the blob, on ``network``, of a prime gateway modules
        on ``network`` may use to route toward the Name Server."""
        self._prime_gateway_blobs.setdefault(network, []).append(blob)

    # -- queries ----------------------------------------------------------

    def blob_for(self, addr: Address, network: str) -> Optional[str]:
        """The well-known blob for ``addr`` on ``network``, if any.
        Only the Name Server has one."""
        if addr == self.ns_uadd:
            return self._ns_blobs.get(network)
        return None

    def ns_networks(self) -> List[str]:
        """Networks the Name Server is directly attached to."""
        return sorted(self._ns_blobs)

    def ns_reachable_directly(self, network: str) -> bool:
        """True when the Name Server listens on this network."""
        return network in self._ns_blobs

    def prime_gateway_blob(self, network: str, index: int = 0) -> Optional[str]:
        """The ``index``-th (mod count) prime gateway blob for
        ``network``, or None when the network has no primes."""
        blobs = self._prime_gateway_blobs.get(network)
        if not blobs:
            return None
        return blobs[index % len(blobs)]

    def prime_gateway_count(self, network: str) -> int:
        """How many prime gateways a network has configured."""
        return len(self._prime_gateway_blobs.get(network, []))
