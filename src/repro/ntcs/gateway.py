"""The portable Gateway module (paper Secs. 4.1–4.3).

"The Gateway and IP-layers are both entirely portable.  This not only
simplified their design, but allows the *same* Gateway module to be
used for all networks and machines.  The ability for each Gateway
module to communicate with different networks is handled by the
independent ComMods with which it binds.  Each ComMod is bound with an
ND-Layer designed for one of the networks.  Thus, no network-dependent
issues are visible within the Gateway."

A :class:`Gateway` owns one Nucleus *stack* per attached network and a
splice table pairing inbound and outbound LVCs of pass-through
circuits.  It establishes each circuit hop autonomously, consulting
only the naming service for topology ("no inter-gateway communication
ever takes place" — there is no gateway-to-gateway routing protocol,
and :attr:`inter_gateway_control_messages` counts the proof).

Failure handling follows Sec. 4.3 exactly: a dead LVC on one side makes
the gateway "instruct the IP-layer on the other side of the link to
close the associated IVC", propagating the teardown hop-by-hop back to
the originating module.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    AddressFault,
    NameServerUnreachable,
    NoSuchAddress,
    NtcsError,
    ProtocolError,
    RouteNotFound,
)
from repro.ntcs import message as m
from repro.ntcs.address import Address
from repro.ntcs.iplayer import MAX_HOPS
from repro.ntcs.ndlayer import Lvc
from repro.ntcs.nucleus import Nucleus, NucleusConfig
from repro.ntcs.protocol import T_IVC_OPEN
from repro.util.counters import (
    GATEWAY_CHECKSUM_VERIFIES_DEFERRED,
    GATEWAY_CREDIT_CLAMPS,
    GATEWAY_CREDIT_DROPS,
    GATEWAY_TRAIN_ROTATIONS,
    GW_TRAIN_SPLICES,
)


class _SpliceCredit:
    """What one spliced LVC's direction has shown the gateway: frames
    it debited through, and the cumulative counters gleaned from the
    headers (PROTOCOL.md §12).  Dies with the splice — a re-established
    circuit starts a fresh ledger, matching the endpoints' fresh
    :class:`~repro.ntcs.flow.FlowState`."""

    __slots__ = ("debits", "sent_seen", "consumed_seen")

    def __init__(self):
        # Flow-debited DATA frames forwarded from this leg.
        self.debits = 0
        # The sender's cumulative tx counter, from credit probes.
        self.sent_seen = 0
        # The far receiver's cumulative consumed counter, from
        # advertisements arriving on the *other* leg.
        self.consumed_seen = 0


class Gateway:
    """One gateway module, spanning every network its machine touches.

    Class attributes:
        TRAIN_ROTATE_BUDGET: frames of one train a splice may forward
            before yielding when other splices are active — the
            fair-share guard (PROTOCOL.md §13).  The remainder queues
            behind a zero-delay continuation, so one producer's long
            trains cannot starve another leg of the same gateway.

    Args:
        process: the gateway's process (its machine must be attached to
            at least two networks).
        registry: the deployment's conversion registry.
        wellknown: the deployment's well-known address table.
        config: Nucleus configuration shared by all stacks.
        bindings: optional network -> binding (TCP port / MBX pathname)
            pinning each stack's listening endpoint.  A restarted
            gateway passes its previous bindings so well-known prime
            blobs and peers' cached routes stay valid (PROTOCOL.md §10).
    """

    TRAIN_ROTATE_BUDGET = 16

    def __init__(self, process, registry, wellknown,
                 config: Optional[NucleusConfig] = None,
                 bindings: Optional[Dict[str, str]] = None):
        self.process = process
        self.wellknown = wellknown
        networks = process.machine.networks
        if len(networks) < 2:
            raise NtcsError(
                f"gateway host {process.machine.name} is attached to "
                f"{len(networks)} network(s); a gateway needs at least 2"
            )
        self.stacks: Dict[str, Nucleus] = {}
        for network in networks:
            nucleus = Nucleus(process, network, registry, wellknown, config=config)
            nucleus.gateway_handler = self
            nucleus.nd.create_resource((bindings or {}).get(network))
            self.stacks[network] = nucleus
        # inbound/outbound pairing of pass-through circuits.
        self._splices: Dict[Lvc, Tuple[Nucleus, Lvc]] = {}
        # Per-leg credit observations for flow enforcement on the
        # splice path (PROTOCOL.md §12); all stacks share one config.
        self._splice_credit: Dict[Lvc, _SpliceCredit] = {}
        self.config = next(iter(self.stacks.values())).config
        self.uadd: Optional[Address] = None
        self.name: str = f"gateway.{process.name}"
        # E5's absence proof: never incremented anywhere.
        self.inter_gateway_control_messages = 0
        self.circuits_established = 0
        self.circuits_refused = 0
        self.messages_forwarded = 0
        self.teardowns_propagated = 0
        # Fast-path accounting (PROTOCOL.md, "Fast path and wire
        # invariance"): frames spliced through without re-serialization,
        # and header-checksum verifications this hop did *not* perform.
        self.frames_forwarded_zero_copy = 0
        self.checksum_verifies_deferred = 0
        # Flow enforcement on the splice path (PROTOCOL.md §12).
        self.credit_overruns_dropped = 0
        self.credit_clamps = 0
        # Frame trains on the splice path (PROTOCOL.md §13): trains
        # forwarded in one batch, fair-share rotations that chopped a
        # long train so other splices got their turn, and the per-LVC
        # remainders those rotations queued (forwarded by zero-delay
        # continuations, order preserved per splice).
        self.train_splices = 0
        self.train_rotations = 0
        self._train_backlog: Dict[Lvc, Deque[bytes]] = {}

    # -- registration (Sec. 4.1: "their logical name and connected
    # networks are registered with the naming service; the same as any
    # application module") ----------------------------------------------------

    def register(self) -> Address:
        """Register this gateway (name + all networks) with the naming service."""
        addresses = [
            (network, nucleus.nd.listen_blob)
            for network, nucleus in sorted(self.stacks.items())
        ]
        primary = self._primary_stack()
        self.uadd = primary.require_nsp().register(
            name=self.name,
            attrs={"kind": "gateway", "networks": ",".join(sorted(self.stacks))},
            addresses=addresses,
            mtype_name=self.process.machine.mtype.name,
        )
        for nucleus in self.stacks.values():
            nucleus.set_identity(self.uadd)

        def deregister_on_kill():
            # Best effort, like any module's graceful death: lets the
            # naming service exclude this gateway from future routes.
            primary.lcm.datagram(
                self.wellknown.ns_uadd, "ns_deregister",
                {"uadd": self.uadd.value},
            )

        self.process.at_kill(deregister_on_kill)
        return self.uadd

    def _primary_stack(self) -> Nucleus:
        # Prefer a stack that can reach the Name Server directly.
        for network, nucleus in sorted(self.stacks.items()):
            if self.wellknown.ns_reachable_directly(network):
                return nucleus
        return self.stacks[sorted(self.stacks)[0]]

    def attach_nsp(self, nsp_factory) -> None:
        """Give each stack an NSP-Layer (factory: nucleus -> NspLayer)."""
        for nucleus in self.stacks.values():
            nucleus.nsp = nsp_factory(nucleus)

    # -- the hook the IP-Layer calls ---------------------------------------------

    def handle(self, nucleus: Nucleus, lvc: Lvc, msg: m.Msg) -> bool:
        """First crack at every message on this stack.  Returns True
        when the message belonged to the pass-through plane."""
        splice = self._splices.get(lvc)
        if splice is not None:
            self._forward(lvc, splice, msg)
            return True
        if msg.kind == m.IVC_OPEN and not self._is_mine(msg.dst):
            # The gateway terminates the IVC_OPEN at each hop (it
            # unpacks the body to route), so the deferred header
            # checksum is settled here before the body is touched.
            if not msg.checksum_ok():
                nucleus.counters.incr("nd_malformed_messages")
                nucleus.nd.close(lvc, "IVC_OPEN header checksum mismatch")
                return True
            self._establish(nucleus, lvc, msg)
            return True
        return False

    def on_fault(self, nucleus: Nucleus, lvc: Lvc, reason: str) -> bool:
        """A spliced LVC died: close the other side (Sec. 4.3)."""
        # Frames already received from the dead leg still go out the
        # surviving one; the reverse direction's queued remainder is
        # the messages "lost in Gateway queues" of Sec. 4.3.
        self._drain_backlog_fully(lvc)
        splice = self._splices.pop(lvc, None)
        if splice is None:
            return False
        other_nucleus, other_lvc = splice
        self._splices.pop(other_lvc, None)
        self._splice_credit.pop(lvc, None)
        self._splice_credit.pop(other_lvc, None)
        self._train_backlog.pop(other_lvc, None)
        self.teardowns_propagated += 1
        close_msg = m.Msg(
            kind=m.IVC_CLOSE,
            src=nucleus.self_addr,
            dst=other_lvc.peer_addr or nucleus.self_addr,
            flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
        )
        close_msg.type_id, close_msg.body = nucleus.pack_internal(
            "ivc_close", {"reason": f"upstream circuit failed: {reason}"[:90]}
        )
        try:
            other_nucleus.nd.send(other_lvc, close_msg)
        except NtcsError:
            # Best-effort: the surviving leg may already be down too.
            other_nucleus.counters.incr("gateway_close_notify_lost")
        other_nucleus.nd.close(other_lvc, "splice peer failed")
        return True

    def _is_mine(self, addr: Address) -> bool:
        if self.uadd is not None and addr == self.uadd:
            return True
        return any(nucleus.is_self(addr) for nucleus in self.stacks.values())

    # -- circuit establishment -----------------------------------------------

    def _establish(self, in_nucleus: Nucleus, in_lvc: Lvc, msg: m.Msg) -> None:
        values = in_nucleus.unpack_internal(T_IVC_OPEN, msg.body)
        dst_network = values["dst_network"]
        hops = msg.aux
        if hops >= MAX_HOPS:
            self.circuits_refused += 1
            self._nak(in_nucleus, in_lvc, msg, "hop count exceeded")
            return
        try:
            out_nucleus, out_lvc = self._open_next_hop(msg.dst, dst_network)
        except (AddressFault, RouteNotFound, NoSuchAddress, NtcsError) as exc:
            self.circuits_refused += 1
            self._nak(in_nucleus, in_lvc, msg, str(exc))
            return
        # Splice before forwarding so the returning IVC_OPEN_ACK already
        # has a path back upstream.
        self._splices[in_lvc] = (out_nucleus, out_lvc)
        self._splices[out_lvc] = (in_nucleus, in_lvc)
        # Spliced frames bypass decoding entirely: the ND-Layer hands
        # each raw inbound frame to _fast_forward, which routes on the
        # header view alone (words 1–6) without materializing a Msg.
        in_lvc.frame_tap = lambda raw: self._fast_forward(in_lvc, raw)
        out_lvc.frame_tap = lambda raw: self._fast_forward(out_lvc, raw)
        in_lvc.frame_tap_train = \
            lambda raws: self._fast_forward_train(in_lvc, raws)
        out_lvc.frame_tap_train = \
            lambda raws: self._fast_forward_train(out_lvc, raws)
        self.circuits_established += 1
        # Forward the original frame with only the hop-count (aux) and
        # checksum words patched in place — no header re-serialization.
        out_nucleus.nd.send_frame(
            out_lvc, m.patch_frame_aux(msg.encode(), hops + 1)
        )

    def _open_next_hop(self, dst: Address, dst_network: str) -> Tuple[Nucleus, Lvc]:
        """Open the next LVC of the chain: to the destination itself
        when its network is one of ours, else to the next gateway
        toward it — chosen with the same naming-service machinery the
        originating IP-Layer used (Sec. 4.1)."""
        if dst_network in self.stacks:
            out_nucleus = self.stacks[dst_network]
            blob = self.wellknown.blob_for(dst, dst_network)
            if blob is None:
                record = self._resolve_via_any_stack(dst, preferred=out_nucleus)
                blob = record.blob_on(dst_network)
                if blob is None:
                    raise AddressFault(
                        dst, f"not reachable on {dst_network!r}"
                    )
            lvc = out_nucleus.nd.open_lvc(dst, blob, reason="final chain hop")
            return out_nucleus, lvc
        # Route onward: first hop toward dst_network from any of our
        # stacks (each stack's IP-Layer owns the BFS and its cache).
        errors = []
        for network, nucleus in sorted(self.stacks.items()):
            try:
                plan = nucleus.ip._gateway_plan(dst, dst_network)
            except (RouteNotFound, NtcsError) as exc:
                errors.append(str(exc))
                continue
            gw_dst = plan.gw_uadd or nucleus.tadds.allocate()
            if self.uadd is not None and plan.gw_uadd == self.uadd:
                continue  # never route through ourselves
            try:
                lvc = nucleus.nd.open_lvc(gw_dst, plan.blob,
                                          reason="next gateway hop")
            except AddressFault as exc:
                # The chosen next gateway is dead (Sec. 4.3): evict the
                # stale route so the next establishment replans from the
                # naming service's current topology, mark the hop
                # suspect, and try the remaining stacks.
                nucleus.ip.route_cache.pop(dst_network, None)
                nucleus.ip.note_gateway_fault(plan.gw_uadd)
                errors.append(str(exc))
                continue
            return nucleus, lvc
        raise RouteNotFound(
            f"no onward route to {dst_network!r}: {'; '.join(errors) or 'no gateways'}"
        )

    def _resolve_via_any_stack(self, dst: Address, preferred: Nucleus):
        """Resolve a UAdd through whichever of our stacks can currently
        reach the naming service.  All stacks query the same service;
        a stack whose own bootstrap route toward it is down (e.g. its
        prime gateway died) must not doom the resolution."""
        candidates = [preferred] + [
            nucleus for nucleus in self.stacks.values()
            if nucleus is not preferred
        ]
        last_error: Optional[Exception] = None
        for nucleus in candidates:
            try:
                return nucleus.require_nsp().resolve_uadd(dst)
            except NameServerUnreachable as exc:
                last_error = exc
        raise last_error

    def _nak(self, nucleus: Nucleus, lvc: Lvc, msg: m.Msg, reason: str) -> None:
        nak = m.Msg(
            kind=m.IVC_OPEN_NAK, src=nucleus.self_addr, dst=msg.src,
            flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
        )
        nak.type_id, nak.body = nucleus.pack_internal(
            "ivc_open_nak", {"reason": reason[:90]}
        )
        try:
            nucleus.nd.send(lvc, nak)
        except NtcsError:
            # Best-effort refusal: the opener may already be gone.
            nucleus.counters.incr("gateway_nak_lost")

    # -- pass-through forwarding -----------------------------------------------

    def _fast_forward(self, in_lvc: Lvc, raw: bytes) -> bool:
        """The zero-copy splice: forward a raw inbound frame from its
        header view alone.  Returns False (frame not consumed) for
        anything needing the full path — IVC_CLOSE teardown, malformed
        frames, or a dismantled splice — which then goes through decode
        and :meth:`handle` as before."""
        splice = self._splices.get(in_lvc)
        if splice is None:
            return False
        try:
            header = m.HeaderView(raw)
        except ProtocolError:
            return False  # let the ND-Layer's malformed handling run
        if header.kind == m.IVC_CLOSE:
            return False
        backlog = self._train_backlog.get(in_lvc)
        if backlog is not None:
            # A rotated train's remainder is still queued for this
            # splice: join the back of it so per-splice order holds.
            backlog.append(raw)
            return True
        out_nucleus, out_lvc = splice
        raw, forward = self._enforce_credit(
            in_lvc, out_nucleus, out_lvc, header, raw)
        if not forward:
            return True  # consumed: dropped by flow enforcement
        self.messages_forwarded += 1
        self.frames_forwarded_zero_copy += 1
        # This hop neither verified the header sum nor re-serialized:
        # the terminating endpoint settles the checksum once.
        self.checksum_verifies_deferred += 1
        out_nucleus.counters.incr(GATEWAY_CHECKSUM_VERIFIES_DEFERRED)
        try:
            out_nucleus.nd.send_frame(out_lvc, raw)
        except NtcsError:
            # The downstream leg died with traffic in flight: messages
            # "may get lost in Gateway queues during this
            # reconfiguration" (Sec. 4.3).
            out_nucleus.counters.incr("gateway_messages_dropped")
        return True

    def _fast_forward_train(self, in_lvc: Lvc, frames: Sequence) -> int:
        """Train form of :meth:`_fast_forward` (PROTOCOL.md §13):
        splice the maximal spliceable prefix of ``frames`` through the
        zero-copy tap in one batch — headers decoded with one struct
        call, one deferred-checksum decision for the lot, credit
        enforced per frame.  Returns how many prefix frames were
        consumed; 0 sends the head down the per-frame path.  Must never
        pump (and does not: forwarding only transmits)."""
        splice = self._splices.get(in_lvc)
        if splice is None:
            return 0
        prefix: List[bytes] = []
        for raw in frames:
            if type(raw) is not bytes:
                break
            prefix.append(raw)
        if len(prefix) < 2:
            return 0
        try:
            headers = m.header_views(prefix)
        except ProtocolError:
            return 0  # a malformed frame: per-frame handling, in order
        taken = 0
        for header in headers:
            if header.kind == m.IVC_CLOSE:
                break  # teardown goes through the decode path, in order
            taken += 1
        if taken < 2:
            return 0
        out_nucleus, out_lvc = splice
        backlog = self._train_backlog.get(in_lvc)
        if backlog is not None:
            # A rotated remainder is queued ahead of this train.
            backlog.extend(prefix[:taken])
            return taken
        budget = taken
        if self.splice_count() > 1 and taken > self.TRAIN_ROTATE_BUDGET:
            budget = self.TRAIN_ROTATE_BUDGET
        self._forward_batch(in_lvc, out_nucleus, out_lvc,
                            headers[:budget], prefix[:budget])
        self.train_splices += 1
        out_nucleus.counters.incr(GW_TRAIN_SPLICES)
        if budget < taken:
            self._train_backlog[in_lvc] = deque(prefix[budget:taken])
            self._rotate(in_lvc, out_nucleus)
        return taken

    def _forward_batch(self, in_lvc: Lvc, out_nucleus: Nucleus,
                       out_lvc: Lvc, headers: Sequence[m.HeaderView],
                       frames: Sequence[bytes]) -> None:
        """Credit-check each frame, then splice the survivors out as
        one train with batched counter updates."""
        outs: List[bytes] = []
        for header, raw in zip(headers, frames):
            raw, forward = self._enforce_credit(
                in_lvc, out_nucleus, out_lvc, header, raw)
            if forward:
                outs.append(raw)
        if not outs:
            return
        count = len(outs)
        self.messages_forwarded += count
        self.frames_forwarded_zero_copy += count
        self.checksum_verifies_deferred += count
        out_nucleus.counters.incr(GATEWAY_CHECKSUM_VERIFIES_DEFERRED, count)
        try:
            out_nucleus.nd.send_frames(out_lvc, outs)
        except NtcsError:
            # The downstream leg died with traffic in flight (Sec. 4.3).
            out_nucleus.counters.incr("gateway_messages_dropped")

    def _rotate(self, in_lvc: Lvc, out_nucleus: Nucleus) -> None:
        self.train_rotations += 1
        out_nucleus.counters.incr(GATEWAY_TRAIN_ROTATIONS)
        out_nucleus.scheduler.post(
            0.0, lambda: self._flush_backlog(in_lvc),
            note=f"{self.name} train rotation")

    def _flush_backlog(self, in_lvc: Lvc) -> None:
        """Forward (part of) a rotated train's queued remainder; posts
        itself again while frames and competing splices remain."""
        backlog = self._train_backlog.get(in_lvc)
        if backlog is None:
            return
        splice = self._splices.get(in_lvc)
        if splice is None:
            # Dismantled with traffic queued: the Sec. 4.3 loss window.
            del self._train_backlog[in_lvc]
            return
        out_nucleus, out_lvc = splice
        budget = len(backlog)
        if self.splice_count() > 1 and budget > self.TRAIN_ROTATE_BUDGET:
            budget = self.TRAIN_ROTATE_BUDGET
        chunk = [backlog.popleft() for _ in range(budget)]
        # Frames were header-validated at intake; re-view in one batch.
        self._forward_batch(in_lvc, out_nucleus, out_lvc,
                            m.header_views(chunk), chunk)
        if backlog:
            self._rotate(in_lvc, out_nucleus)
        else:
            del self._train_backlog[in_lvc]

    def _drain_backlog_fully(self, in_lvc: Lvc) -> None:
        """Flush a splice's entire queued remainder right now — run
        before a teardown propagates so no in-order frame is overtaken
        by the close."""
        backlog = self._train_backlog.pop(in_lvc, None)
        if not backlog:
            return
        splice = self._splices.get(in_lvc)
        if splice is None:
            return
        out_nucleus, out_lvc = splice
        chunk = list(backlog)
        self._forward_batch(in_lvc, out_nucleus, out_lvc,
                            m.header_views(chunk), chunk)

    def _enforce_credit(self, in_lvc: Lvc, out_nucleus: Nucleus,
                        out_lvc: Lvc, header: m.HeaderView,
                        raw: bytes) -> Tuple[bytes, bool]:
        """Credit bookkeeping on the zero-copy path (PROTOCOL.md §12).

        The gateway is not a flow endpoint — it keeps no queue of its
        own to defend — but it can police the circuits it splices from
        the header words alone: a sender that has overrun its window
        twice over (a flow-disabled or misbehaving stack flooding a
        stalled receiver) gets its excess dropped here instead of
        accumulating downstream, and an advertisement inflated beyond
        anything ever sent is patched down in place — aux and checksum
        words only, no Msg materialized — so forged credit cannot mint
        window the sender never earned.  Returns the (possibly
        patched) frame and whether to forward it."""
        if not self.config.flow_control_enabled:
            return raw, True
        state = self._splice_credit.get(in_lvc)
        if state is None:
            state = self._splice_credit[in_lvc] = _SpliceCredit()
        if header.kind == m.CREDIT_PROBE:
            sent = header.credit
            if sent is not None and sent > state.sent_seen:
                state.sent_seen = sent
            return raw, True
        advertised = header.credit
        if advertised is not None and header.kind in (m.DATA, m.CREDIT_GRANT):
            # An advertisement arriving on this leg covers traffic of
            # the opposite direction: frames that arrived on out_lvc.
            peer = self._splice_credit.get(out_lvc)
            if peer is None:
                peer = self._splice_credit[out_lvc] = _SpliceCredit()
            bound = max(peer.debits, peer.sent_seen)
            if advertised > bound:
                raw = m.patch_frame_aux(raw, m.encode_credit(bound))
                self.credit_clamps += 1
                out_nucleus.counters.incr(GATEWAY_CREDIT_CLAMPS)
                advertised = bound
            if advertised > peer.consumed_seen:
                peer.consumed_seen = advertised
        if (header.kind == m.DATA and not header.flags & m.FLAG_INTERNAL
                and not header.flags & m.FLAG_IS_REPLY):
            if (state.debits - state.consumed_seen
                    >= 2 * self.config.flow_window):
                self.credit_overruns_dropped += 1
                out_nucleus.counters.incr(GATEWAY_CREDIT_DROPS)
                return raw, False
            state.debits += 1
        return raw, True

    def _forward(self, in_lvc: Lvc, splice: Tuple[Nucleus, Lvc], msg: m.Msg) -> None:
        out_nucleus, out_lvc = splice
        if msg.kind == m.IVC_CLOSE:
            # Propagate the close and dismantle the splice (Sec. 4.3).
            # Any rotated-train remainder goes out first, in order.
            self._drain_backlog_fully(in_lvc)
            self._splices.pop(in_lvc, None)
            self._splices.pop(out_lvc, None)
            self._splice_credit.pop(in_lvc, None)
            self._splice_credit.pop(out_lvc, None)
            self.teardowns_propagated += 1
            try:
                out_nucleus.nd.send(out_lvc, msg)
            except NtcsError:
                # The other leg is failing with the circuit; the close
                # below dismantles it regardless.
                out_nucleus.counters.incr("gateway_close_notify_lost")
            out_nucleus.nd.close(out_lvc, "ivc closed")
            return
        self.messages_forwarded += 1
        self.frames_forwarded_zero_copy += 1
        if msg.checksum_pending:
            # This hop never verified the header sum — the terminating
            # endpoint will, once, for the whole chain.
            self.checksum_verifies_deferred += 1
            out_nucleus.counters.incr(GATEWAY_CHECKSUM_VERIFIES_DEFERRED)
        try:
            # The decoded-but-unmutated Msg still holds its original
            # frame bytes: forward them verbatim.
            out_nucleus.nd.send_frame(out_lvc, msg.encode())
        except NtcsError:
            # The downstream leg died with traffic in flight: messages
            # "may get lost in Gateway queues during this
            # reconfiguration" (Sec. 4.3).
            out_nucleus.counters.incr("gateway_messages_dropped")

    # -- introspection -------------------------------------------------------

    def splice_count(self) -> int:
        """Number of pass-through circuits currently spliced."""
        return len(self._splices) // 2
