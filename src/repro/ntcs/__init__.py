"""The NTCS proper: the Nucleus layers and their support types.

Bottom-up, per the paper's Fig. 2-2:

* :mod:`address` — UAdds, TAdds, physical-address blobs (Sec. 2.3, 3.4)
* :mod:`message` — shift-mode internal message headers (Sec. 5.2)
* :mod:`stdif` / :mod:`drivers` — the ND-Layer's uniform virtual-circuit
  interface over each native IPCS (Sec. 2.2)
* :mod:`ndlayer` — local virtual circuits, address caching, faults
* :mod:`iplayer` / :mod:`gateway` — internet virtual circuits chained
  through portable Gateway modules (Sec. 4)
* :mod:`lcm` — logical connection maintenance: implicit open,
  relocation, forwarding, connectionless sends (Sec. 2.2, 3.5)
* :mod:`nucleus` — the composition bound into every NTCS module,
  with recursion accounting (Sec. 6)
* :mod:`wellknown` — the bootstrap address table (Sec. 3.4)
"""

from repro.ntcs.address import Address, AddressCache, TAddAllocator, NAME_SERVER_UADD
from repro.ntcs.wellknown import WellKnownTable
from repro.ntcs.nucleus import Nucleus, NucleusConfig

__all__ = [
    "Address",
    "AddressCache",
    "TAddAllocator",
    "NAME_SERVER_UADD",
    "WellKnownTable",
    "Nucleus",
    "NucleusConfig",
]
