"""NTCS internal messages: shift-mode headers + mode-tagged bodies.

Per Sec. 5.2 of the paper, "all message headers are built with
structures of four byte integers", transferred with the endian-
independent shift/mask routines of
:mod:`repro.conversion.shiftmode`, while "any necessary data field in an
NTCS control message is built in packed mode".

Header layout (twelve 32-bit words, 48 bytes):

====  ==========================================================
word  meaning
====  ==========================================================
 0    magic ("NTCS")
 1    kind (DATA / LVC_HELLO / IVC_OPEN / ...)
 2    flags (transfer mode, reply bits, connectionless)
 3,4  source address (high, low; bit 63 marks a TAdd)
 5,6  destination address (high, low)
 7    message type id (conversion-registry key)
 8    correlation id (send/receive/reply matching)
 9    body length in bytes
10    aux (hop count for IVC_OPEN; otherwise zero)
11    checksum: sum of words 0–10 mod 2^32
====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conversion.shiftmode import shift_decode_u32s, shift_encode_u32s
from repro.errors import ProtocolError
from repro.ntcs.address import Address

MAGIC = 0x4E544353  # "NTCS"
HEADER_WORDS = 12
HEADER_BYTES = HEADER_WORDS * 4

# -- kinds ------------------------------------------------------------------

DATA = 1
LVC_HELLO = 2
LVC_HELLO_ACK = 3
IVC_OPEN = 4
IVC_OPEN_ACK = 5
IVC_OPEN_NAK = 6
IVC_CLOSE = 7

KIND_NAMES = {
    DATA: "DATA",
    LVC_HELLO: "LVC_HELLO",
    LVC_HELLO_ACK: "LVC_HELLO_ACK",
    IVC_OPEN: "IVC_OPEN",
    IVC_OPEN_ACK: "IVC_OPEN_ACK",
    IVC_OPEN_NAK: "IVC_OPEN_NAK",
    IVC_CLOSE: "IVC_CLOSE",
}

# -- flags -------------------------------------------------------------------

FLAG_PACKED = 0x01          # body transfer mode: set=packed, clear=image
FLAG_REPLY_EXPECTED = 0x02
FLAG_IS_REPLY = 0x04
FLAG_CONNECTIONLESS = 0x08
FLAG_INTERNAL = 0x10        # NTCS control-plane traffic (NSP, monitor, ...)


@dataclass
class Msg:
    """One NTCS message: a parsed header plus its body bytes."""

    kind: int
    src: Address
    dst: Address
    flags: int = 0
    type_id: int = 0
    corr_id: int = 0
    aux: int = 0
    body: bytes = b""

    # -- flag helpers ---------------------------------------------------------

    @property
    def mode(self) -> int:
        """Transfer mode of the body (conversion.IMAGE or PACKED)."""
        return 1 if self.flags & FLAG_PACKED else 0

    def set_mode(self, mode: int) -> None:
        """Set the body transfer-mode flag (IMAGE or PACKED)."""
        if mode:
            self.flags |= FLAG_PACKED
        else:
            self.flags &= ~FLAG_PACKED

    @property
    def reply_expected(self) -> bool:
        return bool(self.flags & FLAG_REPLY_EXPECTED)

    @property
    def is_reply(self) -> bool:
        return bool(self.flags & FLAG_IS_REPLY)

    @property
    def connectionless(self) -> bool:
        return bool(self.flags & FLAG_CONNECTIONLESS)

    @property
    def internal(self) -> bool:
        return bool(self.flags & FLAG_INTERNAL)

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind{self.kind}")

    # -- wire form ------------------------------------------------------------

    def encode(self) -> bytes:
        """Shift-mode header followed by the body bytes."""
        src_hi, src_lo = self.src.to_u32_pair()
        dst_hi, dst_lo = self.dst.to_u32_pair()
        words = [
            MAGIC, self.kind, self.flags,
            src_hi, src_lo, dst_hi, dst_lo,
            self.type_id, self.corr_id, len(self.body), self.aux,
        ]
        checksum = sum(words) & 0xFFFFFFFF
        return shift_encode_u32s(words + [checksum]) + self.body

    @classmethod
    def decode(cls, data: bytes) -> "Msg":
        """Parse one complete message.  Raises ProtocolError on any
        malformation — the sanity net under the recursive layers."""
        if len(data) < HEADER_BYTES:
            raise ProtocolError(f"short NTCS message: {len(data)} bytes")
        words = shift_decode_u32s(data, HEADER_WORDS)
        if words[0] != MAGIC:
            raise ProtocolError(f"bad magic {words[0]:#x}")
        checksum = sum(words[:11]) & 0xFFFFFFFF
        if words[11] != checksum:
            raise ProtocolError(
                f"header checksum mismatch ({words[11]:#x} != {checksum:#x})"
            )
        body_len = words[9]
        body = data[HEADER_BYTES:]
        if len(body) != body_len:
            raise ProtocolError(
                f"body length mismatch: header says {body_len}, got {len(body)}"
            )
        return cls(
            kind=words[1],
            flags=words[2],
            src=Address.from_u32_pair(words[3], words[4]),
            dst=Address.from_u32_pair(words[5], words[6]),
            type_id=words[7],
            corr_id=words[8],
            aux=words[10],
            body=body,
        )

    def __repr__(self) -> str:
        return (
            f"Msg({self.kind_name} {self.src}->{self.dst} type={self.type_id} "
            f"corr={self.corr_id} flags={self.flags:#x} body={len(self.body)}B)"
        )
