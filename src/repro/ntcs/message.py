"""NTCS internal messages: shift-mode headers + mode-tagged bodies.

Per Sec. 5.2 of the paper, "all message headers are built with
structures of four byte integers", transferred with the endian-
independent shift/mask routines of
:mod:`repro.conversion.shiftmode`, while "any necessary data field in an
NTCS control message is built in packed mode".

Header layout (twelve 32-bit words, 48 bytes):

====  ==========================================================
word  meaning
====  ==========================================================
 0    magic ("NTCS")
 1    kind (DATA / LVC_HELLO / IVC_OPEN / ...)
 2    flags (transfer mode, reply bits, connectionless)
 3,4  source address (high, low; bit 63 marks a TAdd)
 5,6  destination address (high, low)
 7    message type id (conversion-registry key)
 8    correlation id (send/receive/reply matching)
 9    body length in bytes
10    aux (hop count for IVC_OPEN; cumulative credit counter on
      DATA / CREDIT_GRANT / CREDIT_PROBE when flow control is on,
      see PROTOCOL.md §12; otherwise zero)
11    checksum: sum of words 0–10 mod 2^32
====  ==========================================================

Fast path (PROTOCOL.md, "Fast path and wire invariance"): a decoded
:class:`Msg` keeps its original frame bytes, and :meth:`Msg.encode`
returns them verbatim until a wire-visible field is mutated — so a
gateway that forwards a message untouched never re-serializes it.  The
header checksum may be verified lazily (``verify=False`` on decode +
:meth:`Msg.checksum_ok` at the terminating endpoint), and
:func:`patch_frame_aux` rewrites only the aux and checksum words of a
frame in place via ``memoryview`` for the per-hop IVC_OPEN hop count.
:class:`HeaderView` exposes the routing words (1–6) of a raw frame
without materializing a full message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

from repro.conversion.shiftmode import (
    shift_decode_credit,
    shift_decode_u32s,
    shift_decode_u32s_many,
    shift_encode_credit,
    shift_encode_u32s,
)
from repro.errors import ProtocolError
from repro.ntcs.address import Address

MAGIC = 0x4E544353  # "NTCS"
HEADER_WORDS = 12
HEADER_BYTES = HEADER_WORDS * 4

# Byte offsets of the in-place-patchable words (see patch_frame_aux).
AUX_WORD_OFFSET = 10 * 4
CHECKSUM_WORD_OFFSET = 11 * 4

# -- kinds ------------------------------------------------------------------

DATA = 1
LVC_HELLO = 2
LVC_HELLO_ACK = 3
IVC_OPEN = 4
IVC_OPEN_ACK = 5
IVC_OPEN_NAK = 6
IVC_CLOSE = 7
CREDIT_GRANT = 8
CREDIT_PROBE = 9

KIND_NAMES = {
    DATA: "DATA",
    LVC_HELLO: "LVC_HELLO",
    LVC_HELLO_ACK: "LVC_HELLO_ACK",
    IVC_OPEN: "IVC_OPEN",
    IVC_OPEN_ACK: "IVC_OPEN_ACK",
    IVC_OPEN_NAK: "IVC_OPEN_NAK",
    IVC_CLOSE: "IVC_CLOSE",
    CREDIT_GRANT: "CREDIT_GRANT",
    CREDIT_PROBE: "CREDIT_PROBE",
}

# The declared wire handshake, checked by ntcsverify (pure literal —
# the analyzer reads it off the AST).  Per network hop (one LVC), a
# kind may only be transmitted once every flag it *requires* has been
# *established* by an earlier kind on that hop: the HELLO exchange
# brings up the LVC, IVC_OPEN rides an open LVC, the OPEN ACK/NAK
# answer an outstanding open, and everything else needs the LVC.
# ``verify`` model-checks this table for handshake deadlocks (MDL003)
# and replays netsim wire traces against it (TRC001/TRC002).
WIRE_PROTOCOL = {
    "LVC_HELLO":     {"requires": (),         "establishes": ("hello",)},
    "LVC_HELLO_ACK": {"requires": ("hello",), "establishes": ("lvc",)},
    "IVC_OPEN":      {"requires": ("lvc",),   "establishes": ("open",)},
    "IVC_OPEN_ACK":  {"requires": ("open",),  "establishes": ("ivc",)},
    "IVC_OPEN_NAK":  {"requires": ("open",),  "establishes": ()},
    "IVC_CLOSE":     {"requires": ("lvc",),   "establishes": ()},
    "DATA":          {"requires": ("lvc",),   "establishes": ()},
    "CREDIT_GRANT":  {"requires": ("lvc",),   "establishes": ()},
    "CREDIT_PROBE":  {"requires": ("lvc",),   "establishes": ()},
}

# -- flags -------------------------------------------------------------------

FLAG_PACKED = 0x01          # body transfer mode: set=packed, clear=image
FLAG_REPLY_EXPECTED = 0x02
FLAG_IS_REPLY = 0x04
FLAG_CONNECTIONLESS = 0x08
FLAG_INTERNAL = 0x10        # NTCS control-plane traffic (NSP, monitor, ...)

# Fields whose mutation invalidates a cached wire frame.
_WIRE_FIELDS = frozenset(
    {"kind", "src", "dst", "flags", "type_id", "corr_id", "aux", "body"}
)


class HeaderView:
    """A zero-copy view of one frame's header words.

    Gateways route on kind/src/dst/aux; this view decodes exactly the
    twelve header words (no body copy, no Address construction unless
    asked) so the pass-through plane can decide without building a
    :class:`Msg`.  Construction validates only length and magic; call
    :meth:`checksum_ok` to verify the header sum.
    """

    __slots__ = ("_words",)

    def __init__(self, frame: Union[bytes, bytearray, memoryview]):
        if len(frame) < HEADER_BYTES:
            raise ProtocolError(f"short NTCS message: {len(frame)} bytes")
        self._words = shift_decode_u32s(frame, HEADER_WORDS)
        if self._words[0] != MAGIC:
            raise ProtocolError(f"bad magic {self._words[0]:#x}")

    @property
    def kind(self) -> int:
        return self._words[1]

    @property
    def flags(self) -> int:
        return self._words[2]

    @property
    def src(self) -> Address:
        return Address.from_u32_pair(self._words[3], self._words[4])

    @property
    def dst(self) -> Address:
        return Address.from_u32_pair(self._words[5], self._words[6])

    @property
    def type_id(self) -> int:
        return self._words[7]

    @property
    def corr_id(self) -> int:
        return self._words[8]

    @property
    def body_len(self) -> int:
        return self._words[9]

    @property
    def aux(self) -> int:
        return self._words[10]

    @property
    def credit(self) -> Optional[int]:
        """The cumulative credit counter piggybacked in the aux word,
        or None when the frame carries no credit information (flow
        control off, or an aux word used for something else — gateways
        only consult this on DATA/CREDIT_* kinds)."""
        return shift_decode_credit(self._words[10])

    def checksum_ok(self) -> bool:
        """True when the checksum word matches the header sum."""
        return self._words[11] == sum(self._words[:11]) & 0xFFFFFFFF

    @classmethod
    def from_words(cls, words: List[int]) -> "HeaderView":
        """Wrap already-decoded header words (the vectorized train
        path); the words were validated by :func:`header_views`."""
        view = cls.__new__(cls)
        view._words = words
        return view


def header_views(frames: Sequence[Union[bytes, bytearray, memoryview]]
                 ) -> List[HeaderView]:
    """Decode the header words of a whole frame train in one struct
    call (PROTOCOL.md §13): the 48-byte header prefixes are joined into
    one contiguous buffer and unpacked together, then split into one
    :class:`HeaderView` per frame.  Raises ProtocolError on the first
    short or bad-magic frame, like per-frame construction would.
    """
    for frame in frames:
        if len(frame) < HEADER_BYTES:
            raise ProtocolError(f"short NTCS message: {len(frame)} bytes")
    joined = b"".join(bytes(frame[:HEADER_BYTES]) for frame in frames)
    groups = shift_decode_u32s_many(joined, len(frames), HEADER_WORDS)
    views = []
    for words in groups:
        if words[0] != MAGIC:
            raise ProtocolError(f"bad magic {words[0]:#x}")
        views.append(HeaderView.from_words(words))
    return views


def decode_frames(frames: Sequence[bytes]) -> List["Msg"]:
    """Vectorized :meth:`Msg.decode` over a frame train, checksum
    deferred: header words for every frame come from one struct call.
    Raises ProtocolError on the first malformed frame — callers fall
    back to the per-frame path so error handling stays identical.
    """
    views = header_views(frames)
    msgs = []
    for frame, view in zip(frames, views):
        words = view._words
        body = frame[HEADER_BYTES:]
        if len(body) != words[9]:
            raise ProtocolError(
                f"body length mismatch: header says {words[9]}, "
                f"got {len(body)}"
            )
        msg = Msg(
            kind=words[1],
            flags=words[2],
            src=Address.from_u32_pair(words[3], words[4]),
            dst=Address.from_u32_pair(words[5], words[6]),
            type_id=words[7],
            corr_id=words[8],
            aux=words[10],
            body=body,
        )
        msg._frame = bytes(frame)
        msg._checksum_deferred = True
        msgs.append(msg)
    return msgs


def encode_credit(count: int) -> int:
    """Aux-word encoding of a cumulative credit counter (nonzero, so a
    flow-disabled sender's aux == 0 is unambiguous)."""
    return shift_encode_credit(count)


def decode_credit(aux: int) -> Optional[int]:
    """Inverse of :func:`encode_credit`; None when ``aux`` carries no
    credit information."""
    return shift_decode_credit(aux)


def patch_frame_aux(frame: Union[bytes, memoryview], aux: int) -> bytes:
    """A copy of ``frame`` with only the aux and checksum words
    rewritten in place — the gateway hop-count splice.

    The checksum is word-sum mod 2^32, so it updates incrementally from
    the old aux value: no other header word is read, decoded, or
    re-encoded.  Everything else, body included, is byte-identical.
    """
    if len(frame) < HEADER_BYTES:
        raise ProtocolError(f"short NTCS message: {len(frame)} bytes")
    patched = bytearray(frame)
    view = memoryview(patched)
    old_aux, old_sum = shift_decode_u32s(view, 2, offset=AUX_WORD_OFFSET)
    new_sum = (old_sum - old_aux + aux) & 0xFFFFFFFF
    view[AUX_WORD_OFFSET:CHECKSUM_WORD_OFFSET + 4] = \
        shift_encode_u32s((aux & 0xFFFFFFFF, new_sum))
    return bytes(patched)


@dataclass
class Msg:
    """One NTCS message: a parsed header plus its body bytes."""

    kind: int
    src: Address
    dst: Address
    flags: int = 0
    type_id: int = 0
    corr_id: int = 0
    aux: int = 0
    body: bytes = b""
    # Cached wire frame: populated by decode()/encode(), dropped on any
    # wire-field mutation (see __setattr__).  repr=False keeps dumps
    # readable; compare=False keeps Msg equality semantic, not cached.
    _frame: Optional[bytes] = field(default=None, repr=False, compare=False)
    # False until the header checksum has been checked (decode verifies
    # eagerly unless told to defer; locally built messages are trusted).
    _checksum_deferred: bool = field(default=False, repr=False, compare=False)

    def __setattr__(self, name: str, value) -> None:
        if name in _WIRE_FIELDS and "_frame" in self.__dict__:
            object.__setattr__(self, "_frame", None)
        object.__setattr__(self, name, value)

    # -- flag helpers ---------------------------------------------------------

    @property
    def mode(self) -> int:
        """Transfer mode of the body (conversion.IMAGE or PACKED)."""
        return 1 if self.flags & FLAG_PACKED else 0

    def set_mode(self, mode: int) -> None:
        """Set the body transfer-mode flag (IMAGE or PACKED)."""
        if mode:
            self.flags |= FLAG_PACKED
        else:
            self.flags &= ~FLAG_PACKED

    @property
    def reply_expected(self) -> bool:
        return bool(self.flags & FLAG_REPLY_EXPECTED)

    @property
    def is_reply(self) -> bool:
        return bool(self.flags & FLAG_IS_REPLY)

    @property
    def connectionless(self) -> bool:
        return bool(self.flags & FLAG_CONNECTIONLESS)

    @property
    def internal(self) -> bool:
        return bool(self.flags & FLAG_INTERNAL)

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"kind{self.kind}")

    # -- wire form ------------------------------------------------------------

    def encode(self) -> bytes:
        """Shift-mode header followed by the body bytes.  The frame is
        cached: re-encoding an unmutated message (the gateway forward
        path) returns the original bytes."""
        frame = self._frame
        if frame is not None:
            return frame
        src_hi, src_lo = self.src.to_u32_pair()
        dst_hi, dst_lo = self.dst.to_u32_pair()
        words = [
            MAGIC, self.kind, self.flags,
            src_hi, src_lo, dst_hi, dst_lo,
            self.type_id, self.corr_id, len(self.body), self.aux,
        ]
        checksum = sum(words) & 0xFFFFFFFF
        words.append(checksum)
        frame = shift_encode_u32s(words) + self.body
        self._frame = frame
        return frame

    @classmethod
    def decode(cls, data: bytes, verify: bool = True) -> "Msg":
        """Parse one complete message.  Raises ProtocolError on any
        malformation — the sanity net under the recursive layers.

        With ``verify=False`` the (length/magic) structure is still
        validated but the header-checksum comparison is deferred: the
        caller promises to run :meth:`checksum_ok` at the terminating
        endpoint (gateway pass-through hops skip it entirely — the
        single-verification rule, PROTOCOL.md).
        """
        if len(data) < HEADER_BYTES:
            raise ProtocolError(f"short NTCS message: {len(data)} bytes")
        words = shift_decode_u32s(data, HEADER_WORDS)
        if words[0] != MAGIC:
            raise ProtocolError(f"bad magic {words[0]:#x}")
        if verify:
            checksum = sum(words[:11]) & 0xFFFFFFFF
            if words[11] != checksum:
                raise ProtocolError(
                    f"header checksum mismatch ({words[11]:#x} != {checksum:#x})"
                )
        body_len = words[9]
        body = data[HEADER_BYTES:]
        if len(body) != body_len:
            raise ProtocolError(
                f"body length mismatch: header says {body_len}, got {len(body)}"
            )
        msg = cls(
            kind=words[1],
            flags=words[2],
            src=Address.from_u32_pair(words[3], words[4]),
            dst=Address.from_u32_pair(words[5], words[6]),
            type_id=words[7],
            corr_id=words[8],
            aux=words[10],
            body=body,
        )
        msg._frame = bytes(data)
        msg._checksum_deferred = not verify
        return msg

    def checksum_ok(self) -> bool:
        """Verify a deferred header checksum (idempotent; True when the
        checksum was already verified at decode or the message was built
        locally)."""
        if not self._checksum_deferred:
            return True
        frame = self._frame
        if frame is None:
            # Mutated since decode: the cached frame (and with it the
            # received checksum word) is gone; nothing left to verify.
            self._checksum_deferred = False
            return True
        words = shift_decode_u32s(frame, HEADER_WORDS)
        ok = words[11] == sum(words[:11]) & 0xFFFFFFFF
        if ok:
            self._checksum_deferred = False
        return ok

    @property
    def checksum_pending(self) -> bool:
        """True while the header checksum has not been verified yet."""
        return self._checksum_deferred

    def __repr__(self) -> str:
        return (
            f"Msg({self.kind_name} {self.src}->{self.dst} type={self.type_id} "
            f"corr={self.corr_id} flags={self.flags:#x} body={len(self.body)}B)"
        )
