"""The Network Dependent Layer: local virtual circuits (paper Sec. 2.2).

The ND-Layer owns everything the paper localizes at the bottom of the
Nucleus:

* the module's communication resource (created at registration time),
* LVC open with retry ("there is no automatic relocation or recovery
  from failed channels (except for retry on open); notification is
  simply passed upward"),
* the UAdd → physical-address mapping, "either through the NSP-layer
  services, or by information exchanged between modules during the
  channel open protocol.  This information is then locally cached",
* the TAdd machinery for inbound connections from unregistered modules
  (Sec. 3.4).

LVCs "are limited to destinations supported directly by the local
IPCS" — crossing networks is the IP-Layer's job.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Union

from repro.errors import (
    AddressFault,
    ChannelClosed,
    ConnectionRefused,
    IpcsError,
    NetworkUnreachable,
    ProtocolError,
)
from repro.ntcs import message as m
from repro.ntcs.address import Address, blob_network
from repro.ntcs.protocol import T_LVC_HELLO, T_LVC_HELLO_ACK
from repro.ntcs.stdif import MessageChannel
from repro.util.counters import ND_FRAMES_FORWARDED, ND_TRAIN_FRAMES


# The LVC machine, model-checked by ntcsverify (pure literal).
# Anchored: state names must match this module's ``.state``
# strings.  An outbound circuit runs the HELLO handshake under
# ``open_timeout``; an inbound one sits in AWAIT_HELLO without a
# local timer (the *peer's* hello timeout bounds that wait — its
# close tears the transport, which surfaces here as a fault edge).
# Alongside it, the lvc-rx-queue machine declares the per-LVC
# receive-queue discipline (PROTOCOL.md §12): every arrival that grows
# the queue is balanced by a consume or an overload drop, so the MDL005
# queue-drain rule can prove the queue is not grow-only.
PROTOCOL_MACHINES = (
    {
        "name": "lvc",
        "anchor": True,
        "initial": "NEW",
        "terminal": ("CLOSED",),
        "states": {
            "NEW": {
                "edges": (
                    {"event": "local connect", "next": "HELLO_SENT"},
                    {"event": "local accept", "next": "AWAIT_HELLO"},
                ),
            },
            "HELLO_SENT": {
                "waits": True,
                "edges": (
                    {"event": "recv LVC_HELLO_ACK", "next": "OPEN"},
                    {"event": "timeout open_timeout", "next": "CLOSED"},
                ),
            },
            "AWAIT_HELLO": {
                "edges": (
                    {"event": "recv LVC_HELLO", "next": "OPEN"},
                    {"event": "local transport_fault", "next": "CLOSED"},
                ),
            },
            "OPEN": {
                "edges": (
                    {"event": "send DATA", "next": "OPEN", "progress": True},
                    {"event": "recv DATA", "next": "OPEN", "progress": True},
                    {"event": "local close", "next": "CLOSED"},
                    {"event": "local transport_fault", "next": "CLOSED"},
                ),
            },
            "CLOSED": {},
        },
    },
    {
        "name": "lvc-rx-queue",
        "initial": "PUMPING",
        "terminal": (),
        "states": {
            "PUMPING": {
                "edges": (
                    {"event": "recv DATA", "next": "PUMPING",
                     "queue": "+lvcq"},
                    {"event": "local consume", "next": "PUMPING",
                     "queue": "-lvcq", "progress": True},
                    {"event": "local overload_drop_connectionless",
                     "next": "PUMPING", "queue": "-lvcq"},
                ),
            },
        },
    },
)


class Lvc:
    """One local virtual circuit, as seen above the STD-IF."""

    _next_id = 0

    def __init__(self, mchan: MessageChannel, inbound: bool):
        Lvc._next_id += 1
        self.lvc_id = Lvc._next_id
        self.mchan = mchan
        self.inbound = inbound
        self.state = "NEW"  # NEW / HELLO_SENT / AWAIT_HELLO / OPEN / CLOSED
        self.peer_addr: Optional[Address] = None
        self.peer_mtype_name: str = ""
        self.peer_blob: str = ""
        self.close_reason: Optional[str] = None
        self.messages_sent = 0
        self.messages_received = 0
        # Flow-control accounting (PROTOCOL.md §12): how many of the
        # LCM receive queue's messages arrived over this circuit, and
        # the deepest that attribution has ever been.  Maintained by
        # the layers above (LCM queues, IP credits); kept here because
        # the LVC is the unit whose memory the watermarks bound.
        self.rx_depth = 0
        self.rx_high_water = 0
        # Optional fast-path hook (installed by the Gateway on spliced
        # LVCs): called with each raw inbound frame *before* decoding;
        # returning True means the frame was consumed (forwarded) and
        # the normal decode/dispatch path is skipped.
        self.frame_tap: Optional[Callable[[bytes], bool]] = None
        # Train form of the tap (PROTOCOL.md §13): called with the
        # pending frame sequence; returns how many frames of its prefix
        # it consumed (spliced through in one batch).  Must never pump.
        self.frame_tap_train: Optional[Callable[[Sequence], int]] = None
        # Pending inbound train items: raw frames, plus already-decoded
        # messages the batch decoder put back in their frames' places.
        # One shared deque per LVC keeps delivery in arrival order even
        # when an upcall blocks mid-walk and more frames arrive
        # re-entrantly (see NdLayer._on_raw_train).
        self.rx_train: Deque[Union[bytes, "m.Msg"]] = deque()

    @property
    def open(self) -> bool:
        return self.state == "OPEN" and self.mchan.open

    def __repr__(self) -> str:
        direction = "in" if self.inbound else "out"
        return f"Lvc#{self.lvc_id}({direction}, {self.state}, peer={self.peer_addr})"


class NdLayer:
    """The bottom Nucleus layer of one module."""

    LAYER = "ND"
    OPEN_RETRIES = 2  # "retry on open" is the ND-Layer's only recovery

    def __init__(self, nucleus):
        self.nucleus = nucleus
        self.driver = nucleus.driver
        self.listen_blob: Optional[str] = None
        self._lvcs: Dict[int, Lvc] = {}
        # Upcalls installed by the IP-Layer.
        self._accept_upcall: Callable[[Lvc], None] = lambda lvc: None
        self._message_upcall: Callable[[Lvc, m.Msg], None] = lambda lvc, msg: None
        self._fault_upcall: Callable[[Lvc, str], None] = lambda lvc, reason: None

    # -- wiring -------------------------------------------------------------

    def set_upcalls(self, accept, message, fault) -> None:
        """Install the IP-Layer's accept/message/fault callbacks."""
        self._accept_upcall = accept
        self._message_upcall = message
        self._fault_upcall = fault

    # -- resource creation -----------------------------------------------------

    def create_resource(self, binding: Optional[str] = None) -> str:
        """Create this module's listening endpoint (TCP port / MBX
        mailbox) and return its blob.  ``binding`` pins a well-known
        port/pathname."""
        if self.listen_blob is None:
            self.listen_blob = self.driver.listen(
                self.nucleus.process, self._on_accept, binding=binding
            )
        return self.listen_blob

    # -- active open ------------------------------------------------------------

    def open_lvc(self, dst: Address, blob: Optional[str] = None,
                 reason: str = "") -> Lvc:
        """Open an LVC to ``dst``, resolving its physical address if no
        blob was supplied, and run the HELLO handshake.  Blocking."""
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, "open", reason=reason or f"open to {dst}"):
            if blob is None:
                blob = self._resolve_blob(dst)
            if blob_network(blob) != self.driver.network_name:
                raise AddressFault(
                    dst, f"blob {blob!r} is not on local network "
                    f"{self.driver.network_name!r}"
                )
            mchan = self._connect_with_retry(dst, blob)
            lvc = Lvc(mchan, inbound=False)
            self._install(lvc)
            hello = m.Msg(
                kind=m.LVC_HELLO,
                src=nucleus.self_addr,
                dst=dst,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
            )
            hello.type_id, hello.body = nucleus.pack_internal("lvc_hello", {
                "mtype": nucleus.mtype.name,
                "listen_blob": self.listen_blob or "",
                "network": self.driver.network_name,
            })
            lvc.state = "HELLO_SENT"
            self.send(lvc, hello)
            nucleus.scheduler.pump_until(
                lambda: lvc.state != "HELLO_SENT",
                timeout=nucleus.config.open_timeout,
                what=f"LVC hello to {dst}",
            )
            if lvc.state != "OPEN":
                self.close(lvc, "hello handshake failed")
                raise AddressFault(dst, "no HELLO_ACK from peer")
            # Cache what the open protocol taught us (Sec. 3.3).
            if not dst.temporary and lvc.peer_blob:
                self.nucleus.addr_cache.store(dst, lvc.peer_blob, lvc.peer_mtype_name)
            return lvc

    def _connect_with_retry(self, dst: Address, blob: str) -> MessageChannel:
        last_error: Optional[Exception] = None
        for attempt in range(self.OPEN_RETRIES):
            try:
                return self.driver.connect(
                    self.nucleus.process, blob,
                    timeout=self.nucleus.config.open_timeout,
                )
            except (ConnectionRefused, NetworkUnreachable) as exc:
                last_error = exc
                self.nucleus.counters.incr("nd_open_retries")
        # A stale or dead physical address is exactly an address fault
        # (Sec. 3.5); notification is passed upward.  Naming-service
        # addresses are exempt from invalidation: they are well-known
        # constants, and losing them would force the layers below the
        # NSP to locate the naming service *through* the naming service
        # (the Sec. 6.3 recursion, in yet another guise).
        if dst not in self.nucleus.ns_addresses:
            self.nucleus.addr_cache.invalidate(dst)
        raise AddressFault(dst, str(last_error))

    def _resolve_blob(self, dst: Address) -> str:
        nucleus = self.nucleus
        entry = nucleus.addr_cache.lookup(dst)
        if entry is not None:
            return entry.blob
        wk_blob = nucleus.wellknown.blob_for(dst, self.driver.network_name)
        if wk_blob is not None:
            return wk_blob
        if dst.temporary:
            raise AddressFault(dst, "temporary addresses cannot be located")
        # Recursive resolution through the naming service (Sec. 3).
        record = nucleus.require_nsp().resolve_uadd(dst)
        blob = record.blob_on(self.driver.network_name)
        if blob is None:
            raise AddressFault(
                dst, f"no physical address on network {self.driver.network_name!r}"
            )
        nucleus.addr_cache.store(dst, blob, record.mtype_name)
        return blob

    # -- data path ------------------------------------------------------------

    def send(self, lvc: Lvc, msg: m.Msg) -> None:
        """Transmit one encoded message over an open LVC."""
        self._transmit(lvc, msg.encode())

    def send_frame(self, lvc: Lvc, frame: bytes) -> None:
        """Transmit an already-encoded frame verbatim — the gateway
        splice path forwards the received bytes without rebuilding a
        :class:`~repro.ntcs.message.Msg` (PROTOCOL.md, "Fast path and
        wire invariance")."""
        self._transmit(lvc, frame)
        self.nucleus.counters.incr(ND_FRAMES_FORWARDED)

    def send_frames(self, lvc: Lvc, frames: Sequence[bytes]) -> None:
        """Transmit a whole train of already-encoded frames back to
        back — the gateway splices them through with one counter update,
        and the netsim coalesces them into one delivery event."""
        for frame in frames:
            self._transmit(lvc, frame)
        self.nucleus.counters.incr(ND_FRAMES_FORWARDED, len(frames))

    def _transmit(self, lvc: Lvc, frame: bytes) -> None:
        if not lvc.mchan.open:
            raise ChannelClosed(f"{lvc} is closed ({lvc.close_reason})")
        try:
            lvc.mchan.send_message(frame)
        except IpcsError as exc:
            raise ChannelClosed(str(exc))
        lvc.messages_sent += 1
        self.nucleus.counters.incr("nd_messages_sent")

    def close(self, lvc: Lvc, reason: str) -> None:
        """Close an LVC locally (the IPCS notifies the peer)."""
        if lvc.state == "CLOSED":
            return
        lvc.state = "CLOSED"
        lvc.close_reason = reason
        lvc.mchan.close()
        self._lvcs.pop(lvc.lvc_id, None)

    # -- inbound ------------------------------------------------------------

    def _install(self, lvc: Lvc) -> None:
        self._lvcs[lvc.lvc_id] = lvc
        lvc.mchan.set_message_handler(lambda raw: self._on_raw(lvc, raw))
        lvc.mchan.set_train_handler(lambda raws: self._on_raw_train(lvc, raws))
        lvc.mchan.set_close_handler(lambda reason: self._on_closed(lvc, reason))

    def _on_accept(self, mchan: MessageChannel) -> None:
        lvc = Lvc(mchan, inbound=True)
        lvc.state = "AWAIT_HELLO"
        self._install(lvc)

    def _on_raw(self, lvc: Lvc, raw: bytes) -> None:
        # Structure (length/magic/body length) is validated here, but
        # the header-checksum comparison is deferred to the terminating
        # endpoint: HELLO traffic terminates in this layer, so it is
        # verified below; everything else is verified by the IP-Layer
        # when it dispatches — never on gateway pass-through hops
        # (PROTOCOL.md, "Fast path and wire invariance").
        tap = lvc.frame_tap
        if tap is not None and tap(raw):
            # Spliced pass-through: the Gateway forwarded the raw frame
            # from its header view alone — no Msg was materialized.
            lvc.messages_received += 1
            return
        try:
            msg = m.Msg.decode(raw, verify=False)
        except ProtocolError:
            self._malformed(lvc)
            return
        self._dispatch_decoded(lvc, msg)

    def _dispatch_decoded(self, lvc: Lvc, msg: m.Msg) -> None:
        """The post-decode half of :meth:`_on_raw`, shared with the
        train walk (whose messages were header-decoded in batch)."""
        lvc.messages_received += 1
        self.nucleus.trace(self.LAYER, "receive", caller="wire",
                           reason=msg.kind_name)
        if msg.kind in (m.LVC_HELLO, m.LVC_HELLO_ACK):
            if not msg.checksum_ok():
                self._malformed(lvc)
                return
            if msg.kind == m.LVC_HELLO:
                self._on_hello(lvc, msg)
            else:
                self._on_hello_ack(lvc, msg)
        else:
            self._maybe_purge_tadd(lvc, msg)
            self._message_upcall(lvc, msg)

    def _on_raw_train(self, lvc: Lvc, raws: List[bytes]) -> None:
        """Deliver a frame train (PROTOCOL.md §13).

        Every pending item sits on the LVC's shared deque and is popped
        *before* its upcall, so a handler that blocks mid-walk — and
        receives more frames on this LVC re-entrantly — drains the same
        deque: delivery order is arrival order, exactly what the
        per-frame path produces.  Batch work happens on contiguous
        runs: a spliced LVC's gateway tap forwards its maximal prefix
        in one call, and a terminating run of raw frames is
        header-decoded with one struct call, the decoded messages
        taking their frames' places at the front of the deque.
        """
        nucleus = self.nucleus
        pending = lvc.rx_train
        pending.extend(raws)
        incr = nucleus.counters.incr
        nucleus.train_begin()
        try:
            while pending:
                if not lvc.mchan.open:
                    # Closed mid-walk (e.g. a malformed frame): the
                    # per-frame path drops the rest the same way.
                    pending.clear()
                    break
                head = pending[0]
                if type(head) is not bytes:
                    pending.popleft()
                    self._dispatch_decoded(lvc, head)
                    continue
                tap_train = lvc.frame_tap_train
                if tap_train is not None:
                    taken = tap_train(pending)
                    if taken:
                        for _ in range(taken):
                            pending.popleft()
                        lvc.messages_received += taken
                        incr(ND_TRAIN_FRAMES, taken)
                        continue
                    # Head not spliceable (control frame, dismantled
                    # splice, ...): one frame through the full path.
                    self._on_raw(lvc, pending.popleft())
                    continue
                run = 1
                n = len(pending)
                while run < n and type(pending[run]) is bytes:
                    run += 1
                if run > 1:
                    frames = [pending[i] for i in range(run)]
                    try:
                        msgs = m.decode_frames(frames)
                    except ProtocolError:
                        # Malformed somewhere in the run: the per-frame
                        # path keeps the error behavior identical.
                        self._on_raw(lvc, pending.popleft())
                        continue
                    for _ in range(run):
                        pending.popleft()
                    pending.extendleft(reversed(msgs))
                    incr(ND_TRAIN_FRAMES, run)
                    continue
                self._on_raw(lvc, pending.popleft())
        finally:
            nucleus.train_end()

    def _malformed(self, lvc: Lvc) -> None:
        self.nucleus.counters.incr("nd_malformed_messages")
        self.close(lvc, "malformed message")
        self._fault_upcall(lvc, "malformed message")

    def _on_hello(self, lvc: Lvc, msg: m.Msg) -> None:
        nucleus = self.nucleus
        values = nucleus.unpack_internal(T_LVC_HELLO, msg.body)
        if msg.src.temporary:
            # The source's TAdd is not unique here: assign our own
            # (Sec. 3.4, "each Nucleus layer assigns its own TAdd to
            # each incoming connection from a TAdd source").
            lvc.peer_addr = nucleus.tadds.allocate()
            nucleus.counters.incr("tadds_assigned_for_inbound")
        else:
            lvc.peer_addr = msg.src
            if values["listen_blob"]:
                nucleus.addr_cache.store(
                    msg.src, values["listen_blob"], values["mtype"]
                )
        lvc.peer_mtype_name = values["mtype"]
        lvc.peer_blob = values["listen_blob"]
        ack = m.Msg(
            kind=m.LVC_HELLO_ACK,
            src=nucleus.self_addr,
            dst=msg.src,
            flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
        )
        ack.type_id, ack.body = nucleus.pack_internal("lvc_hello_ack", {
            "mtype": nucleus.mtype.name,
            "listen_blob": self.listen_blob or "",
        })
        lvc.state = "OPEN"
        self.send(lvc, ack)
        self._accept_upcall(lvc)

    def _on_hello_ack(self, lvc: Lvc, msg: m.Msg) -> None:
        values = self.nucleus.unpack_internal(T_LVC_HELLO_ACK, msg.body)
        lvc.peer_mtype_name = values["mtype"]
        lvc.peer_blob = values["listen_blob"]
        if lvc.peer_addr is None:
            lvc.peer_addr = msg.src
        lvc.state = "OPEN"

    def _maybe_purge_tadd(self, lvc: Lvc, msg: m.Msg) -> None:
        """Sec. 3.4: "upon receipt of a message from a UAdd source, if
        the local tables still refer to an old TAdd, this is replaced
        with the new UAdd"."""
        if (
            lvc.peer_addr is not None
            and lvc.peer_addr.temporary
            and not msg.src.temporary
        ):
            old = lvc.peer_addr
            lvc.peer_addr = msg.src
            self.nucleus.addr_cache.replace_tadd(old, msg.src)
            self.nucleus.counters.incr("tadds_purged")
            self.nucleus.on_tadd_purged(old, msg.src)

    def _on_closed(self, lvc: Lvc, reason: str) -> None:
        if lvc.state == "CLOSED":
            return
        was_open = lvc.state == "OPEN"
        lvc.state = "CLOSED"
        lvc.close_reason = reason
        self._lvcs.pop(lvc.lvc_id, None)
        self.nucleus.counters.incr("nd_channel_faults")
        if was_open:
            # "Notification is simply passed upward."
            self._fault_upcall(lvc, reason)

    # -- introspection ---------------------------------------------------------

    def open_lvc_count(self) -> int:
        """Number of currently open LVCs."""
        return sum(1 for lvc in self._lvcs.values() if lvc.open)
