"""The Internet Protocol Layer: internet virtual circuits (paper Sec. 4).

"The IP-Layer, in conjunction with one or more Gateway modules,
provides internet virtual circuits (IVCs) across disjoint networks and
machines. IVCs are established either as a single LVC on the local
network, or as a chained set of LVCs linked through one or more
Gateways as required."

The internet scheme "decentralize[s] the circuit routing and
establishment, while centralizing the topological information in the
naming service": this layer only ever picks the *first* gateway toward
the destination network; each gateway in turn picks its own next hop
using the same naming-service queries ("used ... by both the IP-layer
and the Gateways themselves").  No inter-gateway routing protocol
exists.

This layer is also where transfer-mode selection happens for outgoing
application data: it is the lowest layer that knows the *end-to-end*
destination machine type (learned from the LVC hello on direct
circuits, from the IVC_OPEN_ACK on chained ones) — Sec. 5's "the
decision to apply them is left to the lowest layers, where the
destination machine type is visible".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.conversion.modes import encode_values
from repro.errors import (
    AddressFault,
    ChannelClosed,
    NoSuchAddress,
    RouteNotFound,
)
from repro.ntcs import message as m
from repro.ntcs.address import Address, blob_network
from repro.ntcs.ndlayer import Lvc
from repro.ntcs.protocol import (
    T_IVC_OPEN,
    T_IVC_OPEN_ACK,
    T_IVC_OPEN_NAK,
)
from repro.util.dispatch import handles

MAX_HOPS = 8

# The IVC endpoint machine, model-checked by ntcsverify (pure literal).
# Anchored: the state names must match the ``.state`` strings this
# module actually assigns/compares.  A direct circuit is constructed
# already in OPEN; a chained one starts in OPENING and leaves it on the
# end-to-end ACK/NAK, on the open timeout (which runs the normal close
# path), or on an LVC fault underneath.
PROTOCOL_MACHINE = {
    "name": "ivc-endpoint",
    "anchor": True,
    "initial": "OPENING",
    "terminal": ("CLOSED", "FAILED"),
    "states": {
        "OPENING": {
            "waits": True,
            "edges": (
                {"event": "recv IVC_OPEN_ACK", "next": "OPEN"},
                {"event": "recv IVC_OPEN_NAK", "next": "FAILED"},
                {"event": "timeout open_timeout", "next": "CLOSED"},
                {"event": "recv IVC_CLOSE", "next": "FAILED"},
                {"event": "local lvc_fault", "next": "FAILED"},
            ),
        },
        "OPEN": {
            "edges": (
                {"event": "send DATA", "next": "OPEN", "progress": True},
                {"event": "recv DATA", "next": "OPEN", "progress": True},
                {"event": "recv IVC_CLOSE", "next": "CLOSED"},
                {"event": "local close", "next": "CLOSED"},
                {"event": "local lvc_fault", "next": "CLOSED"},
            ),
        },
        "FAILED": {},
        "CLOSED": {},
    },
}


class Ivc:
    """One internet virtual circuit endpoint."""

    _next_id = 0

    def __init__(self, lvc: Lvc, peer_addr: Optional[Address], direct: bool):
        Ivc._next_id += 1
        self.ivc_id = Ivc._next_id
        self.lvc = lvc
        self.peer_addr = peer_addr
        self.peer_mtype_name = lvc.peer_mtype_name
        self.direct = direct
        self.state = "OPEN" if direct else "OPENING"
        self.nak_reason = ""

    @property
    def open(self) -> bool:
        return self.state == "OPEN" and self.lvc.open

    def __repr__(self) -> str:
        shape = "direct" if self.direct else "chained"
        return f"Ivc#{self.ivc_id}({shape}, {self.state}, peer={self.peer_addr})"


@dataclass
class _Plan:
    """How to reach a destination: directly, or via a first gateway."""

    direct: bool
    blob: str
    gw_uadd: Optional[Address] = None
    dst_network: str = ""


class IpLayer:
    """The middle Nucleus layer of one module."""

    LAYER = "IP"

    def __init__(self, nucleus):
        self.nucleus = nucleus
        self.nd = nucleus.nd
        self.nd.set_upcalls(
            accept=self._on_lvc_accept,
            message=self._on_lvc_message,
            fault=self._on_lvc_fault,
        )
        self._by_lvc: Dict[Lvc, Ivc] = {}
        # dst network -> (gateway uadd or None, gateway blob); cached so
        # a warmed-up system routes with no Name-Server traffic (E2).
        self.route_cache: Dict[str, Tuple[Optional[Address], str]] = {}
        # Which prime gateway we are currently using toward the Name
        # Server (rotated when one fails; Sec. 3.4's primes are plural).
        self._prime_index = 0
        # Gateways whose circuits recently failed (PROTOCOL.md §10):
        # route planning prefers paths avoiding them until a chained
        # open through one succeeds again.
        self._suspect_gateways: Set[Address] = set()
        self._deliver_upcall: Callable[[Ivc, m.Msg], None] = lambda ivc, msg: None
        self._fault_upcall: Callable[[Ivc, str], None] = lambda ivc, reason: None

    def set_upcalls(self, deliver, fault) -> None:
        """Install the LCM-Layer's deliver/fault callbacks."""
        self._deliver_upcall = deliver
        self._fault_upcall = fault

    @property
    def local_network(self) -> str:
        return self.nd.driver.network_name

    # -- circuit establishment -------------------------------------------------

    def open_ivc(self, dst: Address, reason: str = "") -> Ivc:
        """Establish an IVC to ``dst``.  Blocking; raises AddressFault
        or RouteNotFound on failure."""
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, "open", reason=reason or f"ivc to {dst}"):
            plan = self._plan(dst)
            if plan.direct:
                lvc = self.nd.open_lvc(dst, plan.blob, reason="direct ivc")
                ivc = Ivc(lvc, peer_addr=lvc.peer_addr or dst, direct=True)
                self._by_lvc[lvc] = ivc
                nucleus.counters.incr("ivc_direct_opened")
                return ivc
            # Chained: open the LVC to the first gateway, then run the
            # end-to-end IVC_OPEN handshake through it.
            gw_dst = plan.gw_uadd or nucleus.tadds.allocate()
            try:
                lvc = self.nd.open_lvc(gw_dst, plan.blob,
                                       reason="first gateway hop")
            except AddressFault as exc:
                # The cached first hop is dead: drop it so the retry
                # replans — from the naming service's current topology,
                # or, for the Name Server itself, the next prime gateway.
                self.route_cache.pop(plan.dst_network, None)
                self.note_gateway_fault(plan.gw_uadd)
                if dst == nucleus.wellknown.ns_uadd:
                    self._prime_index += 1
                raise AddressFault(dst, f"first-hop gateway unreachable: {exc}")
            ivc = Ivc(lvc, peer_addr=dst, direct=False)
            self._by_lvc[lvc] = ivc
            open_msg = m.Msg(
                kind=m.IVC_OPEN,
                src=nucleus.self_addr,
                dst=dst,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
                aux=0,
            )
            open_msg.type_id, open_msg.body = nucleus.pack_internal("ivc_open", {
                "dst_network": plan.dst_network,
                "src_mtype": nucleus.mtype.name,
                "src_listen_blob": self.nd.listen_blob or "",
            })
            self.nd.send(lvc, open_msg)
            nucleus.scheduler.pump_until(
                lambda: ivc.state != "OPENING",
                timeout=nucleus.config.open_timeout,
                what=f"ivc open to {dst}",
            )
            if ivc.state != "OPEN":
                failure = ivc.nak_reason or "ivc open timed out"
                self.close(ivc, failure, notify=False)
                # A NAK naming a stale route means the cached first hop
                # may be wrong; drop it so the retry replans.
                self.route_cache.pop(plan.dst_network, None)
                self.note_gateway_fault(plan.gw_uadd)
                if dst == nucleus.wellknown.ns_uadd:
                    self._prime_index += 1
                raise AddressFault(dst, failure)
            if plan.gw_uadd is not None:
                # A chained open through this gateway just worked: any
                # earlier suspicion of it is disproved.
                self._suspect_gateways.discard(plan.gw_uadd)
            nucleus.counters.incr("ivc_chained_opened")
            return ivc

    def _plan(self, dst: Address) -> _Plan:
        nucleus = self.nucleus
        local = self.local_network
        wellknown = nucleus.wellknown

        # Bootstrap case: the Name Server, reachable without any naming
        # service involvement (Sec. 3.4).
        if dst == wellknown.ns_uadd:
            blob = wellknown.blob_for(dst, local)
            if blob is not None:
                return _Plan(direct=True, blob=blob)
            prime = wellknown.prime_gateway_blob(local, self._prime_index)
            if prime is None:
                raise RouteNotFound(
                    f"no well-known path to the Name Server from {local!r}"
                )
            ns_nets = wellknown.ns_networks()
            return _Plan(direct=False, blob=prime, gw_uadd=None,
                         dst_network=ns_nets[0] if ns_nets else "")

        # Cached physical address?
        entry = nucleus.addr_cache.lookup(dst)
        if entry is not None:
            net = blob_network(entry.blob)
            if net == local:
                return _Plan(direct=True, blob=entry.blob)
            return self._gateway_plan(dst, net)

        if dst.temporary:
            raise AddressFault(dst, "temporary addresses cannot be located")
        if dst in nucleus.ns_addresses:
            # Never ask the naming service where the naming service is.
            raise AddressFault(
                dst, "naming-service address not in the well-known tables"
            )

        # Ask the naming service — the recursive path (Sec. 3.1).
        record = nucleus.require_nsp().resolve_uadd(dst)
        blob = record.blob_on(local)
        if blob is not None:
            nucleus.addr_cache.store(dst, blob, record.mtype_name)
            return _Plan(direct=True, blob=blob)
        if not record.addresses:
            raise NoSuchAddress(f"{dst} has no physical addresses registered")
        dst_network, remote_blob = record.addresses[0]
        nucleus.addr_cache.store(dst, remote_blob, record.mtype_name)
        return self._gateway_plan(dst, dst_network)

    def note_gateway_fault(self, gw_uadd: Optional[Address]) -> None:
        """Mark a first-hop gateway suspect (its circuit just failed):
        route planning prefers alternatives until a chained open through
        it succeeds again.  Gateways call this on next-hop failures so
        repaired sends replan around the dead hop."""
        if gw_uadd is not None:
            self._suspect_gateways.add(gw_uadd)

    def _gateway_plan(self, dst: Address, dst_network: str) -> _Plan:
        nucleus = self.nucleus
        local = self.local_network
        cached = self.route_cache.get(dst_network)
        if cached is not None:
            gw_uadd, gw_blob = cached
            return _Plan(direct=False, blob=gw_blob, gw_uadd=gw_uadd,
                         dst_network=dst_network)
        gw_uadd, gw_blob = self._first_hop(local, dst_network)
        self.route_cache[dst_network] = (gw_uadd, gw_blob)
        return _Plan(direct=False, blob=gw_blob, gw_uadd=gw_uadd,
                     dst_network=dst_network)

    def _first_hop(self, local: str, dst_network: str) -> Tuple[Address, str]:
        """Pick the first gateway toward ``dst_network`` from the
        topology registered in the naming service: a breadth-first
        search over gateway adjacency, computed locally from centrally
        stored information (Sec. 4.2).

        Suspect gateways (recent circuit faults) are avoided when an
        alternative path exists; when every path leads through a
        suspect, the search falls back to the full gateway set rather
        than declaring the destination unreachable."""
        gateways = self.nucleus.require_nsp().list_gateways()
        self.nucleus.counters.incr("topology_queries")
        if self._suspect_gateways:
            healthy = [gw for gw in gateways
                       if gw.uadd not in self._suspect_gateways]
            hop = self._bfs_first_hop(local, dst_network, healthy)
            if hop is not None:
                return hop
            self.nucleus.counters.incr("ip_suspect_fallbacks")
        hop = self._bfs_first_hop(local, dst_network, gateways)
        if hop is None:
            raise RouteNotFound(
                f"no gateway chain from {local!r} to {dst_network!r}")
        return hop

    def _bfs_first_hop(self, local: str, dst_network: str,
                       gateways: List) -> Optional[Tuple[Address, str]]:
        """One breadth-first pass over a candidate gateway set; None
        when no chain reaches ``dst_network``."""
        # networks adjacency: network -> [(gateway record, its networks)]
        frontier = [(local, None)]  # (network, first-hop gateway record)
        seen = {local}
        while frontier:
            next_frontier = []
            for network, first_hop in frontier:
                for gw in gateways:
                    nets = gw.networks()
                    if network not in nets:
                        continue
                    hop = first_hop or gw
                    for reachable in nets:
                        if reachable in seen:
                            continue
                        if reachable == dst_network:
                            blob = hop.blob_on(local)
                            if blob is None:
                                continue
                            return hop.uadd, blob
                        seen.add(reachable)
                        next_frontier.append((reachable, hop))
            frontier = next_frontier
        return None

    # -- data path ---------------------------------------------------------------

    def send_values(self, ivc: Ivc, msg: m.Msg, type_id: int, values: dict,
                    force_mode: Optional[int] = None) -> None:
        """Encode application values for ``ivc``'s end-to-end peer
        machine type, then transmit."""
        nucleus = self.nucleus
        dst_mtype = nucleus.mtype_by_name(ivc.peer_mtype_name)
        msg.type_id = type_id
        mode, wire = encode_values(
            nucleus.registry, type_id, values,
            src=nucleus.mtype, dst=dst_mtype, mode=force_mode,
        )
        msg.set_mode(mode)
        msg.body = wire
        self.send_raw(ivc, msg)

    def send_raw(self, ivc: Ivc, msg: m.Msg) -> None:
        """Transmit an already-encoded message over an IVC."""
        if not ivc.open:
            raise ChannelClosed(f"{ivc} is not open")
        self.nd.send(ivc.lvc, msg)

    def close(self, ivc: Ivc, reason: str, notify: bool = True) -> None:
        """Close an IVC (optionally notifying the peer with IVC_CLOSE)."""
        if ivc.state == "CLOSED":
            return
        if notify and ivc.open:
            close_msg = m.Msg(
                kind=m.IVC_CLOSE,
                src=self.nucleus.self_addr,
                dst=ivc.peer_addr or self.nucleus.self_addr,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
            )
            close_msg.type_id, close_msg.body = self.nucleus.pack_internal(
                "ivc_close", {"reason": reason[:90]}
            )
            try:
                self.nd.send(ivc.lvc, close_msg)
            except ChannelClosed:
                # The channel died before the courtesy close got out.
                self.nucleus.counters.incr("ip_close_notify_lost")
        ivc.state = "CLOSED"
        self._by_lvc.pop(ivc.lvc, None)
        self.nd.close(ivc.lvc, reason)

    # -- upcalls from the ND-Layer ------------------------------------------------

    def _on_lvc_accept(self, lvc: Lvc) -> None:
        # Until proven otherwise this inbound circuit is a direct IVC;
        # an IVC_OPEN arriving on it upgrades it to a chained endpoint.
        ivc = Ivc(lvc, peer_addr=lvc.peer_addr, direct=True)
        self._by_lvc[lvc] = ivc

    def _on_lvc_message(self, lvc: Lvc, msg: m.Msg) -> None:
        nucleus = self.nucleus
        gateway = nucleus.gateway_handler
        if gateway is not None and gateway.handle(nucleus, lvc, msg):
            return
        ivc = self._by_lvc.get(lvc)
        if ivc is None:
            return
        # This message terminates here: settle the checksum deferred by
        # the ND-Layer (once end-to-end, not once per hop).
        if not msg.checksum_ok():
            nucleus.counters.incr("nd_malformed_messages")
            self._teardown(ivc, "header checksum mismatch")
            return
        if msg.kind == m.IVC_OPEN:
            self._on_ivc_open_as_endpoint(ivc, msg)
        elif msg.kind == m.IVC_OPEN_ACK:
            values = nucleus.unpack_internal(T_IVC_OPEN_ACK, msg.body)
            ivc.peer_mtype_name = values["dst_mtype"]
            ivc.state = "OPEN"
        elif msg.kind == m.IVC_OPEN_NAK:
            values = nucleus.unpack_internal(T_IVC_OPEN_NAK, msg.body)
            ivc.nak_reason = values["reason"]
            ivc.state = "FAILED"
        elif msg.kind == m.IVC_CLOSE:
            self._teardown(ivc, "closed by remote")
        else:
            self._deliver_upcall(ivc, msg)

    def _on_ivc_open_as_endpoint(self, ivc: Ivc, msg: m.Msg) -> None:
        """The final destination of a chained circuit: record the
        originator's identity/machine type and acknowledge end-to-end."""
        nucleus = self.nucleus
        values = nucleus.unpack_internal(T_IVC_OPEN, msg.body)
        if not nucleus.is_self(msg.dst):
            # A chained open for someone else arriving at a plain module:
            # only gateways may forward.
            nucleus.counters.incr("ivc_open_refused_not_gateway")
            nak = m.Msg(
                kind=m.IVC_OPEN_NAK, src=nucleus.self_addr, dst=msg.src,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
            )
            nak.type_id, nak.body = nucleus.pack_internal(
                "ivc_open_nak", {"reason": "not a gateway and not the destination"}
            )
            self.nd.send(ivc.lvc, nak)
            return
        if msg.src.temporary:
            ivc.peer_addr = nucleus.tadds.allocate()
        else:
            ivc.peer_addr = msg.src
            if values["src_listen_blob"]:
                nucleus.addr_cache.store(
                    msg.src, values["src_listen_blob"], values["src_mtype"]
                )
        ivc.peer_mtype_name = values["src_mtype"]
        ivc.direct = False
        ack = m.Msg(
            kind=m.IVC_OPEN_ACK, src=nucleus.self_addr, dst=msg.src,
            flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
        )
        ack.type_id, ack.body = nucleus.pack_internal(
            "ivc_open_ack", {"dst_mtype": nucleus.mtype.name}
        )
        self.nd.send(ivc.lvc, ack)

    def _on_lvc_fault(self, lvc: Lvc, reason: str) -> None:
        gateway = self.nucleus.gateway_handler
        if gateway is not None and gateway.on_fault(self.nucleus, lvc, reason):
            return
        ivc = self._by_lvc.get(lvc)
        if ivc is not None:
            self._teardown(ivc, reason)

    @handles("ivc_close")
    def _teardown(self, ivc: Ivc, reason: str) -> None:
        if ivc.state == "CLOSED":
            return
        was_opening = ivc.state == "OPENING"
        ivc.state = "FAILED" if was_opening else "CLOSED"
        ivc.nak_reason = ivc.nak_reason or reason
        self._by_lvc.pop(ivc.lvc, None)
        self.nd.close(ivc.lvc, reason)
        if not was_opening:
            # "Notification is simply passed upward" — the LCM-Layer
            # owns relocation and recovery.
            self._fault_upcall(ivc, reason)

    # -- introspection -----------------------------------------------------------

    def open_ivc_count(self) -> int:
        """Number of currently open IVCs."""
        return sum(1 for ivc in self._by_lvc.values() if ivc.open)
