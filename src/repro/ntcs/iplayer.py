"""The Internet Protocol Layer: internet virtual circuits (paper Sec. 4).

"The IP-Layer, in conjunction with one or more Gateway modules,
provides internet virtual circuits (IVCs) across disjoint networks and
machines. IVCs are established either as a single LVC on the local
network, or as a chained set of LVCs linked through one or more
Gateways as required."

The internet scheme "decentralize[s] the circuit routing and
establishment, while centralizing the topological information in the
naming service": this layer only ever picks the *first* gateway toward
the destination network; each gateway in turn picks its own next hop
using the same naming-service queries ("used ... by both the IP-layer
and the Gateways themselves").  No inter-gateway routing protocol
exists.

This layer is also where transfer-mode selection happens for outgoing
application data: it is the lowest layer that knows the *end-to-end*
destination machine type (learned from the LVC hello on direct
circuits, from the IVC_OPEN_ACK on chained ones) — Sec. 5's "the
decision to apply them is left to the lowest layers, where the
destination machine type is visible".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.conversion.modes import encode_values
from repro.errors import (
    AddressFault,
    ChannelClosed,
    DestinationUnavailable,
    NoSuchAddress,
    RouteNotFound,
    SendWouldBlock,
)
from repro.ntcs import message as m
from repro.ntcs.address import Address, blob_network
from repro.ntcs.flow import FlowState
from repro.ntcs.ndlayer import Lvc
from repro.ntcs.protocol import (
    T_CREDIT_GRANT,
    T_CREDIT_PROBE,
    T_IVC_OPEN,
    T_IVC_OPEN_ACK,
    T_IVC_OPEN_NAK,
)
from repro.util.counters import (
    IP_CREDIT_GRANTS,
    IP_CREDIT_PROBES,
    IP_CREDIT_RESYNCS,
    IP_CREDIT_STALLS,
    LVC_RX_QUEUE_HIGH_WATER,
)
from repro.util.dispatch import handles

MAX_HOPS = 8

# How many credit probes a zero-credit sender issues (each waiting
# ``flow_probe_timeout`` virtual seconds for a grant) before the send
# fails as destination-unavailable (PROTOCOL.md §12).
FLOW_PROBE_RETRIES = 3

# The IVC endpoint machine, model-checked by ntcsverify (pure literal).
# Anchored: the state names must match the ``.state`` strings this
# module actually assigns/compares.  A direct circuit is constructed
# already in OPEN; a chained one starts in OPENING and leaves it on the
# end-to-end ACK/NAK, on the open timeout (which runs the normal close
# path), or on an LVC fault underneath.
# Alongside it, the ivc-flow machine declares the sender half of the
# credit protocol (PROTOCOL.md §12): every send grows the in-flight
# ledger, every advertisement drains it, and a zero-credit sender
# stalls behind a bounded, timed probe loop — never an unbounded wait.
PROTOCOL_MACHINES = (
    {
        "name": "ivc-endpoint",
        "anchor": True,
        "initial": "OPENING",
        "terminal": ("CLOSED", "FAILED"),
        "states": {
            "OPENING": {
                "waits": True,
                "edges": (
                    {"event": "recv IVC_OPEN_ACK", "next": "OPEN"},
                    {"event": "recv IVC_OPEN_NAK", "next": "FAILED"},
                    {"event": "timeout open_timeout", "next": "CLOSED"},
                    {"event": "recv IVC_CLOSE", "next": "FAILED"},
                    {"event": "local lvc_fault", "next": "FAILED"},
                ),
            },
            "OPEN": {
                "edges": (
                    {"event": "send DATA", "next": "OPEN", "progress": True},
                    {"event": "recv DATA", "next": "OPEN", "progress": True},
                    {"event": "recv IVC_CLOSE", "next": "CLOSED"},
                    {"event": "local close", "next": "CLOSED"},
                    {"event": "local lvc_fault", "next": "CLOSED"},
                ),
            },
            "FAILED": {},
            "CLOSED": {},
        },
    },
    {
        "name": "ivc-flow",
        "initial": "READY",
        "terminal": ("CLOSED",),
        "states": {
            "READY": {
                "edges": (
                    {"event": "send DATA", "next": "READY",
                     "queue": "+inflight", "progress": True},
                    {"event": "recv CREDIT_GRANT", "next": "READY",
                     "queue": "-inflight", "progress": True},
                    {"event": "local credit_exhausted", "next": "STALLED"},
                    {"event": "local close", "next": "CLOSED"},
                ),
            },
            "STALLED": {
                "waits": True,
                "edges": (
                    {"event": "recv CREDIT_GRANT", "next": "READY",
                     "queue": "-inflight", "progress": True},
                    {"event": "timeout flow_probe_timeout", "next": "STALLED",
                     "bounded": "FLOW_PROBE_RETRIES"},
                    {"event": "local give_up", "next": "CLOSED"},
                ),
            },
            "CLOSED": {},
        },
    },
)


class Ivc:
    """One internet virtual circuit endpoint."""

    _next_id = 0

    def __init__(self, lvc: Lvc, peer_addr: Optional[Address], direct: bool):
        Ivc._next_id += 1
        self.ivc_id = Ivc._next_id
        self.lvc = lvc
        self.peer_addr = peer_addr
        self.peer_mtype_name = lvc.peer_mtype_name
        self.direct = direct
        self.state = "OPEN" if direct else "OPENING"
        self.nak_reason = ""
        # Credit ledger (PROTOCOL.md §12); None when flow control is
        # off.  Installed by the IP-Layer at construction, never
        # carried across a reopen — a fresh circuit starts fresh.
        self.flow: Optional[FlowState] = None

    @property
    def open(self) -> bool:
        return self.state == "OPEN" and self.lvc.open

    def __repr__(self) -> str:
        shape = "direct" if self.direct else "chained"
        return f"Ivc#{self.ivc_id}({shape}, {self.state}, peer={self.peer_addr})"


@dataclass
class _Plan:
    """How to reach a destination: directly, or via a first gateway."""

    direct: bool
    blob: str
    gw_uadd: Optional[Address] = None
    dst_network: str = ""


class IpLayer:
    """The middle Nucleus layer of one module."""

    LAYER = "IP"

    def __init__(self, nucleus):
        self.nucleus = nucleus
        self.nd = nucleus.nd
        self.nd.set_upcalls(
            accept=self._on_lvc_accept,
            message=self._on_lvc_message,
            fault=self._on_lvc_fault,
        )
        self._by_lvc: Dict[Lvc, Ivc] = {}
        # dst network -> (gateway uadd or None, gateway blob); cached so
        # a warmed-up system routes with no Name-Server traffic (E2).
        self.route_cache: Dict[str, Tuple[Optional[Address], str]] = {}
        # Which prime gateway we are currently using toward the Name
        # Server (rotated when one fails; Sec. 3.4's primes are plural).
        self._prime_index = 0
        # Gateways whose circuits recently failed (PROTOCOL.md §10):
        # route planning prefers paths avoiding them until a chained
        # open through one succeeds again.
        self._suspect_gateways: Set[Address] = set()
        self._deliver_upcall: Callable[[Ivc, m.Msg], None] = lambda ivc, msg: None
        self._fault_upcall: Callable[[Ivc, str], None] = lambda ivc, reason: None

    def set_upcalls(self, deliver, fault) -> None:
        """Install the LCM-Layer's deliver/fault callbacks."""
        self._deliver_upcall = deliver
        self._fault_upcall = fault

    @property
    def local_network(self) -> str:
        return self.nd.driver.network_name

    # -- circuit establishment -------------------------------------------------

    def open_ivc(self, dst: Address, reason: str = "") -> Ivc:
        """Establish an IVC to ``dst``.  Blocking; raises AddressFault
        or RouteNotFound on failure."""
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, "open", reason=reason or f"ivc to {dst}"):
            plan = self._plan(dst)
            if plan.direct:
                lvc = self.nd.open_lvc(dst, plan.blob, reason="direct ivc")
                ivc = Ivc(lvc, peer_addr=lvc.peer_addr or dst, direct=True)
                self._attach_flow(ivc)
                self._by_lvc[lvc] = ivc
                nucleus.counters.incr("ivc_direct_opened")
                return ivc
            # Chained: open the LVC to the first gateway, then run the
            # end-to-end IVC_OPEN handshake through it.
            gw_dst = plan.gw_uadd or nucleus.tadds.allocate()
            try:
                lvc = self.nd.open_lvc(gw_dst, plan.blob,
                                       reason="first gateway hop")
            except AddressFault as exc:
                # The cached first hop is dead: drop it so the retry
                # replans — from the naming service's current topology,
                # or, for the Name Server itself, the next prime gateway.
                self.route_cache.pop(plan.dst_network, None)
                self.note_gateway_fault(plan.gw_uadd)
                if dst == nucleus.wellknown.ns_uadd:
                    self._prime_index += 1
                raise AddressFault(dst, f"first-hop gateway unreachable: {exc}")
            ivc = Ivc(lvc, peer_addr=dst, direct=False)
            self._attach_flow(ivc)
            self._by_lvc[lvc] = ivc
            open_msg = m.Msg(
                kind=m.IVC_OPEN,
                src=nucleus.self_addr,
                dst=dst,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
                aux=0,
            )
            open_msg.type_id, open_msg.body = nucleus.pack_internal("ivc_open", {
                "dst_network": plan.dst_network,
                "src_mtype": nucleus.mtype.name,
                "src_listen_blob": self.nd.listen_blob or "",
            })
            self.nd.send(lvc, open_msg)
            nucleus.scheduler.pump_until(
                lambda: ivc.state != "OPENING",
                timeout=nucleus.config.open_timeout,
                what=f"ivc open to {dst}",
            )
            if ivc.state != "OPEN":
                failure = ivc.nak_reason or "ivc open timed out"
                self.close(ivc, failure, notify=False)
                # A NAK naming a stale route means the cached first hop
                # may be wrong; drop it so the retry replans.
                self.route_cache.pop(plan.dst_network, None)
                self.note_gateway_fault(plan.gw_uadd)
                if dst == nucleus.wellknown.ns_uadd:
                    self._prime_index += 1
                raise AddressFault(dst, failure)
            if plan.gw_uadd is not None:
                # A chained open through this gateway just worked: any
                # earlier suspicion of it is disproved.
                self._suspect_gateways.discard(plan.gw_uadd)
            nucleus.counters.incr("ivc_chained_opened")
            return ivc

    def _plan(self, dst: Address) -> _Plan:
        nucleus = self.nucleus
        local = self.local_network
        wellknown = nucleus.wellknown

        # Bootstrap case: the Name Server, reachable without any naming
        # service involvement (Sec. 3.4).
        if dst == wellknown.ns_uadd:
            blob = wellknown.blob_for(dst, local)
            if blob is not None:
                return _Plan(direct=True, blob=blob)
            prime = wellknown.prime_gateway_blob(local, self._prime_index)
            if prime is None:
                raise RouteNotFound(
                    f"no well-known path to the Name Server from {local!r}"
                )
            ns_nets = wellknown.ns_networks()
            return _Plan(direct=False, blob=prime, gw_uadd=None,
                         dst_network=ns_nets[0] if ns_nets else "")

        # Cached physical address?
        entry = nucleus.addr_cache.lookup(dst)
        if entry is not None:
            net = blob_network(entry.blob)
            if net == local:
                return _Plan(direct=True, blob=entry.blob)
            if dst in nucleus.ns_addresses:
                # A naming-fleet member (replica / shard server) on a
                # remote network: take the well-known prime route.
                # Planning through _first_hop would ask the naming
                # service for the topology — and never ask the naming
                # service where the naming service is (Sec. 3.4).
                prime = wellknown.prime_gateway_blob(local, self._prime_index)
                if prime is None:
                    raise RouteNotFound(
                        f"no well-known path to the naming fleet "
                        f"from {local!r}"
                    )
                return _Plan(direct=False, blob=prime, gw_uadd=None,
                             dst_network=net)
            return self._gateway_plan(dst, net)

        if dst.temporary:
            raise AddressFault(dst, "temporary addresses cannot be located")
        if dst in nucleus.ns_addresses:
            # Never ask the naming service where the naming service is.
            raise AddressFault(
                dst, "naming-service address not in the well-known tables"
            )

        # Ask the naming service — the recursive path (Sec. 3.1).
        record = nucleus.require_nsp().resolve_uadd(dst)
        blob = record.blob_on(local)
        if blob is not None:
            nucleus.addr_cache.store(dst, blob, record.mtype_name)
            return _Plan(direct=True, blob=blob)
        if not record.addresses:
            raise NoSuchAddress(f"{dst} has no physical addresses registered")
        dst_network, remote_blob = record.addresses[0]
        nucleus.addr_cache.store(dst, remote_blob, record.mtype_name)
        return self._gateway_plan(dst, dst_network)

    def note_gateway_fault(self, gw_uadd: Optional[Address]) -> None:
        """Mark a first-hop gateway suspect (its circuit just failed):
        route planning prefers alternatives until a chained open through
        it succeeds again.  Gateways call this on next-hop failures so
        repaired sends replan around the dead hop."""
        if gw_uadd is not None:
            self._suspect_gateways.add(gw_uadd)

    def _gateway_plan(self, dst: Address, dst_network: str) -> _Plan:
        nucleus = self.nucleus
        local = self.local_network
        cached = self.route_cache.get(dst_network)
        if cached is not None:
            gw_uadd, gw_blob = cached
            return _Plan(direct=False, blob=gw_blob, gw_uadd=gw_uadd,
                         dst_network=dst_network)
        gw_uadd, gw_blob = self._first_hop(local, dst_network)
        self.route_cache[dst_network] = (gw_uadd, gw_blob)
        return _Plan(direct=False, blob=gw_blob, gw_uadd=gw_uadd,
                     dst_network=dst_network)

    def _first_hop(self, local: str, dst_network: str) -> Tuple[Address, str]:
        """Pick the first gateway toward ``dst_network`` from the
        topology registered in the naming service: a breadth-first
        search over gateway adjacency, computed locally from centrally
        stored information (Sec. 4.2).

        Suspect gateways (recent circuit faults) are avoided when an
        alternative path exists; when every path leads through a
        suspect, the search falls back to the full gateway set rather
        than declaring the destination unreachable."""
        gateways = self.nucleus.require_nsp().list_gateways()
        self.nucleus.counters.incr("topology_queries")
        if self._suspect_gateways:
            healthy = [gw for gw in gateways
                       if gw.uadd not in self._suspect_gateways]
            hop = self._bfs_first_hop(local, dst_network, healthy)
            if hop is not None:
                return hop
            self.nucleus.counters.incr("ip_suspect_fallbacks")
        hop = self._bfs_first_hop(local, dst_network, gateways)
        if hop is None:
            raise RouteNotFound(
                f"no gateway chain from {local!r} to {dst_network!r}")
        return hop

    def _bfs_first_hop(self, local: str, dst_network: str,
                       gateways: List) -> Optional[Tuple[Address, str]]:
        """One breadth-first pass over a candidate gateway set; None
        when no chain reaches ``dst_network``."""
        # networks adjacency: network -> [(gateway record, its networks)]
        frontier = [(local, None)]  # (network, first-hop gateway record)
        seen = {local}
        while frontier:
            next_frontier = []
            for network, first_hop in frontier:
                for gw in gateways:
                    nets = gw.networks()
                    if network not in nets:
                        continue
                    hop = first_hop or gw
                    for reachable in nets:
                        if reachable in seen:
                            continue
                        if reachable == dst_network:
                            blob = hop.blob_on(local)
                            if blob is None:
                                continue
                            return hop.uadd, blob
                        seen.add(reachable)
                        next_frontier.append((reachable, hop))
            frontier = next_frontier
        return None

    # -- data path ---------------------------------------------------------------

    def send_values(self, ivc: Ivc, msg: m.Msg, type_id: int, values: dict,
                    force_mode: Optional[int] = None,
                    block: bool = True) -> None:
        """Encode application values for ``ivc``'s end-to-end peer
        machine type, then transmit."""
        nucleus = self.nucleus
        dst_mtype = nucleus.mtype_by_name(ivc.peer_mtype_name)
        msg.type_id = type_id
        mode, wire = encode_values(
            nucleus.registry, type_id, values,
            src=nucleus.mtype, dst=dst_mtype, mode=force_mode,
        )
        msg.set_mode(mode)
        msg.body = wire
        self.send_raw(ivc, msg, block=block)

    def send_raw(self, ivc: Ivc, msg: m.Msg, block: bool = True) -> None:
        """Transmit an already-encoded message over an IVC.

        Flow control (PROTOCOL.md §12) runs here.  An application DATA
        message (not internal, not a reply) debits one credit; at zero
        credit the sender stalls on the run queue behind a bounded
        probe loop — or, with ``block=False`` or on a connectionless
        message, reports :class:`SendWouldBlock` instead of waiting.
        Every non-internal DATA message also piggybacks this end's
        cumulative consumed counter in the aux word, so steady
        bidirectional traffic needs no standalone credit frames at
        all."""
        if not ivc.open:
            raise ChannelClosed(f"{ivc} is not open")
        flow = ivc.flow
        if flow is not None and msg.kind == m.DATA and not msg.internal:
            if not msg.is_reply:
                if flow.credit <= 0:
                    if msg.connectionless or not block:
                        raise SendWouldBlock(
                            f"no flow-control credit on {ivc} "
                            f"({flow.tx_sent - flow.tx_consumed_seen} of "
                            f"{flow.window} unconsumed)"
                        )
                    self._stall_for_credit(ivc, flow)
                flow.debit()
            # Replies piggyback too: the reverse half of a call is the
            # cheapest carrier for this end's consumed counter.
            msg.aux = m.encode_credit(flow.advertised())
        self.nd.send(ivc.lvc, msg)

    # -- flow control (PROTOCOL.md §12) -------------------------------------------

    def _attach_flow(self, ivc: Ivc) -> None:
        cfg = self.nucleus.config
        if cfg.flow_control_enabled:
            ivc.flow = FlowState(cfg.flow_window)

    def _stall_for_credit(self, ivc: Ivc, flow: FlowState) -> None:
        """Park the sending module until the peer advertises credit:
        probe, then pump the run queue under the probe timeout — the
        reproduction's "block the caller, keep the system running"
        idiom (Sec. 6) — for at most FLOW_PROBE_RETRIES rounds."""
        nucleus = self.nucleus
        nucleus.counters.incr(IP_CREDIT_STALLS)
        flow.stalls += 1
        for _ in range(FLOW_PROBE_RETRIES):
            self._send_probe(ivc, flow)
            nucleus.scheduler.pump_until(
                lambda: flow.credit > 0 or not ivc.open,
                timeout=nucleus.config.flow_probe_timeout,
                what=f"credit on {ivc}",
            )
            if not ivc.open:
                raise ChannelClosed(f"{ivc} closed while stalled for credit")
            if flow.credit > 0:
                return
        raise DestinationUnavailable(
            f"no flow-control credit on {ivc} after {FLOW_PROBE_RETRIES} "
            f"probes ({flow.tx_sent - flow.tx_consumed_seen} unconsumed)"
        )

    def _send_probe(self, ivc: Ivc, flow: FlowState) -> None:
        """Tell the peer our cumulative sent counter and ask where its
        consumed counter is.  The aux word carries the same counter so
        gateways can track the direction's high watermark."""
        nucleus = self.nucleus
        probe = m.Msg(
            kind=m.CREDIT_PROBE,
            src=nucleus.self_addr,
            dst=ivc.peer_addr or nucleus.self_addr,
            flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
            aux=m.encode_credit(flow.tx_sent),
        )
        probe.type_id, probe.body = nucleus.pack_internal(
            "credit_probe", {"sent": flow.tx_sent}
        )
        self.nd.send(ivc.lvc, probe)
        nucleus.counters.incr(IP_CREDIT_PROBES)

    def _send_grant(self, ivc: Ivc, flow: FlowState) -> None:
        nucleus = self.nucleus
        advertised = flow.advertised()
        grant = m.Msg(
            kind=m.CREDIT_GRANT,
            src=nucleus.self_addr,
            dst=ivc.peer_addr or nucleus.self_addr,
            flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
            aux=m.encode_credit(advertised),
        )
        grant.type_id, grant.body = nucleus.pack_internal(
            "credit_grant", {"consumed": advertised, "window": flow.window}
        )
        flow.grant_owed = False
        self.nd.send(ivc.lvc, grant)
        nucleus.counters.incr(IP_CREDIT_GRANTS)

    def _on_credit_grant(self, ivc: Ivc, msg: m.Msg) -> None:
        flow = ivc.flow
        if flow is None:
            return
        # Prefer the aux-word advertisement: that is the copy a gateway
        # can clamp in place on the splice path (PROTOCOL.md §12), so
        # honoring it keeps the enforcement end-to-end.  The body is
        # the fallback for a grant whose aux was never stamped.
        advertised = m.decode_credit(msg.aux)
        if advertised is None:
            values = self.nucleus.unpack_internal(T_CREDIT_GRANT, msg.body)
            advertised = values["consumed"]
        flow.on_advertised(advertised)

    def _on_credit_probe(self, ivc: Ivc, msg: m.Msg) -> None:
        nucleus = self.nucleus
        values = nucleus.unpack_internal(T_CREDIT_PROBE, msg.body)
        flow = ivc.flow
        if flow is None:
            # Flow control is off on this end but the peer runs it:
            # answer with a full grant so a mixed deployment never
            # wedges.  (The all-off ablation sees no probes at all, so
            # its wire stays byte-identical.)
            grant = m.Msg(
                kind=m.CREDIT_GRANT,
                src=nucleus.self_addr,
                dst=ivc.peer_addr or nucleus.self_addr,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
                aux=m.encode_credit(values["sent"]),
            )
            grant.type_id, grant.body = nucleus.pack_internal(
                "credit_grant", {"consumed": values["sent"],
                                 "window": nucleus.config.flow_window}
            )
            self.nd.send(ivc.lvc, grant)
            nucleus.counters.incr(IP_CREDIT_GRANTS)
            return
        flow.on_probe(values["sent"])
        self._send_grant(ivc, flow)
        if flow.rx_queued > nucleus.config.effective_flow_low_watermark():
            # The grant could not have freed much: the receive queue is
            # still deep.  Owe the peer an unsolicited grant for when
            # consumption drains it past the low watermark.
            flow.grant_owed = True

    def note_arrival(self, ivc: Ivc, queued: bool) -> None:
        """LCM hook: one flow-debited message arrived on ``ivc``;
        ``queued`` when it entered the receive queue."""
        flow = ivc.flow
        if flow is None:
            return
        flow.on_arrival(queued)
        if queued:
            lvc = ivc.lvc
            lvc.rx_depth += 1
            if lvc.rx_depth > lvc.rx_high_water:
                lvc.rx_high_water = lvc.rx_depth
                self.nucleus.counters.record_max(
                    LVC_RX_QUEUE_HIGH_WATER, lvc.rx_depth)

    def note_consumed(self, ivc: Ivc, from_queue: bool = True) -> None:
        """LCM hook: one flow-debited message was disposed of (handler
        returned, ``receive()`` popped it, duplicate suppressed, or
        overload-dropped).  Sends the owed grant once the queue drains
        to the low watermark."""
        flow = ivc.flow
        if flow is None:
            return
        flow.on_consumed(from_queue)
        if from_queue:
            lvc = ivc.lvc
            if lvc.rx_depth > 0:
                lvc.rx_depth -= 1
        if self.nucleus.train_depth:
            # Mid-train (PROTOCOL.md §13): the credit debit above is
            # per-message, but the owed-grant check runs once per IVC
            # at the walk's end (or at the next blocking pump's entry,
            # whichever comes first — nothing can wait on it).
            self.nucleus.train_defer(
                ivc, lambda: self._maybe_send_owed_grant(ivc))
            return
        self._maybe_send_owed_grant(ivc)

    def _maybe_send_owed_grant(self, ivc: Ivc) -> None:
        """Send the owed grant once the queue drains to the low
        watermark — the check :meth:`note_consumed` runs per message
        (or once per frame train)."""
        flow = ivc.flow
        if (flow is not None and flow.grant_owed and ivc.open
                and flow.rx_queued
                <= self.nucleus.config.effective_flow_low_watermark()):
            self._send_grant(ivc, flow)

    def resync_credit(self, ivc: Optional[Ivc]) -> None:
        """After circuit repair (PROTOCOL.md §10): a freshly reopened
        circuit carries a fresh ledger and needs nothing, but a circuit
        that *survived* a fault window with messages in doubt must find
        out which of them the peer actually consumed — probe, and let
        the grant's loss reconciliation settle the ledger."""
        if ivc is None:
            return
        flow = ivc.flow
        if flow is None or not ivc.open:
            return
        if flow.tx_sent - flow.tx_consumed_seen > 1:
            self._send_probe(ivc, flow)
            self.nucleus.counters.incr(IP_CREDIT_RESYNCS)

    def close(self, ivc: Ivc, reason: str, notify: bool = True) -> None:
        """Close an IVC (optionally notifying the peer with IVC_CLOSE)."""
        if ivc.state == "CLOSED":
            return
        if notify and ivc.open:
            close_msg = m.Msg(
                kind=m.IVC_CLOSE,
                src=self.nucleus.self_addr,
                dst=ivc.peer_addr or self.nucleus.self_addr,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
            )
            close_msg.type_id, close_msg.body = self.nucleus.pack_internal(
                "ivc_close", {"reason": reason[:90]}
            )
            try:
                self.nd.send(ivc.lvc, close_msg)
            except ChannelClosed:
                # The channel died before the courtesy close got out.
                self.nucleus.counters.incr("ip_close_notify_lost")
        ivc.state = "CLOSED"
        self._by_lvc.pop(ivc.lvc, None)
        self.nd.close(ivc.lvc, reason)

    # -- upcalls from the ND-Layer ------------------------------------------------

    def _on_lvc_accept(self, lvc: Lvc) -> None:
        # Until proven otherwise this inbound circuit is a direct IVC;
        # an IVC_OPEN arriving on it upgrades it to a chained endpoint.
        ivc = Ivc(lvc, peer_addr=lvc.peer_addr, direct=True)
        self._attach_flow(ivc)
        self._by_lvc[lvc] = ivc

    def _on_lvc_message(self, lvc: Lvc, msg: m.Msg) -> None:
        nucleus = self.nucleus
        gateway = nucleus.gateway_handler
        if gateway is not None and gateway.handle(nucleus, lvc, msg):
            return
        ivc = self._by_lvc.get(lvc)
        if ivc is None:
            return
        # This message terminates here: settle the checksum deferred by
        # the ND-Layer (once end-to-end, not once per hop).
        if not msg.checksum_ok():
            nucleus.counters.incr("nd_malformed_messages")
            self._teardown(ivc, "header checksum mismatch")
            return
        if msg.kind == m.IVC_OPEN:
            self._on_ivc_open_as_endpoint(ivc, msg)
        elif msg.kind == m.IVC_OPEN_ACK:
            values = nucleus.unpack_internal(T_IVC_OPEN_ACK, msg.body)
            ivc.peer_mtype_name = values["dst_mtype"]
            ivc.state = "OPEN"
        elif msg.kind == m.IVC_OPEN_NAK:
            values = nucleus.unpack_internal(T_IVC_OPEN_NAK, msg.body)
            ivc.nak_reason = values["reason"]
            ivc.state = "FAILED"
        elif msg.kind == m.IVC_CLOSE:
            self._teardown(ivc, "closed by remote")
        elif msg.kind == m.CREDIT_GRANT:
            self._on_credit_grant(ivc, msg)
        elif msg.kind == m.CREDIT_PROBE:
            self._on_credit_probe(ivc, msg)
        else:
            flow = ivc.flow
            if flow is not None and msg.kind == m.DATA and not msg.internal:
                # Piggybacked advertisement: the peer's cumulative
                # consumed counter rides the aux word of its DATA.
                advertised = m.decode_credit(msg.aux)
                if advertised is not None:
                    flow.on_advertised(advertised)
            self._deliver_upcall(ivc, msg)

    def _on_ivc_open_as_endpoint(self, ivc: Ivc, msg: m.Msg) -> None:
        """The final destination of a chained circuit: record the
        originator's identity/machine type and acknowledge end-to-end."""
        nucleus = self.nucleus
        values = nucleus.unpack_internal(T_IVC_OPEN, msg.body)
        if not nucleus.is_self(msg.dst):
            # A chained open for someone else arriving at a plain module:
            # only gateways may forward.
            nucleus.counters.incr("ivc_open_refused_not_gateway")
            nak = m.Msg(
                kind=m.IVC_OPEN_NAK, src=nucleus.self_addr, dst=msg.src,
                flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
            )
            nak.type_id, nak.body = nucleus.pack_internal(
                "ivc_open_nak", {"reason": "not a gateway and not the destination"}
            )
            self.nd.send(ivc.lvc, nak)
            return
        if msg.src.temporary:
            ivc.peer_addr = nucleus.tadds.allocate()
        else:
            ivc.peer_addr = msg.src
            if values["src_listen_blob"]:
                nucleus.addr_cache.store(
                    msg.src, values["src_listen_blob"], values["src_mtype"]
                )
        ivc.peer_mtype_name = values["src_mtype"]
        ivc.direct = False
        ack = m.Msg(
            kind=m.IVC_OPEN_ACK, src=nucleus.self_addr, dst=msg.src,
            flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
        )
        ack.type_id, ack.body = nucleus.pack_internal(
            "ivc_open_ack", {"dst_mtype": nucleus.mtype.name}
        )
        self.nd.send(ivc.lvc, ack)

    def _on_lvc_fault(self, lvc: Lvc, reason: str) -> None:
        gateway = self.nucleus.gateway_handler
        if gateway is not None and gateway.on_fault(self.nucleus, lvc, reason):
            return
        ivc = self._by_lvc.get(lvc)
        if ivc is not None:
            self._teardown(ivc, reason)

    @handles("ivc_close")
    def _teardown(self, ivc: Ivc, reason: str) -> None:
        if ivc.state == "CLOSED":
            return
        was_opening = ivc.state == "OPENING"
        ivc.state = "FAILED" if was_opening else "CLOSED"
        ivc.nak_reason = ivc.nak_reason or reason
        self._by_lvc.pop(ivc.lvc, None)
        self.nd.close(ivc.lvc, reason)
        if not was_opening:
            # "Notification is simply passed upward" — the LCM-Layer
            # owns relocation and recovery.
            self._fault_upcall(ivc, reason)

    # -- introspection -----------------------------------------------------------

    def open_ivc_count(self) -> int:
        """Number of currently open IVCs."""
        return sum(1 for ivc in self._by_lvc.values() if ivc.open)
