"""The Logical Connection Maintenance Layer (paper Secs. 2.2 and 3.5).

"Its primary function is to relocate modules which may have moved, and
to recover from broken connections, though it also provides a
connectionless protocol.  No explicit open or close primitives are
provided at the Nucleus interface; messages are simply sent/received
directly to/from the desired destinations, with the underlying IVCs
being established as needed."

The address-fault handler implements the Sec. 3.5 recovery sequence:
local forwarding-address table, then a naming-service query for a
forwarding UAdd, then reconnection — plus the Sec. 6.3 *patch*: when
the faulted address is the Name Server itself, asking the naming
service would recurse forever ("until either the stack overflows, or
the connection can be reestablished"), so a patched LCM retries through
the well-known physical address instead.  The patch is configurable
specifically so experiment E9 can reproduce the unpatched failure.

Circuit repair (PROTOCOL.md §10) wraps the Sec. 3.5 machinery in a
bounded outer loop: when one relocation round exhausts (a mid-chain
gateway died, or the Name Server is briefly unreachable), the send
backs off — exponentially, with jitter drawn from the module's seeded
repair RNG — and replans from the naming service's current topology.
Delivery semantics survive repair: one logical call keeps one
correlation id across retries, and the receive side suppresses
redelivered requests (replaying the cached reply), so repair never
duplicates an application message and never silently reorders a
sender's stream.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Set, Tuple

from repro.conversion.modes import decode_body
from repro.errors import (
    AddressFault,
    ChannelClosed,
    ConnectionRefused,
    DestinationUnavailable,
    ModuleStillAlive,
    NameServerUnreachable,
    NetworkUnreachable,
    NoForwardingAddress,
    NoSuchAddress,
    ReplyTimeout,
    RouteNotFound,
    SendWouldBlock,
)
from repro.ntcs import message as m
from repro.ntcs.address import Address
from repro.ntcs.iplayer import Ivc
from repro.util.counters import DROP_CONNECTIONLESS, LCM_TRAIN_DRAINS
from repro.util.idgen import SequenceGenerator

# Conditions the send loop treats as "the address may be stale" — the
# address-fault handler decides between relocation and reconnection.
# RouteNotFound is included: a module may have relocated to a network
# we can currently reach even when its old network is unroutable.
_TRANSIENT = (AddressFault, ChannelClosed, ConnectionRefused,
              NetworkUnreachable, RouteNotFound)

# The LCM control loops, model-checked by ntcsverify (pure literals).
# Not anchored: these abstract the send/call/receive control flow, not
# a ``.state`` field.  Every retry cycle names the budget that bounds
# it (the name must exist in this module — MDL004 checks), the reply
# wait carries the call timeout (MDL002), and the receive queue pairs
# its fill edge with a draining edge (MDL005).
PROTOCOL_MACHINES = (
    {
        "name": "lcm-send-repair",
        "initial": "IDLE",
        "terminal": ("DELIVERED", "FAILED"),
        "states": {
            "IDLE": {
                "edges": (
                    {"event": "local send", "next": "ROUTING"},
                ),
            },
            "ROUTING": {
                "edges": (
                    {"event": "send DATA", "next": "DELIVERED"},
                    {"event": "local address_fault", "next": "BACKOFF"},
                ),
            },
            "BACKOFF": {
                "edges": (
                    {"event": "local repair_retry", "next": "ROUTING",
                     "bounded": "MAX_SEND_ATTEMPTS"},
                    {"event": "local give_up", "next": "FAILED"},
                ),
            },
            "DELIVERED": {},
            "FAILED": {},
        },
    },
    {
        "name": "lcm-call",
        "initial": "IDLE",
        "terminal": ("REPLIED", "FAILED"),
        "states": {
            "IDLE": {
                "edges": (
                    {"event": "send DATA", "next": "WAIT_REPLY"},
                ),
            },
            "WAIT_REPLY": {
                "waits": True,
                "edges": (
                    {"event": "recv DATA", "next": "REPLIED"},
                    {"event": "timeout call_timeout", "next": "RETRY"},
                ),
            },
            "RETRY": {
                "edges": (
                    {"event": "local resend", "next": "WAIT_REPLY",
                     "bounded": "call_retries"},
                    {"event": "local give_up", "next": "FAILED"},
                ),
            },
            "REPLIED": {},
            "FAILED": {},
        },
    },
    {
        "name": "lcm-rx-queue",
        "initial": "PUMPING",
        "terminal": (),
        "states": {
            "PUMPING": {
                "edges": (
                    {"event": "recv DATA", "next": "PUMPING",
                     "queue": "+rxq", "progress": True},
                    {"event": "local deliver", "next": "PUMPING",
                     "queue": "-rxq", "progress": True},
                ),
            },
        },
    },
)


@dataclass
class IncomingMessage:
    """One delivered application (or internal) message."""

    src: Address
    type_id: int
    type_name: str
    values: dict
    corr_id: int
    reply_expected: bool
    internal: bool
    connectionless: bool
    arrived_at: float
    mode: int
    # The circuit the message arrived on, so whoever disposes of a
    # queued message can credit it back (PROTOCOL.md §12).  None for
    # messages that never touched the flow ledger.
    ivc: Optional[Ivc] = None


@dataclass
class _PendingCall:
    dst: Address
    reply: Optional[IncomingMessage] = None
    error: Optional[str] = None

    @property
    def done(self) -> bool:
        return self.reply is not None or self.error is not None


class CallHandle:
    """An outstanding asynchronous call: poll :attr:`ready` or block in
    :meth:`result`."""

    def __init__(self, lcm: "LcmLayer", corr_id: int, pending: _PendingCall):
        self._lcm = lcm
        self.corr_id = corr_id
        self._pending = pending

    @property
    def ready(self) -> bool:
        return self._pending.done

    def result(self, timeout: Optional[float] = None) -> IncomingMessage:
        """Block until the reply arrives (or fail like a sync call)."""
        nucleus = self._lcm.nucleus
        timeout = timeout if timeout is not None else nucleus.config.call_timeout
        try:
            nucleus.scheduler.pump_until(
                lambda: self._pending.done, timeout=timeout,
                what=f"async reply from {self._pending.dst}",
            )
            if self._pending.reply is not None:
                return self._pending.reply
            if self._pending.error is not None:
                raise DestinationUnavailable(
                    f"call to {self._pending.dst}: {self._pending.error}"
                )
            raise ReplyTimeout(
                f"no reply from {self._pending.dst} within {timeout}s"
            )
        finally:
            self._lcm._pending.pop(self.corr_id, None)


class LcmLayer:
    """The top Nucleus layer of one module."""

    LAYER = "LCM"
    MAX_SEND_ATTEMPTS = 3
    # Bound on the served-request memory backing duplicate suppression.
    SERVED_LIMIT = 128

    def __init__(self, nucleus):
        self.nucleus = nucleus
        self.ip = nucleus.ip
        self.ip.set_upcalls(deliver=self._on_deliver, fault=self._on_fault)
        self._routes: Dict[Address, Ivc] = {}
        # Targets whose *established* circuit has faulted since the
        # last successful send: the next send that goes through to one
        # of them completed a circuit repair (PROTOCOL.md §10).  A
        # first-establishment hiccup never enters this set, so cold
        # starts and ordinary relocation-follows are not counted.
        self._faulted_targets: Set[Address] = set()
        # The local forwarding-address table (Sec. 3.5).
        self.forwarding: Dict[Address, Address] = {}
        self._pending: Dict[int, _PendingCall] = {}
        self._queue: Deque[IncomingMessage] = deque()
        self._handler: Optional[Callable[[IncomingMessage], None]] = None
        self._corr = SequenceGenerator()
        self._ns_fault_streak = 0
        # Duplicate suppression (PROTOCOL.md §10): requests already
        # accepted, keyed (src, corr_id) -> cached reply args, or None
        # while the handler is still running.  Bounded FIFO so a
        # long-lived server forgets the oldest conversations first.
        self._served: Dict[Tuple[Address, int], Optional[tuple]] = {}
        self._served_order: Deque[Tuple[Address, int]] = deque()
        # Frame trains (PROTOCOL.md §13): the last train walk this LCM
        # drained messages from, so each drain is counted exactly once.
        self._last_train_serial = 0

    # -- primitives -----------------------------------------------------------

    def send(
        self,
        dst: Address,
        type_name: str,
        values: dict,
        flags: int = 0,
        corr_id: int = 0,
        force_mode: Optional[int] = None,
        block: bool = True,
    ) -> None:
        """Send one message; circuits are established (and relocation
        performed) as needed.  Blocking until handed to the wire —
        which, under flow control (PROTOCOL.md §12), includes stalling
        while the destination IVC is out of credit.  With
        ``block=False`` a zero-credit circuit raises
        :class:`SendWouldBlock` instead of stalling.

        When one relocation round exhausts — a mid-chain gateway died,
        or the naming service is briefly unreachable — circuit repair
        (PROTOCOL.md §10) backs off and replans, up to
        ``repair_max_attempts`` rounds.  With the knob at 0 the
        pre-repair fault behavior is reproduced message for message."""
        nucleus = self.nucleus
        entry = nucleus.registry.get_by_name(type_name)
        with nucleus.enter(self.LAYER, "send", reason=type_name):
            # The timestamp is for monitor data (Sec. 6.1); taking it may
            # recurse into the time service, so skip it when no monitor
            # record will be emitted.
            timestamp = nucleus.timestamp() if nucleus.monitoring_active else 0.0
            budget = max(0, nucleus.config.repair_max_attempts)
            round_no = 0
            while True:
                try:
                    target = self._send_round(
                        dst, entry, values, flags, corr_id, force_mode,
                        repairing=round_no > 0, block=block,
                    )
                    break
                except (DestinationUnavailable, NameServerUnreachable) as exc:
                    if round_no >= budget:
                        raise
                    round_no += 1
                    self._repair_backoff(round_no, dst, exc)
            nucleus.emit_monitor({
                "event": "send", "peer": str(target),
                "type": type_name, "t": timestamp,
            })

    def _send_round(
        self,
        dst: Address,
        entry,
        values: dict,
        flags: int,
        corr_id: int,
        force_mode: Optional[int],
        repairing: bool,
        block: bool = True,
    ) -> Address:
        """One Sec. 3.5 relocation round: bounded attempts, each failure
        running the address-fault handler.  Returns the final target on
        success; raises when the round exhausts."""
        nucleus = self.nucleus
        target = self._follow_forwarding(dst)
        last_error: Optional[Exception] = None
        for _ in range(self.MAX_SEND_ATTEMPTS):
            try:
                ivc = self._route_to(
                    target, repairing=repairing or last_error is not None)
                msg = m.Msg(
                    kind=m.DATA, src=nucleus.self_addr, dst=target,
                    flags=flags, corr_id=corr_id,
                )
                self.ip.send_values(ivc, msg, entry.sdef.type_id, values,
                                    force_mode=force_mode, block=block)
            except _TRANSIENT as exc:
                last_error = exc
                self._drop_route(target)
                new_target = self._address_fault(target, exc)
                if new_target != target:
                    # The module relocated: that recovery is accounted
                    # as a relocation-follow, not a circuit repair.
                    self._faulted_targets.discard(target)
                target = new_target
                continue
            self._ns_fault_streak = 0
            if target in self._faulted_targets:
                # An established circuit to this target had faulted and
                # this send went through on a re-planned route: one
                # completed repair (PROTOCOL.md §10).
                self._faulted_targets.discard(target)
                nucleus.counters.incr("lcm_circuit_repairs")
                # Resynchronize credits (PROTOCOL.md §12): a circuit
                # that survived the fault window may have frames in
                # doubt between the ledgers.
                self.ip.resync_credit(self._routes.get(target))
            return target
        raise DestinationUnavailable(
            f"send to {dst} failed after {self.MAX_SEND_ATTEMPTS} attempts: "
            f"{last_error}"
        )

    def _repair_backoff(self, round_no: int, dst: Address,
                        exc: Exception) -> None:
        """Between repair rounds: count the round, wait the bounded
        exponential backoff (round k waits ``min(base * 2**k, cap)``
        plus jitter from the module's seeded repair RNG), and reset the
        Sec. 6.3 well-known retry budget so the next round gets a fresh
        look at the naming service."""
        nucleus = self.nucleus
        cfg = nucleus.config
        nucleus.counters.incr("lcm_circuit_repairs")
        nucleus.counters.incr(f"repair_backoff_bucket_{min(round_no - 1, 7)}")
        nucleus.trace(self.LAYER, "circuit_repair",
                      reason=f"round {round_no} for {dst}: {exc}")
        self._ns_fault_streak = 0
        base = min(cfg.repair_backoff_base * (2 ** (round_no - 1)),
                   cfg.repair_backoff_cap)
        jitter = nucleus.repair_rng.random() * cfg.repair_backoff_base
        nucleus.scheduler.wait(base + jitter)

    def call(
        self,
        dst: Address,
        type_name: str,
        values: dict,
        timeout: Optional[float] = None,
        flags: int = 0,
    ) -> IncomingMessage:
        """Synchronous send/receive/reply: send, then block until the
        correlated reply arrives.

        A call whose circuit dies while awaiting the reply is retried
        (bounded by ``call_retries``): the message may have been lost in
        a reconfiguration window (Sec. 3.5), and the retried send runs
        the full relocation machinery.  Reply timeouts are *not*
        retried — the destination saw the request."""
        nucleus = self.nucleus
        timeout = timeout if timeout is not None else nucleus.config.call_timeout
        attempts = 1 + max(0, nucleus.config.call_retries)
        last_error = ""
        # One logical call keeps one correlation id across retries: the
        # receive side dedups requests on (src, corr_id), so a request
        # redelivered by a retry is suppressed — and its cached reply
        # replayed — instead of running the server handler twice.
        corr = self._corr.next()
        for _ in range(attempts):
            pending = _PendingCall(dst=dst)
            self._pending[corr] = pending
            try:
                self.send(dst, type_name, values,
                          flags=flags | m.FLAG_REPLY_EXPECTED, corr_id=corr)
                done = nucleus.scheduler.pump_until(
                    lambda: pending.done,
                    timeout=timeout,
                    what=f"reply from {dst}",
                )
                if pending.reply is not None:
                    return pending.reply
                if pending.error is not None:
                    last_error = pending.error
                    nucleus.counters.incr("lcm_call_retries")
                    continue
                assert not done
                raise ReplyTimeout(f"no reply from {dst} within {timeout}s")
            finally:
                self._pending.pop(corr, None)
        raise DestinationUnavailable(f"call to {dst}: {last_error}")

    def call_async(self, dst: Address, type_name: str, values: dict,
                   flags: int = 0) -> CallHandle:
        """The asynchronous form of :meth:`call`: send the request,
        return immediately with a handle on the future reply."""
        corr = self._corr.next()
        pending = _PendingCall(dst=dst)
        self._pending[corr] = pending
        try:
            self.send(dst, type_name, values,
                      flags=flags | m.FLAG_REPLY_EXPECTED, corr_id=corr)
        except Exception:
            self._pending.pop(corr, None)
            raise
        return CallHandle(self, corr, pending)

    def reply(self, request: IncomingMessage, type_name: str, values: dict,
              flags: int = 0) -> None:
        """Answer a request received with reply_expected set.  The reply
        is remembered against the request's (src, corr_id), so a
        redelivered request — a repair-round retry whose original *did*
        arrive — replays the same answer instead of re-running the
        server handler."""
        key = (request.src, request.corr_id)
        if key in self._served:
            self._served[key] = (type_name, dict(values), flags)
        self.send(request.src, type_name, values,
                  flags=flags | m.FLAG_IS_REPLY, corr_id=request.corr_id)

    def datagram(self, dst: Address, type_name: str, values: dict,
                 flags: int = 0) -> bool:
        """The connectionless protocol: best-effort, never raises for
        delivery problems.  Returns False when the send failed.

        Under flow control (PROTOCOL.md §12) a datagram never stalls:
        at zero credit it is dropped at the sender — counted as
        ``drop_connectionless`` — exactly as an overloaded receiver
        drops it at the high watermark."""
        try:
            self.send(dst, type_name, values,
                      flags=flags | m.FLAG_CONNECTIONLESS)
            return True
        except SendWouldBlock:
            self.nucleus.counters.incr("datagrams_dropped")
            self.nucleus.counters.incr(DROP_CONNECTIONLESS)
            return False
        except (DestinationUnavailable, NoSuchAddress, RouteNotFound,
                NoForwardingAddress, NameServerUnreachable):
            self.nucleus.counters.incr("datagrams_dropped")
            return False

    def receive(self, timeout: Optional[float] = None) -> IncomingMessage:
        """Block until a message is queued (polling receiver style)."""
        nucleus = self.nucleus
        timeout = timeout if timeout is not None else nucleus.config.call_timeout
        ok = nucleus.scheduler.pump_until(
            lambda: bool(self._queue), timeout=timeout, what="receive",
        )
        if not ok:
            raise ReplyTimeout(f"nothing received within {timeout}s")
        incoming = self._queue.popleft()
        if incoming.ivc is not None:
            # Credit the message back to its circuit (PROTOCOL.md §12):
            # consumption is what lets the sender send again.
            self.ip.note_consumed(incoming.ivc, from_queue=True)
        return incoming

    def set_handler(self, handler: Optional[Callable[[IncomingMessage], None]]) -> None:
        """Install a synchronous message handler (server style).  While
        installed, messages bypass the receive queue."""
        self._handler = handler

    # -- routing and recovery ----------------------------------------------------

    def _follow_forwarding(self, dst: Address) -> Address:
        """Chase the forwarding-address table, guarding against cycles.
        A multi-hop chase path-compresses: every address on the walked
        chain is repointed directly at the final target, so a long
        relocation chain is re-walked at most once."""
        seen = {dst}
        path = [dst]
        target = dst
        while target in self.forwarding:
            target = self.forwarding[target]
            if target in seen:
                raise DestinationUnavailable(f"forwarding cycle at {target}")
            seen.add(target)
            path.append(target)
        if len(path) > 2:
            for addr in path[:-1]:
                self.forwarding[addr] = target
            self.nucleus.counters.incr("lcm_forwarding_compressions")
        return target

    def _route_to(self, target: Address, repairing: bool = False) -> Ivc:
        ivc = self._routes.get(target)
        if ivc is not None and ivc.open:
            return ivc
        self._routes.pop(target, None)
        if repairing:
            self.nucleus.counters.incr("ivc_reopen_attempts")
        ivc = self.ip.open_ivc(
            target, reason="lcm repair" if repairing else "lcm send")
        self._routes[target] = ivc
        return ivc

    def _drop_route(self, target: Address) -> None:
        ivc = self._routes.pop(target, None)
        if ivc is not None:
            # An established circuit (not a first-open failure) is being
            # dropped after a fault: the next send through marks a repair.
            self._faulted_targets.add(target)
            if ivc.state not in ("CLOSED", "FAILED"):
                self.ip.close(ivc, "dropped after fault", notify=False)

    def _address_fault(self, target: Address, exc: Exception) -> Address:
        """The Sec. 3.5 address-fault handler: look for a forwarding
        UAdd in the naming service; distinguish "no replacement" from
        "module still alive"."""
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, "address_fault", reason=str(exc)):
            nucleus.counters.incr("lcm_address_faults")
            if target in nucleus.ns_addresses:
                if nucleus.config.ns_fault_patch:
                    # The patch (Sec. 6.3): layers below the NSP-Layer
                    # know nothing of the Name Server; only this handler
                    # can stop the recursion.  Retry through the
                    # well-known physical address instead of asking the
                    # naming service about itself.
                    nucleus.counters.incr("ns_fault_patch_hits")
                    self._ns_fault_streak += 1
                    if self._ns_fault_streak > nucleus.config.ns_fault_retry_limit:
                        self._ns_fault_streak = 0
                        raise NameServerUnreachable(
                            "Name Server unreachable through its well-known address"
                        )
                    return target
                # Unpatched: fall through and ask the naming service —
                # which needs the very circuit that just broke.
            nsp = nucleus.require_nsp()
            # Cache-miss recovery (PROTOCOL.md §9): the faulted address
            # proves any cached resolution for it is stale; evict before
            # re-resolving so the answer comes from the naming service.
            evict = getattr(nsp, "evict_address", None)
            if evict is not None:
                evict(target)
            try:
                forward = nsp.lookup_forwarding(target)
            except NoForwardingAddress:
                raise DestinationUnavailable(
                    f"{target} is gone and no replacement module was located"
                )
            except ModuleStillAlive:
                # "It will attempt to reestablish what appears to be a
                # broken communication link."
                nucleus.counters.incr("lcm_reconnect_attempts")
                return target
            self.forwarding[target] = forward
            nucleus.counters.incr("lcm_relocations_followed")
            return self._follow_forwarding(target)

    # -- upcalls from the IP-Layer ---------------------------------------------

    def _on_deliver(self, ivc: Ivc, msg: m.Msg) -> None:
        nucleus = self.nucleus
        if msg.kind != m.DATA:
            nucleus.counters.incr("lcm_unexpected_kinds")
            return
        if (nucleus.train_depth
                and self._last_train_serial != nucleus.train_serial):
            # First message of a frame train reaching this LCM: one
            # drain pass covers the whole batch (PROTOCOL.md §13).
            self._last_train_serial = nucleus.train_serial
            nucleus.counters.incr(LCM_TRAIN_DRAINS)
        # A TAdd source is only unique to its assigner: key local tables
        # by the alias the ND/IP layer assigned to this circuit.
        effective_src = msg.src
        if msg.src.temporary and ivc.peer_addr is not None:
            effective_src = ivc.peer_addr
        if effective_src is not None:
            self._routes[effective_src] = ivc
        # Flow accounting (PROTOCOL.md §12): every flow-debited arrival
        # must be matched by exactly one consumption — at whichever
        # disposal point the message reaches.  Replies and internal
        # traffic were never debited by the sender.
        flow_debited = (ivc.flow is not None and not msg.internal
                        and not msg.is_reply)
        try:
            entry = nucleus.registry.get(msg.type_id)
            values = decode_body(
                nucleus.registry, msg.type_id, msg.mode, msg.body,
                nucleus.mtype, entry=entry,
            )
        except Exception as exc:  # malformed bodies must not kill the pump
            nucleus.counters.incr("lcm_undecodable_messages")
            nucleus.log_error(f"undecodable message from {msg.src}: {exc}")
            if flow_debited:
                self.ip.note_arrival(ivc, queued=False)
                self.ip.note_consumed(ivc, from_queue=False)
            return
        incoming = IncomingMessage(
            src=effective_src,
            type_id=msg.type_id,
            type_name=entry.sdef.name,
            values=values,
            corr_id=msg.corr_id,
            reply_expected=msg.reply_expected,
            internal=msg.internal,
            connectionless=msg.connectionless,
            arrived_at=nucleus.scheduler.now,
            mode=msg.mode,
        )
        if nucleus.monitoring_active:
            nucleus.emit_monitor({
                "event": "recv", "peer": str(effective_src),
                "type": entry.sdef.name, "t": nucleus.timestamp(),
            })
        if msg.is_reply:
            pending = self._pending.get(msg.corr_id)
            if pending is not None:
                pending.reply = incoming
            else:
                nucleus.counters.incr("lcm_orphan_replies")
            return
        if (msg.reply_expected and msg.corr_id > 0
                and not msg.connectionless and not msg.internal
                and effective_src is not None):
            # Duplicate suppression (PROTOCOL.md §10): a repair-round
            # retry may redeliver a request whose original arrived just
            # before the circuit died.  Accept each (src, corr_id) once;
            # replay the cached reply when one was already produced.
            # Internal (naming/forwarding) traffic is exempt: those
            # requests are idempotent at the server, and a multi-homed
            # gateway runs one nucleus per attached network — several
            # independent corr_id streams behind one registered address
            # — so (src, corr_id) is only a sound key for application
            # requests, where one module is one nucleus.
            key = (effective_src, msg.corr_id)
            if key in self._served:
                nucleus.counters.incr("lcm_duplicate_requests_suppressed")
                if flow_debited:
                    # Disposed without delivery; account before the
                    # cached replay so the reply piggybacks the
                    # up-to-date advertisement.
                    self.ip.note_arrival(ivc, queued=False)
                    self.ip.note_consumed(ivc, from_queue=False)
                cached = self._served[key]
                if cached is not None:
                    r_type, r_values, r_flags = cached
                    self.send(effective_src, r_type, r_values,
                              flags=r_flags | m.FLAG_IS_REPLY,
                              corr_id=msg.corr_id)
                return
            self._served[key] = None
            self._served_order.append(key)
            while len(self._served_order) > self.SERVED_LIMIT:
                evicted = self._served_order.popleft()
                self._served.pop(evicted, None)
        with nucleus.enter(self.LAYER, "deliver", caller="IP",
                           reason=entry.sdef.name):
            if self._handler is not None:
                if flow_debited:
                    self.ip.note_arrival(ivc, queued=False)
                try:
                    self._handler(incoming)
                finally:
                    if flow_debited:
                        self.ip.note_consumed(ivc, from_queue=False)
            else:
                if flow_debited:
                    if (msg.connectionless and ivc.lvc is not None
                            and ivc.lvc.rx_depth
                            >= nucleus.config.effective_flow_high_watermark()):
                        # Overload (PROTOCOL.md §12): connectionless
                        # traffic is best-effort, so above the high
                        # watermark it is dropped rather than queued —
                        # that is what keeps per-LVC memory bounded
                        # when the sender will not stall.
                        nucleus.counters.incr(DROP_CONNECTIONLESS)
                        self.ip.note_arrival(ivc, queued=False)
                        self.ip.note_consumed(ivc, from_queue=False)
                        return
                    incoming.ivc = ivc
                    self.ip.note_arrival(ivc, queued=True)
                self._queue.append(incoming)

    def _on_fault(self, ivc: Ivc, reason: str) -> None:
        self.nucleus.counters.incr("lcm_circuit_faults")
        dead = [addr for addr, route in self._routes.items() if route is ivc]
        for addr in dead:
            del self._routes[addr]
        self._faulted_targets.update(dead)
        for pending in self._pending.values():
            if pending.done:
                continue
            try:
                target = self._follow_forwarding(pending.dst)
            except DestinationUnavailable:
                target = pending.dst
            if pending.dst in dead or target in dead:
                pending.error = f"connection lost: {reason}"

    # -- TAdd purge plumbing ---------------------------------------------------

    def rekey_route(self, old: Address, new: Address) -> None:
        """Replace a TAdd table key with the real UAdd (Sec. 3.4)."""
        ivc = self._routes.pop(old, None)
        if ivc is not None:
            self._routes[new] = ivc
        if old in self._faulted_targets:
            self._faulted_targets.discard(old)
            self._faulted_targets.add(new)
        if old in self.forwarding:
            self.forwarding[new] = self.forwarding.pop(old)
        for key in [k for k in self._served if k[0] == old]:
            new_key = (new, key[1])
            self._served[new_key] = self._served.pop(key)
            self._served_order.append(new_key)

    # -- introspection ----------------------------------------------------

    def queued(self) -> int:
        """Number of messages waiting in the receive queue.

        The queue itself is unbounded in memory; what bounds it is flow
        control (PROTOCOL.md §12): once the depth attributed to a
        circuit's LVC passes the window, the sender runs out of credit
        and stalls (or drops, for connectionless traffic) until this
        side consumes.  With ``flow_control_enabled=False`` a slow
        receiver buffers without limit."""
        return len(self._queue)

    def route_count(self) -> int:
        """Number of address-to-circuit routes held."""
        return len(self._routes)

    def temporary_route_keys(self) -> int:
        """Number of routes still keyed by TAdds (E3's metric)."""
        return sum(1 for addr in self._routes if addr.temporary)
