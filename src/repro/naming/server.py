"""The Name Server module (paper Secs. 3, 3.2).

"For all practical purposes, the naming service is nothing more than an
application built on the Nucleus; however, it is also used by the
Nucleus, forcing the Nucleus to operate recursively."

The Name Server is an ordinary process with an ordinary Nucleus; its
single special property is that it listens at a *well-known* physical
address and assigns itself the first UAdd its database generates —
which every module's well-known table knows by convention
(:data:`~repro.ntcs.address.NAME_SERVER_UADD`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import (
    ModuleStillAlive,
    NoForwardingAddress,
    NoSuchAddress,
    NoSuchName,
    NtcsError,
)
from repro.machine.process import SimProcess
from repro.naming import protocol as p
from repro.naming.database import NameDatabase
from repro.naming.protocol import NameRecord
from repro.ntcs.address import Address
from repro.ntcs.lcm import IncomingMessage
from repro.ntcs.message import FLAG_INTERNAL
from repro.ntcs.nucleus import Nucleus, NucleusConfig
from repro.ntcs.wellknown import WellKnownTable
from repro.util.counters import CounterSet


class _LocalNsp:
    """The Name Server's own Nucleus resolves against the local
    database directly — it cannot very well ask itself over the wire."""

    def __init__(self, db: NameDatabase):
        self._db = db

    def resolve_uadd(self, uadd: Address) -> NameRecord:
        return self._db.resolve_uadd(uadd)

    def resolve_name(self, name: str) -> Address:
        return self._db.resolve_name(name).uadd

    def lookup_forwarding(self, uadd: Address) -> Address:
        return self._db.lookup_forwarding(uadd).uadd

    def list_gateways(self):
        return self._db.list_gateways()

    def evict_address(self, uadd: Address) -> None:
        """No-op: the local database is authoritative, never stale."""


class NameServer:
    """The (currently single) Name Server module."""

    DEFAULT_NAME = "name.server"

    def __init__(
        self,
        process: SimProcess,
        registry,
        wellknown: WellKnownTable,
        network: Optional[str] = None,
        binding: Optional[str] = None,
        config: Optional[NucleusConfig] = None,
        db: Optional[NameDatabase] = None,
        name: str = None,
    ):
        self.process = process
        self.name = name or self.DEFAULT_NAME
        network = network or process.machine.networks[0]
        self.nucleus = Nucleus(process, network, registry, wellknown,
                               config=config)
        scheduler = process.scheduler
        self.db = db if db is not None else NameDatabase(clock=lambda: scheduler.now)
        self.listen_blob = self.nucleus.nd.create_resource(binding)
        # Self-registration is purely local — this is the base case that
        # terminates the naming recursion.  A *restarted* Name Server
        # handed its surviving database must keep its original UAdd:
        # every module's well-known table knows that address by
        # convention, and endpoints of chained opens check it with
        # is_self.  Reuse the existing record — refreshing its physical
        # address — instead of registering a second identity.
        try:
            record = self.db.resolve_name(self.name)
            record.alive = True
            record.addresses = [(network, self.listen_blob)]
            self.db.adopt(record)
        except NoSuchName:
            # First boot: nothing to take over — register fresh.
            record = self.db.register(
                self.name,
                attrs={"kind": "nameserver"},
                addresses=[(network, self.listen_blob)],
                mtype_name=process.machine.mtype.name,
            )
        self.uadd = record.uadd
        self.nucleus.set_identity(self.uadd)
        self.nucleus.nsp = _LocalNsp(self.db)
        self.nucleus.lcm.set_handler(self._on_request)
        self.counters = CounterSet()
        self._handlers = {
            "ns_register": self._handle_register,
            "ns_resolve_name": self._handle_resolve_name,
            "ns_resolve_uadd": self._handle_resolve_uadd,
            "ns_forward": self._handle_forward,
            "ns_deregister": self._handle_deregister,
            "ns_list_gw": self._handle_list_gw,
            "ns_ping": self._handle_ping,
            "ns_query_attrs": self._handle_query_attrs,
            "ns_resolve_batch": self._handle_resolve_batch,
        }

    # Reply types that carry the database generation (PROTOCOL.md §9);
    # _on_request stamps it centrally so no handler can forget.
    _GEN_REPLIES = frozenset({
        "ns_register_ack", "ns_resolve_name_ack", "ns_record_ack",
        "ns_forward_ack", "ns_list_gw_ack", "ns_query_attrs_ack",
        "ns_resolve_batch_ack",
    })

    # -- dispatch -----------------------------------------------------------

    def _on_request(self, request: IncomingMessage) -> None:
        handler = self._handlers.get(request.type_name)
        if handler is None:
            self.counters.incr("unknown_requests")
            return
        self.counters.incr(request.type_name)
        try:
            reply_type, values = handler(request)
        except NtcsError as exc:
            self.nucleus.log_error(f"{request.type_name} failed: {exc}")
            reply_type, values = "ns_ack", {"ok": 0, "detail": str(exc)[:90]}
        if reply_type in self._GEN_REPLIES:
            values.setdefault("gen", self.db.generation)
        if request.reply_expected:
            self.nucleus.lcm.reply(request, reply_type, values,
                                   flags=FLAG_INTERNAL)

    # -- handlers ----------------------------------------------------------------

    def _handle_register(self, request: IncomingMessage):
        attrs, addresses = p.decode_register_payload(request.values["payload"])
        record = self.db.register(
            name=request.values["name"],
            attrs=attrs,
            addresses=addresses,
            mtype_name=request.values["mtype"],
        )
        self._replicate("register", record)
        return "ns_register_ack", {"uadd": record.uadd.value}

    def _handle_resolve_name(self, request: IncomingMessage):
        try:
            record = self.db.resolve_name(request.values["name"])
        except NoSuchName:
            return "ns_resolve_name_ack", {"found": 0, "uadd": 0}
        return "ns_resolve_name_ack", {"found": 1, "uadd": record.uadd.value}

    def _handle_resolve_uadd(self, request: IncomingMessage):
        try:
            record = self.db.resolve_uadd(Address(value=request.values["uadd"]))
        except NoSuchAddress:
            return "ns_record_ack", {"found": 0, "record": b""}
        return "ns_record_ack", {
            "found": 1, "record": p.encode_records([record]),
        }

    def _handle_forward(self, request: IncomingMessage):
        old = Address(value=request.values["uadd"])
        try:
            replacement = self.db.lookup_forwarding(old)
        except NoSuchAddress:
            return "ns_forward_ack", {"status": p.FWD_NONE, "new_uadd": 0}
        except NoForwardingAddress:
            return "ns_forward_ack", {"status": p.FWD_NONE, "new_uadd": 0}
        except ModuleStillAlive:
            return "ns_forward_ack", {"status": p.FWD_ALIVE, "new_uadd": 0}
        return "ns_forward_ack", {
            "status": p.FWD_FOUND, "new_uadd": replacement.uadd.value,
        }

    def _handle_deregister(self, request: IncomingMessage):
        uadd = Address(value=request.values["uadd"])
        ok = self.db.deregister(uadd)
        if ok:
            self._replicate("deregister", self.db.resolve_uadd(uadd))
        return "ns_ack", {"ok": 1 if ok else 0, "detail": ""}

    def _handle_list_gw(self, request: IncomingMessage):
        gateways = self.db.list_gateways()
        return "ns_list_gw_ack", {
            "count": len(gateways), "records": p.encode_records(gateways),
        }

    def _handle_ping(self, request: IncomingMessage):
        return "ns_ack", {"ok": 1, "detail": "pong"}

    def _handle_resolve_batch(self, request: IncomingMessage):
        """Resolve many names in one round trip (PROTOCOL.md §9): the
        found records ride back whole, so one reply primes both the
        name→UAdd and UAdd→record caches."""
        names = p.decode_name_list(request.values["names"].decode("ascii"))
        records, missing = [], []
        for name in names:
            try:
                records.append(self.db.resolve_name(name))
            except NoSuchName:
                missing.append(name)
        return "ns_resolve_batch_ack", {
            "count": len(records),
            "payload": p.encode_batch_payload(missing, records),
        }

    def _handle_query_attrs(self, request: IncomingMessage):
        query_text = request.values["query"].decode("ascii")
        # Rich predicate syntax ("shard<=3") is served when the database
        # implements it (the Sec. 7 attribute-naming extension); plain
        # "k=v;k=v" exact matching otherwise.
        if hasattr(self.db, "query_predicates") and any(
            op in query_text for op in ("<", ">", "!", "~", "*")
        ):
            from repro.naming.attributes import parse_query
            matches = self.db.query_predicates(parse_query(query_text))
        else:
            matches = self.db.query_attrs(p.decode_attrs(query_text))
        return "ns_query_attrs_ack", {
            "count": len(matches), "records": p.encode_records(matches),
        }

    # -- replication hook (filled by repro.naming.replicated) ----------------------

    def _replicate(self, op: str, record: NameRecord) -> None:
        pass

    def kill(self) -> None:
        """Take the Name Server down (E2's removal experiment)."""
        self.process.kill()
