"""The Name Service Protocol Layer (paper Sec. 2.4).

"The NSP-Layer is the single naming service access point for all layers
within the ComMod.  Its purpose is to fully isolate the ComMod from the
naming service implementation."

Everything here is a thin client over ordinary Nucleus communication —
"the NSP-layers talk across multiple networks in the identical manner
as application modules do" (Sec. 3.1).  Swapping the implementation
(single server → replicated) only changes which class the ComMod
constructs; callers see the same methods.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ModuleStillAlive,
    NoForwardingAddress,
    NoSuchAddress,
    NoSuchName,
    NtcsError,
    ProtocolError,
)
from repro.naming import protocol as p
from repro.naming.protocol import NameRecord
from repro.ntcs.address import Address
from repro.ntcs.lcm import IncomingMessage
from repro.ntcs.message import FLAG_INTERNAL


class NspLayer:
    """Client stub for the single-Name-Server implementation."""

    LAYER = "NSP"

    def __init__(self, nucleus, ns_uadd: Optional[Address] = None):
        self.nucleus = nucleus
        self.ns_uadd = ns_uadd or nucleus.wellknown.ns_uadd

    # -- transport ------------------------------------------------------------

    def _call(self, type_name: str, values: dict, reason: str,
              timeout: Optional[float] = None) -> IncomingMessage:
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, type_name, reason=reason):
            nucleus.counters.incr("nsp_calls")
            return nucleus.lcm.call(
                self.ns_uadd, type_name, values,
                timeout=timeout, flags=FLAG_INTERNAL,
            )

    # -- the naming-service operations ----------------------------------------

    def register(
        self,
        name: str,
        attrs: Dict[str, str],
        addresses: List[Tuple[str, str]],
        mtype_name: str,
    ) -> Address:
        """Register a module; returns its freshly generated UAdd."""
        reply = self._call("ns_register", {
            "name": name,
            "mtype": mtype_name,
            "payload": p.encode_register_payload(attrs or {}, addresses),
        }, reason=f"register {name!r}")
        self._expect(reply, "ns_register_ack")
        return Address(value=reply.values["uadd"])

    def resolve_name(self, name: str) -> Address:
        """Logical name → UAdd (the first of the two mappings,
        Sec. 3.3)."""
        reply = self._call("ns_resolve_name", {"name": name},
                           reason=f"resolve {name!r}")
        self._expect(reply, "ns_resolve_name_ack")
        if not reply.values["found"]:
            raise NoSuchName(f"no module registered as {name!r}")
        return Address(value=reply.values["uadd"])

    def resolve_uadd(self, uadd: Address) -> NameRecord:
        """UAdd → physical location record (the second mapping)."""
        reply = self._call("ns_resolve_uadd", {"uadd": uadd.value},
                           reason=f"locate {uadd}")
        self._expect(reply, "ns_record_ack")
        if not reply.values["found"]:
            raise NoSuchAddress(f"naming service has no entry for {uadd}")
        records = p.decode_records(reply.values["record"])
        if len(records) != 1:
            raise ProtocolError("ns_record_ack carried != 1 record")
        return records[0]

    def lookup_forwarding(self, old_uadd: Address) -> Address:
        """Ask for a forwarding UAdd after an address fault (Sec. 3.5)."""
        reply = self._call("ns_forward", {"uadd": old_uadd.value},
                           reason=f"forwarding for {old_uadd}")
        self._expect(reply, "ns_forward_ack")
        status = reply.values["status"]
        if status == p.FWD_FOUND:
            return Address(value=reply.values["new_uadd"])
        if status == p.FWD_ALIVE:
            raise ModuleStillAlive(f"{old_uadd} is still active")
        raise NoForwardingAddress(f"no replacement module for {old_uadd}")

    def deregister(self, uadd: Address) -> bool:
        """Tombstone a UAdd in the naming service; True on success."""
        reply = self._call("ns_deregister", {"uadd": uadd.value},
                           reason=f"deregister {uadd}")
        self._expect(reply, "ns_ack")
        return bool(reply.values["ok"])

    def list_gateways(self) -> List[NameRecord]:
        """The registered gateway records (routing topology, Sec. 4.2)."""
        reply = self._call("ns_list_gw", {}, reason="topology")
        self._expect(reply, "ns_list_gw_ack")
        return p.decode_records(reply.values["records"])

    def query_attrs(self, required: Dict[str, str]) -> List[NameRecord]:
        """Attribute-based resource location (Sec. 7's new scheme)."""
        reply = self._call("ns_query_attrs", {
            "query": p.encode_attrs(required).encode("ascii"),
        }, reason="attribute query")
        self._expect(reply, "ns_query_attrs_ack")
        return p.decode_records(reply.values["records"])

    def query_predicates(self, query_text: str) -> List[NameRecord]:
        """Predicate-based location ("kind=index;shard<=3") — served by
        Name Servers running the attribute database extension."""
        reply = self._call("ns_query_attrs", {
            "query": query_text.encode("ascii"),
        }, reason="predicate query")
        self._expect(reply, "ns_query_attrs_ack")
        return p.decode_records(reply.values["records"])

    def ping(self, timeout: float = 2.0) -> bool:
        """Is the naming service answering?"""
        try:
            reply = self._call("ns_ping", {}, reason="ping", timeout=timeout)
        except NtcsError:
            return False
        return reply.type_name == "ns_ack" and bool(reply.values["ok"])

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _expect(reply: IncomingMessage, type_name: str) -> None:
        if reply.type_name == type_name:
            return
        if reply.type_name == "ns_ack" and not reply.values.get("ok", 1):
            raise ProtocolError(
                f"naming service error: {reply.values.get('detail', '')}"
            )
        raise ProtocolError(
            f"expected {type_name}, naming service sent {reply.type_name}"
        )
