"""The Name Service Protocol Layer (paper Sec. 2.4).

"The NSP-Layer is the single naming service access point for all layers
within the ComMod.  Its purpose is to fully isolate the ComMod from the
naming service implementation."

Everything here is a thin client over ordinary Nucleus communication —
"the NSP-layers talk across multiple networks in the identical manner
as application modules do" (Sec. 3.1).  Swapping the implementation
(single server → replicated) only changes which class the ComMod
constructs; callers see the same methods.

The control-plane fast path (PROTOCOL.md §9) lives here:

* a generation-stamped :class:`~repro.naming.cache.ResolutionCache`
  answers repeated resolutions without a round trip,
* *single-flight coalescing* lets concurrent identical resolutions —
  issued from nested ``pump_until`` frames — share one in-flight
  Name-Server call,
* :meth:`resolve_batch` resolves many names in one ``ns_resolve_batch``
  round trip, priming the cache with the returned records.

All three are disabled by ``NucleusConfig.nsp_cache_enabled = False``,
which reproduces the uncached control plane message-for-message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import (
    DestinationUnavailable,
    ModuleStillAlive,
    NoForwardingAddress,
    NoSuchAddress,
    NoSuchName,
    NtcsError,
    ProtocolError,
)
from repro.naming import protocol as p
from repro.naming.cache import ResolutionCache
from repro.naming.protocol import NameRecord
from repro.ntcs.address import Address
from repro.ntcs.lcm import CallHandle, IncomingMessage
from repro.ntcs.message import FLAG_INTERNAL


@dataclass
class _Flight:
    """One in-flight, shareable Name-Server call (single-flight)."""

    handle: Optional[CallHandle] = None


class NspLayer:
    """Client stub for the single-Name-Server implementation."""

    LAYER = "NSP"

    def __init__(self, nucleus, ns_uadd: Optional[Address] = None):
        self.nucleus = nucleus
        self.ns_uadd = ns_uadd or nucleus.wellknown.ns_uadd
        config = nucleus.config
        self.cache: Optional[ResolutionCache] = None
        self._coalesce = bool(config.nsp_cache_enabled)
        if config.nsp_cache_enabled:
            scheduler = nucleus.scheduler
            self.cache = ResolutionCache(
                clock=lambda: scheduler.now,
                counters=nucleus.counters,
                negative_ttl=config.nsp_negative_ttl,
            )
        self._flights: Dict[tuple, _Flight] = {}

    # -- transport ------------------------------------------------------------

    def _call(self, type_name: str, values: dict, reason: str,
              timeout: Optional[float] = None) -> IncomingMessage:
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, type_name, reason=reason):
            nucleus.counters.incr("nsp_calls")
            return nucleus.lcm.call(
                self.ns_uadd, type_name, values,
                timeout=timeout, flags=FLAG_INTERNAL,
            )

    def _resolve(self, type_name: str, values: dict, reason: str,
                 key: Optional[tuple] = None,
                 timeout: Optional[float] = None) -> IncomingMessage:
        """One resolution round trip, coalesced with any identical
        in-flight one.  ``key`` identifies the resolution; None (or
        coalescing disabled) degrades to a plain :meth:`_call`."""
        if key is None or not self._coalesce:
            return self._call(type_name, values, reason, timeout=timeout)
        flight = self._flights.get(key)
        if flight is not None and flight.handle is not None:
            self.nucleus.counters.incr("nsp_calls_coalesced")
            return self._join(flight, type_name, values, reason, timeout)
        return self._lead(key, type_name, values, reason, timeout)

    def _lead(self, key: tuple, type_name: str, values: dict, reason: str,
              timeout: Optional[float]) -> IncomingMessage:
        """Issue the shared call; mirrors :meth:`LcmLayer.call`'s retry
        discipline (circuit deaths retried, reply timeouts not) but
        exposes the in-flight handle for followers to pump on."""
        nucleus = self.nucleus
        flight = _Flight()
        try:
            with nucleus.enter(self.LAYER, type_name, reason=reason):
                nucleus.counters.incr("nsp_calls")
                attempts = 1 + max(0, nucleus.config.call_retries)
                last_error = ""
                for _ in range(attempts):
                    handle = nucleus.lcm.call_async(
                        self.ns_uadd, type_name, values, flags=FLAG_INTERNAL,
                    )
                    # Register (or refresh) the flight only after the
                    # send completed: nested frames running inside the
                    # send itself must not join a handle-less flight.
                    flight.handle = handle
                    self._flights[key] = flight
                    try:
                        return handle.result(timeout=timeout)
                    except DestinationUnavailable as exc:
                        last_error = str(exc)
                        nucleus.counters.incr("lcm_call_retries")
                raise DestinationUnavailable(
                    f"call to {self.ns_uadd}: {last_error}"
                )
        finally:
            if self._flights.get(key) is flight:
                del self._flights[key]

    def _join(self, flight: _Flight, type_name: str, values: dict,
              reason: str, timeout: Optional[float]) -> IncomingMessage:
        """Wait on the leader's in-flight call.  A follower runs in a
        pump frame *above* the leader's, so it sees the shared reply
        (or circuit death) first; on death it falls back to a private
        call — the leader cannot retry while we are on its stack."""
        try:
            return flight.handle.result(timeout=timeout)
        except DestinationUnavailable:
            return self._call(type_name, values, reason, timeout=timeout)

    def _observe(self, gen: int) -> None:
        """Feed a reply's generation stamp to the cache, if any."""
        if self.cache is not None:
            self.cache.observe_generation(gen)

    # -- the naming-service operations ----------------------------------------

    def register(
        self,
        name: str,
        attrs: Dict[str, str],
        addresses: List[Tuple[str, str]],
        mtype_name: str,
    ) -> Address:
        """Register a module; returns its freshly generated UAdd."""
        reply = self._call("ns_register", {
            "name": name,
            "mtype": mtype_name,
            "payload": p.encode_register_payload(attrs or {}, addresses),
        }, reason=f"register {name!r}")
        self._expect(reply, "ns_register_ack")
        self._observe(reply.values.get("gen", 0))
        return Address(value=reply.values["uadd"])

    def resolve_name(self, name: str) -> Address:
        """Logical name → UAdd (the first of the two mappings,
        Sec. 3.3)."""
        if self.cache is not None:
            cached = self.cache.lookup_name(name)
            if cached is not None:
                return cached
        reply = self._resolve("ns_resolve_name", {"name": name},
                              reason=f"resolve {name!r}",
                              key=("name", name))
        self._expect(reply, "ns_resolve_name_ack")
        gen = reply.values.get("gen", 0)
        self._observe(gen)
        if not reply.values["found"]:
            if self.cache is not None:
                self.cache.store_missing_name(name, gen)
            raise NoSuchName(f"no module registered as {name!r}")
        uadd = Address(value=reply.values["uadd"])
        if self.cache is not None:
            self.cache.store_name(name, uadd, gen)
        return uadd

    def resolve_uadd(self, uadd: Address) -> NameRecord:
        """UAdd → physical location record (the second mapping).
        TAdds bypass the cache entirely: "they purge within two NS
        communications" (Sec. 3.3)."""
        cacheable = self.cache is not None and not uadd.temporary
        if cacheable:
            cached = self.cache.lookup_record(uadd)
            if cached is not None:
                return cached
        reply = self._resolve("ns_resolve_uadd", {"uadd": uadd.value},
                              reason=f"locate {uadd}",
                              key=("uadd", uadd))
        self._expect(reply, "ns_record_ack")
        gen = reply.values.get("gen", 0)
        self._observe(gen)
        if not reply.values["found"]:
            if cacheable:
                self.cache.store_missing_record(uadd, gen)
            raise NoSuchAddress(f"naming service has no entry for {uadd}")
        records = p.decode_records(reply.values["record"])
        if len(records) != 1:
            raise ProtocolError("ns_record_ack carried != 1 record")
        if cacheable:
            self.cache.store_record(uadd, records[0], gen)
        return records[0]

    def lookup_forwarding(self, old_uadd: Address) -> Address:
        """Ask for a forwarding UAdd after an address fault (Sec. 3.5)."""
        cacheable = self.cache is not None and not old_uadd.temporary
        if cacheable:
            cached = self.cache.lookup_forward(old_uadd)
            if cached is not None:
                return cached
        reply = self._resolve("ns_forward", {"uadd": old_uadd.value},
                              reason=f"forwarding for {old_uadd}",
                              key=("fwd", old_uadd))
        self._expect(reply, "ns_forward_ack")
        gen = reply.values.get("gen", 0)
        self._observe(gen)
        status = reply.values["status"]
        if status == p.FWD_FOUND:
            new_uadd = Address(value=reply.values["new_uadd"])
            if cacheable:
                self.cache.store_forward(old_uadd, new_uadd, gen)
            return new_uadd
        if status == p.FWD_ALIVE:
            # Not cached: "still alive" is a statement about the link,
            # not the mapping — the next fault must re-ask.
            raise ModuleStillAlive(f"{old_uadd} is still active")
        if cacheable:
            self.cache.store_no_forward(old_uadd, gen)
        raise NoForwardingAddress(f"no replacement module for {old_uadd}")

    def resolve_batch(self, names: List[str]) -> Dict[str, Optional[NameRecord]]:
        """Resolve many logical names in one ``ns_resolve_batch`` round
        trip; returns {name: record or None}.  The returned records
        prime both cache maps, so deployment warm-up replaces one
        round trip per peer with one per module."""
        unique = sorted(set(names))
        reply = self._resolve("ns_resolve_batch", {
            "count": len(unique),
            "names": p.encode_name_list(unique).encode("ascii"),
        }, reason=f"batch resolve {len(unique)} names")
        self._expect(reply, "ns_resolve_batch_ack")
        gen = reply.values.get("gen", 0)
        self._observe(gen)
        self.nucleus.counters.incr("nsp_batch_resolves")
        missing, records = p.decode_batch_payload(reply.values["payload"])
        out: Dict[str, Optional[NameRecord]] = {}
        for record in records:
            out[record.name] = record
            if self.cache is not None:
                self.cache.store_name(record.name, record.uadd, gen)
                self.cache.store_record(record.uadd, record, gen)
        for name in missing:
            out[name] = None
            if self.cache is not None:
                self.cache.store_missing_name(name, gen)
        return out

    def evict_address(self, uadd: Address) -> None:
        """Address-fault hook (Sec. 3.5 meets §9): drop any cached
        resolution that could steer traffic back to a faulted UAdd, so
        the re-resolution asks the naming service."""
        if self.cache is not None:
            self.cache.evict_address(uadd)

    def deregister(self, uadd: Address) -> bool:
        """Tombstone a UAdd in the naming service; True on success."""
        reply = self._call("ns_deregister", {"uadd": uadd.value},
                           reason=f"deregister {uadd}")
        self._expect(reply, "ns_ack")
        self.evict_address(uadd)
        return bool(reply.values["ok"])

    def list_gateways(self) -> List[NameRecord]:
        """The registered gateway records (routing topology, Sec. 4.2)."""
        reply = self._call("ns_list_gw", {}, reason="topology")
        self._expect(reply, "ns_list_gw_ack")
        self._observe(reply.values.get("gen", 0))
        return p.decode_records(reply.values["records"])

    def query_attrs(self, required: Dict[str, str]) -> List[NameRecord]:
        """Attribute-based resource location (Sec. 7's new scheme)."""
        reply = self._call("ns_query_attrs", {
            "query": p.encode_attrs(required).encode("ascii"),
        }, reason="attribute query")
        self._expect(reply, "ns_query_attrs_ack")
        self._observe(reply.values.get("gen", 0))
        return p.decode_records(reply.values["records"])

    def query_predicates(self, query_text: str) -> List[NameRecord]:
        """Predicate-based location ("kind=index;shard<=3") — served by
        Name Servers running the attribute database extension."""
        reply = self._call("ns_query_attrs", {
            "query": query_text.encode("ascii"),
        }, reason="predicate query")
        self._expect(reply, "ns_query_attrs_ack")
        self._observe(reply.values.get("gen", 0))
        return p.decode_records(reply.values["records"])

    def ping(self, timeout: float = 2.0) -> bool:
        """Is the naming service answering?"""
        try:
            reply = self._call("ns_ping", {}, reason="ping", timeout=timeout)
        except NtcsError:
            return False
        return reply.type_name == "ns_ack" and bool(reply.values["ok"])

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _expect(reply: IncomingMessage, type_name: str) -> None:
        if reply.type_name == type_name:
            return
        if reply.type_name == "ns_ack" and not reply.values.get("ok", 1):
            raise ProtocolError(
                f"naming service error: {reply.values.get('detail', '')}"
            )
        raise ProtocolError(
            f"expected {type_name}, naming service sent {reply.type_name}"
        )
