"""The sharded, replicated naming service (paper Sec. 7, PROTOCOL.md §14).

"The database could also be partially distributed across two or more
such modules ... without affecting the rest of the NTCS.  This
flexibility is a direct result of having built this service on top of
the Nucleus, and of isolating it with the NSP-Layer."

The name↔UAdd database is partitioned across N *shards* by a
deterministic consistent-hash ring over logical names; each shard is a
replica group running the :mod:`repro.naming.replicated` last-write-
wins protocol internally.  The service stays *recursive*: every shard
server is an ordinary module on the Nucleus it serves, bootstrapped
from well-known addresses exactly like the single Name Server.

Routing:

* name-keyed requests (register, resolve_name, resolve_batch) go to
  ``ring.owner(name)``,
* UAdd-keyed requests (resolve_uadd, forward, deregister) go to the
  shard containing the server that *minted* the UAdd — the Sec. 3.2
  server-id prefix makes this a shift and a dictionary lookup,
* a server asked about a name or UAdd it does not own answers
  ``ns_shard_redirect`` carrying the owning shard's replica directory;
  clients follow a bounded number of hops and fold newly learned
  shards into their own ring (the §9 path-compression idea applied to
  shard routing).

Reconciliation reuses the PR 4 generation stamps: every origin write
is appended to the database's :attr:`~NameDatabase.oplog` under its
generation stamp, and ``ns_antientropy`` pulls exactly the suffix past
the requester's watermark.  The merge is tombstone-wins and therefore
idempotent and order-insensitive.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import (
    DestinationUnavailable,
    NameServerUnreachable,
    NtcsError,
    ProtocolError,
    ReplyTimeout,
)
from repro.naming import protocol as p
from repro.naming.protocol import NameRecord
from repro.naming.replicated import ReplicatedNameServer
from repro.naming.nsp import NspLayer
from repro.ntcs.address import Address, SERVER_ID_SHIFT, blob_network
from repro.ntcs.lcm import IncomingMessage
from repro.ntcs.message import FLAG_INTERNAL

# One directory entry per shard server: (uadd, listen blob, mtype name).
ShardEntry = Tuple[Address, str, str]


# -- the consistent-hash ring -----------------------------------------------------

class HashRing:
    """Deterministic consistent hashing over shard ids.

    Hash points come from CRC-32 (stable across processes and
    platforms — Python's built-in ``hash`` is salted per process and
    would break the "every client computes the same owner" invariant).
    Each shard contributes ``vnodes`` virtual points; a name is owned
    by the shard holding the first point at or after the name's hash,
    wrapping at the top.  Adding a shard only moves names *to* it;
    removing one only moves names *from* it (monotone remapping).
    """

    def __init__(self, shard_ids: Iterable[int] = (), vnodes: int = 128):
        self.vnodes = vnodes
        self._points: List[Tuple[int, int]] = []  # sorted (point, shard)
        self._shards: set = set()
        for shard_id in sorted(shard_ids):
            self.add_shard(shard_id)

    @staticmethod
    def _hash(key: str) -> int:
        return zlib.crc32(key.encode("utf-8"))

    def _shard_points(self, shard_id: int) -> List[Tuple[int, int]]:
        return [(self._hash(f"shard-{shard_id}#{v}"), shard_id)
                for v in range(self.vnodes)]

    def add_shard(self, shard_id: int) -> None:
        """Insert a shard's virtual points; idempotent."""
        if shard_id in self._shards:
            return
        self._shards.add(shard_id)
        for point in self._shard_points(shard_id):
            bisect.insort(self._points, point)

    def remove_shard(self, shard_id: int) -> None:
        """Drop a shard's virtual points; idempotent."""
        if shard_id not in self._shards:
            return
        self._shards.discard(shard_id)
        self._points = [pt for pt in self._points if pt[1] != shard_id]

    def owner(self, name: str) -> int:
        """The shard owning a logical name."""
        if not self._points:
            raise NtcsError("the hash ring has no shards")
        index = bisect.bisect_left(self._points, (self._hash(name), -1))
        if index == len(self._points):
            index = 0
        return self._points[index][1]

    @property
    def shards(self) -> List[int]:
        return sorted(self._shards)

    def __contains__(self, shard_id: int) -> bool:
        return shard_id in self._shards

    def __len__(self) -> int:
        return len(self._shards)


# -- the shard server -------------------------------------------------------------

class ShardedNameServer(ReplicatedNameServer):
    """One replica of one naming shard.

    Identical to a :class:`ReplicatedNameServer` inside its replica
    group; on top of that it checks ownership of every name- and
    UAdd-keyed request against the ring, answering misrouted requests
    with ``ns_shard_redirect``, and serves/pulls the generation-stamped
    anti-entropy protocol.
    """

    def __init__(self, *args, shard_id: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.shard_id = shard_id
        self.shard_directory: Dict[int, List[ShardEntry]] = {}
        self._ring: Optional[HashRing] = None
        self._minted: Dict[int, int] = {}
        # Per-peer anti-entropy watermark: the peer's generation tip as
        # of the last completed pull.  Deliberately *not* persisted on
        # the database: a restarted replica starts at zero and replays
        # the peer's whole oplog (the merge is idempotent).
        self._applied_gen: Dict[Address, int] = {}
        self._handlers["ns_antientropy"] = self._handle_antientropy
        self._handlers["ns_shard_handoff"] = self._handle_handoff

    # -- shard map ------------------------------------------------------------

    def set_shard_map(self, shard_directory: Dict[int, List[ShardEntry]]) -> None:
        """Install (or refresh, after a rebalance) the shard→replicas
        directory this server routes and redirects by."""
        self.shard_directory = {
            sid: list(entries) for sid, entries in shard_directory.items()
        }
        self._ring = HashRing(self.shard_directory)
        self._minted = {
            uadd.value >> SERVER_ID_SHIFT: sid
            for sid, entries in self.shard_directory.items()
            for uadd, _, _ in entries
        }

    def _owner_of(self, name: str) -> int:
        if self._ring is None:
            return self.shard_id
        return self._ring.owner(name)

    def _redirect(self, shard_id: int):
        """A redirect reply carrying the owning shard's replica
        directory as name records, so the client can follow it without
        any further resolution."""
        self.counters.incr("shard_redirects_served")
        records = []
        for uadd, blob, mtype_name in self.shard_directory.get(shard_id, []):
            records.append(NameRecord(
                name=f"name.shard.{shard_id}",
                uadd=uadd,
                mtype_name=mtype_name,
                attrs={"kind": "nameserver", "shard": str(shard_id)},
                addresses=[(blob_network(blob), blob)] if blob else [],
            ))
        return "ns_shard_redirect", {
            "shard_id": shard_id,
            "count": len(records),
            "records": p.encode_records(records),
        }

    def _uadd_misroute(self, request: IncomingMessage) -> Optional[int]:
        """The shard that should serve a UAdd-keyed request, when it is
        not this one.  A record we hold is owned by whoever owns its
        name (it may have moved in a rebalance); an unknown UAdd routes
        by the server id that minted it.  Fleet self-registrations are
        exempt from ring ownership: a server is always the authority
        for its own address, and hashing ``name.shard.N.R`` like
        application data would bounce a redirect between the minting
        shard and the hash owner forever."""
        if self._ring is None:
            return None
        uadd = Address(value=request.values["uadd"])
        record = self.db.get(uadd)
        if record is not None:
            if record.attrs.get("kind") == "nameserver":
                return None
            owner = self._ring.owner(record.name)
            return owner if owner != self.shard_id else None
        shard = self._minted.get(uadd.value >> SERVER_ID_SHIFT)
        if shard is not None and shard != self.shard_id:
            return shard
        return None

    # -- ownership-checked handlers ---------------------------------------------

    def _handle_register(self, request: IncomingMessage):
        owner = self._owner_of(request.values["name"])
        if owner != self.shard_id:
            return self._redirect(owner)
        return super()._handle_register(request)

    def _handle_resolve_name(self, request: IncomingMessage):
        owner = self._owner_of(request.values["name"])
        if owner != self.shard_id:
            return self._redirect(owner)
        return super()._handle_resolve_name(request)

    def _handle_resolve_batch(self, request: IncomingMessage):
        names = p.decode_name_list(request.values["names"].decode("ascii"))
        for name in names:
            owner = self._owner_of(name)
            if owner != self.shard_id:
                return self._redirect(owner)
        return super()._handle_resolve_batch(request)

    def _handle_resolve_uadd(self, request: IncomingMessage):
        owner = self._uadd_misroute(request)
        if owner is not None:
            return self._redirect(owner)
        return super()._handle_resolve_uadd(request)

    def _handle_forward(self, request: IncomingMessage):
        owner = self._uadd_misroute(request)
        if owner is not None:
            return self._redirect(owner)
        return super()._handle_forward(request)

    def _handle_deregister(self, request: IncomingMessage):
        owner = self._uadd_misroute(request)
        if owner is not None:
            return self._redirect(owner)
        return super()._handle_deregister(request)

    # -- replication + anti-entropy ---------------------------------------------

    def _replicate(self, op: str, record: NameRecord) -> None:
        # Every origin write enters the anti-entropy log under its
        # generation stamp before the best-effort fan-out, so a peer
        # that missed the datagram can pull it later.
        self.db.log_write(record)
        super()._replicate(op, record)

    def _handle_antientropy(self, request: IncomingMessage):
        watermark = request.values["gen"]
        entries = [(stamp, record) for stamp, record in self.db.oplog
                   if stamp > watermark]
        self.counters.incr("antientropy_served")
        return "ns_antientropy_ack", {
            "gen": self.db.generation,
            "count": len(entries),
            "records": p.encode_stamped_records(entries),
        }

    def run_antientropy(self) -> int:
        """Pull every in-shard peer's origin writes past our watermark
        and merge them (tombstone-wins).  Returns how many records
        changed this database.  Called after a restart — and callable
        any time; the exchange is idempotent."""
        applied = 0
        for peer in list(self.peer_uadds):
            watermark = self._applied_gen.get(peer, 0)
            try:
                reply = self.nucleus.lcm.call(peer, "ns_antientropy", {
                    "shard_id": self.shard_id,
                    "gen": watermark,
                    "digest": str(self.db.generation).encode("ascii"),
                }, flags=FLAG_INTERNAL)
            except (NameServerUnreachable, DestinationUnavailable,
                    ReplyTimeout):
                self.counters.incr("antientropy_skipped")
                continue
            if reply.type_name != "ns_antientropy_ack":
                self.counters.incr("antientropy_skipped")
                continue
            for _stamp, record in p.decode_stamped_records(
                    reply.values["records"]):
                if self.db.merge(record):
                    applied += 1
            self._applied_gen[peer] = reply.values["gen"]
            self.counters.incr("antientropy_rounds")
        if applied:
            self.counters.incr("antientropy_records_applied", applied)
        return applied

    # -- ownership transfer ------------------------------------------------------

    def _handle_handoff(self, request: IncomingMessage):
        if request.values["shard_id"] != self.shard_id:
            return "ns_shard_handoff_ack", {"ok": 0, "count": 0}
        pairs = p.decode_stamped_records(request.values["records"])
        applied = 0
        for _stamp, record in pairs:
            if self.db.merge(record):
                applied += 1
                # The moved record becomes an origin write of the new
                # owner: logged for anti-entropy and fanned out to the
                # shard's replicas.
                self._replicate(
                    "register" if record.alive else "deregister", record)
        if pairs:
            self.counters.incr("handoff_records_in", len(pairs))
        return "ns_shard_handoff_ack", {"ok": 1, "count": applied}

    def handoff_to(self, new_shard_id: int, target: Address) -> int:
        """Push every record the (re-drawn) ring assigns to
        ``new_shard_id`` to that shard's replica at ``target``.  The
        records stay in this database as stale copies — the ownership
        check redirects every future request for them."""
        moved = [
            (self.db.generation, record)
            for record in self.db.all_records()
            if self._owner_of(record.name) == new_shard_id
            # Fleet self-registrations stay pinned to the shard that
            # minted them (see _uadd_misroute); shipping a copy could
            # serve a stale address after the server re-binds.
            and record.attrs.get("kind") != "nameserver"
        ]
        if not moved:
            return 0
        reply = self.nucleus.lcm.call(target, "ns_shard_handoff", {
            "shard_id": new_shard_id,
            "count": len(moved),
            "records": p.encode_stamped_records(moved),
        }, flags=FLAG_INTERNAL)
        if reply.type_name != "ns_shard_handoff_ack" \
                or not reply.values["ok"]:
            raise ProtocolError(
                f"shard {new_shard_id} rejected the ownership handoff")
        self.counters.incr("handoff_records_out", len(moved))
        return len(moved)


# -- the shard-aware NSP layer ------------------------------------------------------

class ShardedNspLayer(NspLayer):
    """NSP-Layer that routes each request to the owning shard, fails
    over inside the shard's replica group, and follows a bounded
    number of ``ns_shard_redirect`` hops — folding newly learned
    shards into its own ring so the next request goes direct."""

    _NAME_KEYED = {"ns_register": "name", "ns_resolve_name": "name"}
    _UADD_KEYED = frozenset({"ns_resolve_uadd", "ns_forward",
                             "ns_deregister"})
    _MAX_HOPS = 4

    def __init__(self, nucleus, shard_directory: Dict[int, List[ShardEntry]]):
        if not shard_directory:
            raise NtcsError("a sharded NSP needs at least one shard")
        anchor = min(shard_directory)
        super().__init__(nucleus, ns_uadd=shard_directory[anchor][0][0])
        # Same reasoning as ReplicatedNspLayer: generation stamps from
        # different replicas are not comparable, and coalescing would
        # bypass the per-shard failover loop.
        self.cache = None
        self._coalesce = False
        self._directory = {
            sid: list(entries) for sid, entries in shard_directory.items()
        }
        self._ring = HashRing(self._directory)
        self._minted = {
            uadd.value >> SERVER_ID_SHIFT: sid
            for sid, entries in self._directory.items()
            for uadd, _, _ in entries
        }
        self._current: Dict[int, int] = {}
        self.failovers = 0
        # Every replica of every shard is "the naming service" to the
        # Sec. 6.3 patch, and its well-known blob primes our tables
        # (the Sec. 3.4 bootstrap, extended to the whole fleet).
        for entries in self._directory.values():
            for uadd, blob, mtype_name in entries:
                nucleus.ns_addresses.add(uadd)
                if blob:
                    nucleus.addr_cache.store(uadd, blob, mtype_name)

    # -- routing --------------------------------------------------------------

    def _route(self, type_name: str, values: dict) -> int:
        name_field = self._NAME_KEYED.get(type_name)
        if name_field is not None:
            return self._ring.owner(values[name_field])
        if type_name in self._UADD_KEYED:
            shard = self._minted.get(values["uadd"] >> SERVER_ID_SHIFT)
            if shard is not None:
                return shard
        return min(self._directory)

    def _learn_redirect(self, reply: IncomingMessage) -> int:
        """Absorb a redirect: count it, and if it names a shard we have
        never seen (a rebalance happened behind our back), fold its
        replica directory into the ring — shard-level path compression."""
        shard_id = reply.values["shard_id"]
        nucleus = self.nucleus
        nucleus.counters.incr("nsp_shard_redirects")
        if shard_id not in self._directory:
            entries: List[ShardEntry] = []
            for record in p.decode_records(reply.values["records"]):
                blob = record.addresses[0][1] if record.addresses else ""
                entries.append((record.uadd, blob, record.mtype_name))
                nucleus.ns_addresses.add(record.uadd)
                if blob:
                    nucleus.addr_cache.store(record.uadd, blob,
                                             record.mtype_name)
            if not entries:
                raise ProtocolError(
                    f"redirect to unknown shard {shard_id} without a directory")
            self._directory[shard_id] = entries
            self._ring.add_shard(shard_id)
            nucleus.counters.incr("nsp_shard_ring_updates")
        return shard_id

    def _call_replicas(self, shard: int, type_name: str, values: dict,
                       timeout: Optional[float]) -> IncomingMessage:
        nucleus = self.nucleus
        servers = [uadd for uadd, _, _ in self._directory[shard]]
        start = self._current.get(shard, 0)
        last_error: Optional[Exception] = None
        for i in range(len(servers)):
            index = (start + i) % len(servers)
            try:
                reply = nucleus.lcm.call(
                    servers[index], type_name, values,
                    timeout=timeout, flags=FLAG_INTERNAL,
                )
            except (NameServerUnreachable, DestinationUnavailable,
                    ReplyTimeout) as exc:
                last_error = exc
                if i + 1 < len(servers):
                    self.failovers += 1
                    nucleus.counters.incr("ns_failovers")
                continue
            self._current[shard] = index
            return reply
        raise NameServerUnreachable(
            f"all {len(servers)} servers of naming shard {shard} "
            f"failed: {last_error}"
        )

    def _call_shard(self, shard: int, type_name: str, values: dict,
                    reason: str, timeout: Optional[float] = None,
                    follow: bool = True) -> IncomingMessage:
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, type_name, reason=reason):
            nucleus.counters.incr("nsp_calls")
            for _hop in range(1 + self._MAX_HOPS):
                reply = self._call_replicas(shard, type_name, values, timeout)
                if reply.type_name != "ns_shard_redirect":
                    return reply
                target = self._learn_redirect(reply)
                if not follow:
                    return reply
                if target == shard:
                    break
                shard = target
            raise ProtocolError(
                f"sharded naming: redirect loop for {type_name}")

    def _call(self, type_name: str, values: dict, reason: str,
              timeout: Optional[float] = None) -> IncomingMessage:
        return self._call_shard(self._route(type_name, values),
                                type_name, values, reason, timeout=timeout)

    # -- fan-out operations ------------------------------------------------------

    def _fan_out(self, type_name: str, values: dict, reason: str,
                 ack_type: str) -> List[NameRecord]:
        """Query every shard and merge the record lists (dedup by UAdd,
        sorted by UAdd value for determinism)."""
        merged: Dict[Address, NameRecord] = {}
        for shard in sorted(self._directory):
            reply = self._call_shard(shard, type_name, dict(values),
                                     reason=reason)
            self._expect(reply, ack_type)
            for record in p.decode_records(reply.values["records"]):
                merged[record.uadd] = record
        return sorted(merged.values(), key=lambda r: r.uadd.value)

    def list_gateways(self) -> List[NameRecord]:
        """The registered gateways, merged across every shard."""
        return self._fan_out("ns_list_gw", {}, "topology", "ns_list_gw_ack")

    def query_attrs(self, required: Dict[str, str]) -> List[NameRecord]:
        """Attribute-based location, merged across every shard."""
        return self._fan_out("ns_query_attrs", {
            "query": p.encode_attrs(required).encode("ascii"),
        }, "attribute query", "ns_query_attrs_ack")

    def query_predicates(self, query_text: str) -> List[NameRecord]:
        """Predicate-based location, merged across every shard."""
        return self._fan_out("ns_query_attrs", {
            "query": query_text.encode("ascii"),
        }, "predicate query", "ns_query_attrs_ack")

    def resolve_batch(self, names: List[str]) -> Dict[str, Optional[NameRecord]]:
        """Group the names by owning shard and resolve each group in one
        round trip.  A redirect (stale ring during a rebalance) folds in
        the learned shard and regroups the affected names."""
        out: Dict[str, Optional[NameRecord]] = {}
        pending = sorted(set(names))
        for _attempt in range(1 + self._MAX_HOPS):
            if not pending:
                return out
            groups: Dict[int, List[str]] = {}
            for name in pending:
                groups.setdefault(self._ring.owner(name), []).append(name)
            redo: List[str] = []
            for shard in sorted(groups):
                batch = groups[shard]
                reply = self._call_shard(shard, "ns_resolve_batch", {
                    "count": len(batch),
                    "names": p.encode_name_list(batch).encode("ascii"),
                }, reason=f"batch resolve {len(batch)} names", follow=False)
                if reply.type_name == "ns_shard_redirect":
                    redo.extend(batch)
                    continue
                self._expect(reply, "ns_resolve_batch_ack")
                self.nucleus.counters.incr("nsp_batch_resolves")
                missing, records = p.decode_batch_payload(
                    reply.values["payload"])
                for record in records:
                    out[record.name] = record
                for name in missing:
                    out[name] = None
            pending = redo
        raise ProtocolError("sharded naming: batch resolve redirect loop")


# -- deployment ------------------------------------------------------------------

def deploy_sharded_naming(testbed, shard_machines: Sequence[Sequence[str]]):
    """Start one :class:`ShardedNameServer` per machine of every shard,
    wire the intra-shard replication meshes and the cross-shard
    directory, and make every future ``testbed.module(...)`` use a
    :class:`ShardedNspLayer`.  ``shard_machines`` is one machine-name
    list per shard.  Returns {shard_id: [servers]}; shard 0's first
    replica is the conventional primary (server id 0, so it owns the
    well-known ``NAME_SERVER_UADD``)."""
    if not shard_machines:
        raise NtcsError("a sharded naming service needs at least one shard")
    groups: Dict[int, List[ShardedNameServer]] = {}
    server_id = 0
    for shard_id, machines in enumerate(shard_machines):
        group: List[ShardedNameServer] = []
        for machine_name in machines:
            group.append(_start_shard_server(
                testbed, machine_name, shard_id, len(group), server_id))
            server_id += 1
        groups[shard_id] = group
    primary = groups[0][0]
    testbed.wellknown.add_name_server_blob(primary.listen_blob)
    testbed.name_server_instance = primary
    directory = {
        shard_id: [(s.uadd, s.listen_blob, s.process.machine.mtype.name)
                   for s in group]
        for shard_id, group in groups.items()
    }
    _wire_shard_servers(groups, directory)
    testbed.shard_groups = groups
    testbed.shard_directory = directory
    testbed.nsp_factory = lambda nucleus: ShardedNspLayer(nucleus, directory)
    return groups


def _start_shard_server(testbed, machine_name: str, shard_id: int,
                        replica_index: int, server_id: int) -> "ShardedNameServer":
    from dataclasses import replace as _replace
    from repro.machine.process import SimProcess
    from repro.naming.database import NameDatabase

    machine = testbed.machines[machine_name]
    network = machine.networks[0]
    protocol = testbed.networks[network].protocol
    binding = ("411" if protocol == "tcp" else "/mbx/name.server")
    name = f"name.shard.{shard_id}.{replica_index}"
    process = SimProcess(machine, name)
    db = NameDatabase(server_id=server_id,
                      clock=lambda: testbed.scheduler.now)
    server = ShardedNameServer(
        process, testbed.registry, testbed.wellknown,
        network=network, binding=binding,
        config=_replace(testbed.config), db=db,
        name=name, shard_id=shard_id,
    )
    testbed.name_shard_servers[machine_name] = server
    return server


def _wire_shard_servers(groups: Dict[int, List[ShardedNameServer]],
                        directory: Dict[int, List[ShardEntry]]) -> None:
    """Give every server the shard map, its replica peers, the whole
    fleet's well-known blobs, and its peers' self-registrations."""
    fleet = [entry for entries in directory.values() for entry in entries]
    for shard_id, group in groups.items():
        peer_uadds = [s.uadd for s in group]
        for server in group:
            server.set_shard_map(directory)
            server.set_peers(peer_uadds)
            for uadd, blob, mtype_name in fleet:
                server.nucleus.ns_addresses.add(uadd)
                if uadd != server.uadd and blob:
                    server.nucleus.addr_cache.store(uadd, blob, mtype_name)
            for other in group:
                if other is not server:
                    for record in other.db.all_records():
                        server.db.adopt(record)


def add_naming_shard(testbed, machine_names: Sequence[str]):
    """Rebalance a live sharded deployment: start a new replica group
    as the next shard, push the re-drawn shard map to every existing
    server (a configuration push — no gateway is involved), and hand
    over the records the new ring assigns to the newcomer.  Existing
    clients keep their stale ring and are steered by redirects; new
    modules see the grown directory immediately."""
    groups = testbed.shard_groups
    directory = testbed.shard_directory
    new_shard_id = max(groups) + 1
    next_server_id = 1 + max(
        uadd.value >> SERVER_ID_SHIFT
        for entries in directory.values() for uadd, _, _ in entries
    )
    group: List[ShardedNameServer] = []
    for machine_name in machine_names:
        group.append(_start_shard_server(
            testbed, machine_name, new_shard_id, len(group),
            next_server_id + len(group)))
    groups[new_shard_id] = group
    directory[new_shard_id] = [
        (s.uadd, s.listen_blob, s.process.machine.mtype.name) for s in group
    ]
    _wire_shard_servers(groups, directory)
    # Ownership transfer: each old shard's first live replica pushes
    # the records that now belong to the newcomer.
    target = group[0].uadd
    moved = 0
    for shard_id, old_group in groups.items():
        if shard_id == new_shard_id:
            continue
        for server in old_group:
            if server.process.alive:
                moved += server.handoff_to(new_shard_id, target)
                break
    return group, moved


def heal_naming_shards(testbed) -> int:
    """Run one anti-entropy round on every live shard server (the test
    harness's convergence step); returns how many records moved."""
    applied = 0
    for group in testbed.shard_groups.values():
        for server in group:
            if server.process.alive:
                applied += server.run_antientropy()
    return applied
