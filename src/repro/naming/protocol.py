"""The naming-service wire protocol.

Requests and replies are ordinary NTCS messages with packed-mode bodies
(control data fields are "built in packed mode", Sec. 5.2).  Variable
structures — attribute sets, address lists, whole name records — ride
in ``bytes`` tail fields using a simple percent-escaped character
encoding, keeping the entire protocol within the paper's character
transport format.

Type ids 10–39 are reserved here (see :mod:`repro.ntcs.protocol` for
the id map).

Replies that report resolution results carry the database *generation*
(``gen``) — a monotonically increasing write counter stamped by the
Name Server — so NSP-layer caches can discard entries that predate a
newer write (PROTOCOL.md §9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.conversion import ConversionRegistry, Field, StructDef
from repro.errors import ProtocolError
from repro.ntcs.address import Address

# -- type ids -----------------------------------------------------------------

T_NS_REGISTER = 10
T_NS_REGISTER_ACK = 11
T_NS_RESOLVE_NAME = 12
T_NS_RESOLVE_NAME_ACK = 13
T_NS_RESOLVE_UADD = 14
T_NS_RECORD_ACK = 15
T_NS_FORWARD = 16
T_NS_FORWARD_ACK = 17
T_NS_DEREGISTER = 18
T_NS_ACK = 19
T_NS_LIST_GW = 20
T_NS_LIST_GW_ACK = 21
T_NS_PING = 22
T_NS_QUERY_ATTRS = 23
T_NS_QUERY_ATTRS_ACK = 24
T_NS_REPL_UPDATE = 25
T_NS_RESOLVE_BATCH = 26
T_NS_RESOLVE_BATCH_ACK = 27
T_NS_SHARD_REDIRECT = 28
T_NS_SHARD_HANDOFF = 29
T_NS_SHARD_HANDOFF_ACK = 30
T_NS_ANTIENTROPY = 31
T_NS_ANTIENTROPY_ACK = 32

# Forward-lookup status codes (ns_forward_ack.status).
FWD_FOUND = 0
FWD_NONE = 1
FWD_ALIVE = 2

_STRUCTS = [
    StructDef("ns_register", T_NS_REGISTER, [
        Field("name", "char[64]"),
        Field("mtype", "char[16]"),
        Field("payload", "bytes"),       # encoded attrs + addresses
    ]),
    StructDef("ns_register_ack", T_NS_REGISTER_ACK, [
        Field("uadd", "u64"),
        Field("gen", "u64"),
    ]),
    StructDef("ns_resolve_name", T_NS_RESOLVE_NAME, [
        Field("name", "char[64]"),
    ]),
    StructDef("ns_resolve_name_ack", T_NS_RESOLVE_NAME_ACK, [
        Field("found", "u8"),
        Field("uadd", "u64"),
        Field("gen", "u64"),
    ]),
    StructDef("ns_resolve_uadd", T_NS_RESOLVE_UADD, [
        Field("uadd", "u64"),
    ]),
    StructDef("ns_record_ack", T_NS_RECORD_ACK, [
        Field("found", "u8"),
        Field("gen", "u64"),
        Field("record", "bytes"),
    ]),
    StructDef("ns_forward", T_NS_FORWARD, [
        Field("uadd", "u64"),
    ]),
    StructDef("ns_forward_ack", T_NS_FORWARD_ACK, [
        Field("status", "u8"),
        Field("new_uadd", "u64"),
        Field("gen", "u64"),
    ]),
    StructDef("ns_deregister", T_NS_DEREGISTER, [
        Field("uadd", "u64"),
    ]),
    StructDef("ns_ack", T_NS_ACK, [
        Field("ok", "u8"),
        Field("detail", "char[96]"),
    ]),
    StructDef("ns_list_gw", T_NS_LIST_GW, []),
    StructDef("ns_list_gw_ack", T_NS_LIST_GW_ACK, [
        Field("count", "u32"),
        Field("gen", "u64"),
        Field("records", "bytes"),
    ]),
    StructDef("ns_ping", T_NS_PING, []),
    StructDef("ns_query_attrs", T_NS_QUERY_ATTRS, [
        Field("query", "bytes"),
    ]),
    StructDef("ns_query_attrs_ack", T_NS_QUERY_ATTRS_ACK, [
        Field("count", "u32"),
        Field("gen", "u64"),
        Field("records", "bytes"),
    ]),
    StructDef("ns_repl_update", T_NS_REPL_UPDATE, [
        Field("op", "char[16]"),
        Field("record", "bytes"),
    ]),
    StructDef("ns_resolve_batch", T_NS_RESOLVE_BATCH, [
        Field("count", "u32"),
        Field("names", "bytes"),
    ]),
    StructDef("ns_resolve_batch_ack", T_NS_RESOLVE_BATCH_ACK, [
        Field("gen", "u64"),
        Field("count", "u32"),
        Field("payload", "bytes"),       # missing names + found records
    ]),
    # -- sharded naming (PROTOCOL.md §14) ------------------------------------
    StructDef("ns_shard_redirect", T_NS_SHARD_REDIRECT, [
        Field("shard_id", "u32"),
        Field("count", "u32"),
        Field("records", "bytes"),       # the owning shard's server records
    ]),
    StructDef("ns_shard_handoff", T_NS_SHARD_HANDOFF, [
        Field("shard_id", "u32"),
        Field("count", "u32"),
        Field("records", "bytes"),       # stamped records changing owner
    ]),
    StructDef("ns_shard_handoff_ack", T_NS_SHARD_HANDOFF_ACK, [
        Field("ok", "u8"),
        Field("count", "u32"),
    ]),
    StructDef("ns_antientropy", T_NS_ANTIENTROPY, [
        Field("shard_id", "u32"),
        Field("gen", "u64"),             # requester's watermark for the peer
        Field("digest", "bytes"),        # requester's own generation tip
    ]),
    StructDef("ns_antientropy_ack", T_NS_ANTIENTROPY_ACK, [
        Field("gen", "u64"),             # responder's generation tip
        Field("count", "u32"),
        Field("records", "bytes"),       # stamped records past the watermark
    ]),
]


def register_naming_types(registry: ConversionRegistry) -> None:
    """Install the naming-service wire structures into a registry."""
    for sdef in _STRUCTS:
        registry.register(sdef)


# -- character encodings for the variable parts ---------------------------------

_ESCAPES = {"%": "%25", ";": "%3B", "=": "%3D", ",": "%2C", "|": "%7C",
            "\n": "%0A"}


def _escape(text: str) -> str:
    out = text.replace("%", "%25")
    for raw, escaped in _ESCAPES.items():
        if raw != "%":
            out = out.replace(raw, escaped)
    return out


def _unescape(text: str) -> str:
    out = text
    for raw, escaped in _ESCAPES.items():
        if raw != "%":
            out = out.replace(escaped, raw)
    return out.replace("%25", "%")


def encode_attrs(attrs: Dict[str, str]) -> str:
    """attrs dict → "k=v;k=v" with escaping, keys sorted for
    determinism."""
    return ";".join(
        f"{_escape(str(k))}={_escape(str(v))}" for k, v in sorted(attrs.items())
    )


def decode_attrs(text: str) -> Dict[str, str]:
    """Parse a 'k=v;k=v' attribute string (percent-unescaping)."""
    attrs: Dict[str, str] = {}
    if not text:
        return attrs
    for pair in text.split(";"):
        key, sep, value = pair.partition("=")
        if not sep:
            raise ProtocolError(f"malformed attribute pair {pair!r}")
        attrs[_unescape(key)] = _unescape(value)
    return attrs


def encode_addresses(addresses: List[Tuple[str, str]]) -> str:
    """[(network, blob)] → "net|blob,net|blob"."""
    return ",".join(f"{_escape(net)}|{_escape(blob)}" for net, blob in addresses)


def decode_addresses(text: str) -> List[Tuple[str, str]]:
    """Parse a 'net|blob,net|blob' address list."""
    if not text:
        return []
    out = []
    for item in text.split(","):
        net, sep, blob = item.partition("|")
        if not sep:
            raise ProtocolError(f"malformed address entry {item!r}")
        out.append((_unescape(net), _unescape(blob)))
    return out


# -- name records -----------------------------------------------------------

@dataclass
class NameRecord:
    """One naming-service entry, as exchanged on the wire.

    The physical-address blobs are carried and stored *uninterpreted*
    (Sec. 3.2) — this class never parses them beyond the network tag
    every driver places second.
    """

    name: str
    uadd: Address
    mtype_name: str
    attrs: Dict[str, str] = field(default_factory=dict)
    addresses: List[Tuple[str, str]] = field(default_factory=list)
    alive: bool = True
    registered_at: float = 0.0

    def networks(self) -> List[str]:
        """The networks this record has addresses on."""
        return [net for net, _ in self.addresses]

    def blob_on(self, network: str) -> Optional[str]:
        """The record's physical blob on one network, or None."""
        for net, blob in self.addresses:
            if net == network:
                return blob
        return None

    @property
    def is_gateway(self) -> bool:
        return self.attrs.get("kind") == "gateway"

    # -- wire form (a line of escaped fields) -----------------------------------

    def encode(self) -> str:
        """The record's wire form (escaped, newline-joined fields)."""
        return "\n".join([
            _escape(self.name),
            str(self.uadd.value),
            _escape(self.mtype_name),
            encode_attrs(self.attrs),
            encode_addresses(self.addresses),
            "1" if self.alive else "0",
            repr(self.registered_at),
        ])

    @classmethod
    def decode(cls, text: str) -> "NameRecord":
        parts = text.split("\n")
        if len(parts) != 7:
            raise ProtocolError(f"malformed name record ({len(parts)} fields)")
        return cls(
            name=_unescape(parts[0]),
            uadd=Address(value=int(parts[1])),
            mtype_name=_unescape(parts[2]),
            attrs=decode_attrs(parts[3]),
            addresses=decode_addresses(parts[4]),
            alive=parts[5] == "1",
            registered_at=float(parts[6]),
        )


_RECORD_SEP = "\x1d"  # ASCII group separator between records


def encode_records(records: List[NameRecord]) -> bytes:
    """Encode a record list for a bytes tail field."""
    return _RECORD_SEP.join(r.encode() for r in records).encode("ascii")


def decode_records(data: bytes) -> List[NameRecord]:
    """Decode a record list from a bytes tail field."""
    text = data.decode("ascii")
    if not text:
        return []
    return [NameRecord.decode(chunk) for chunk in text.split(_RECORD_SEP)]


_PART_SEP = "\x1e"  # ASCII record separator between payload sections


def encode_register_payload(attrs: Dict[str, str],
                            addresses: List[Tuple[str, str]]) -> bytes:
    """Bundle attrs + addresses for ns_register."""
    return (encode_attrs(attrs) + _PART_SEP + encode_addresses(addresses)).encode("ascii")


def decode_register_payload(data: bytes) -> Tuple[Dict[str, str], List[Tuple[str, str]]]:
    """Split an ns_register payload into (attrs, addresses)."""
    text = data.decode("ascii")
    attrs_text, sep, addr_text = text.partition(_PART_SEP)
    if not sep:
        raise ProtocolError("malformed register payload")
    return decode_attrs(attrs_text), decode_addresses(addr_text)


# -- batched resolution (ns_resolve_batch / _ack) --------------------------------

def encode_name_list(names: List[str]) -> str:
    """A logical-name list as one escaped ';'-separated string."""
    return ";".join(_escape(name) for name in names)


def decode_name_list(text: str) -> List[str]:
    """Parse an escaped ';'-separated logical-name list."""
    if not text:
        return []
    return [_unescape(item) for item in text.split(";")]


def encode_batch_payload(missing: List[str],
                         records: List[NameRecord]) -> bytes:
    """Bundle an ns_resolve_batch_ack payload: the names that did not
    resolve, then the full records of those that did."""
    return (encode_name_list(missing) + _PART_SEP).encode("ascii") \
        + encode_records(records)


def decode_batch_payload(data: bytes) -> Tuple[List[str], List[NameRecord]]:
    """Split an ns_resolve_batch_ack payload into
    (missing names, resolved records)."""
    head, sep, tail = data.partition(_PART_SEP.encode("ascii"))
    if not sep:
        raise ProtocolError("malformed batch-resolve payload")
    return decode_name_list(head.decode("ascii")), decode_records(tail)


# -- stamped records (sharded naming, PROTOCOL.md §14) ---------------------------

_STAMP_SEP = "\x1f"  # ASCII unit separator between stamp and record


def encode_stamped_records(pairs: List[Tuple[int, NameRecord]]) -> bytes:
    """Encode (generation stamp, record) pairs for an anti-entropy or
    handoff tail field.  The stamp is the origin database's generation
    at write time (PROTOCOL.md §9), so a receiver can resume a partial
    sync from the highest stamp it applied."""
    return _RECORD_SEP.join(
        f"{stamp}{_STAMP_SEP}{record.encode()}" for stamp, record in pairs
    ).encode("ascii")


def decode_stamped_records(data: bytes) -> List[Tuple[int, NameRecord]]:
    """Decode a stamped-record list from a bytes tail field."""
    text = data.decode("ascii")
    if not text:
        return []
    out: List[Tuple[int, NameRecord]] = []
    for chunk in text.split(_RECORD_SEP):
        stamp_text, sep, record_text = chunk.partition(_STAMP_SEP)
        if not sep:
            raise ProtocolError("malformed stamped record")
        out.append((int(stamp_text), NameRecord.decode(record_text)))
    return out
