"""Attribute-value naming (paper Sec. 7).

"Both the naming scheme and the naming service implementation are
currently being replaced ... The former will be attribute-value based".

The base database already stores free-form attribute dicts and answers
exact-match queries.  This module adds the richer matching an
attribute-value scheme needs:

* predicates: ``=`` (exact), ``!=``, ``<``/``<=``/``>``/``>=``
  (numeric), ``~`` (substring), ``*`` (present),
* scored *similarity* between attribute sets, used by
  :class:`AttributeNameDatabase` to find "a similar name in a newer
  module" (Sec. 3.5) when exact names differ — the paper notes that
  with attribute naming, forwarding "is more involved".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import (
    ModuleStillAlive,
    NoForwardingAddress,
    ProtocolError,
)
from repro.naming.database import NameDatabase
from repro.naming.protocol import NameRecord

_OPS = ("<=", ">=", "!=", "=", "<", ">", "~", "*")


@dataclass(frozen=True)
class Predicate:
    """One attribute predicate, e.g. ``shard<=3`` or ``kind=index``."""

    key: str
    op: str
    value: str = ""

    def matches(self, attrs: Dict[str, str]) -> bool:
        """True when this predicate holds over an attribute dict."""
        present = self.key in attrs
        if self.op == "*":
            return present
        if not present:
            return False
        actual = attrs[self.key]
        if self.op == "=":
            return actual == self.value
        if self.op == "!=":
            return actual != self.value
        if self.op == "~":
            return self.value in actual
        try:
            left, right = float(actual), float(self.value)
        except ValueError:
            return False
        if self.op == "<":
            return left < right
        if self.op == "<=":
            return left <= right
        if self.op == ">":
            return left > right
        return left >= right  # ">="

    def encode(self) -> str:
        """The predicate's wire form, e.g. 'shard<=3'."""
        return f"{self.key}{self.op}{self.value}"

    @classmethod
    def parse(cls, text: str) -> "Predicate":
        for op in _OPS:
            idx = text.find(op)
            if idx > 0:
                key = text[:idx]
                value = text[idx + len(op):]
                if op == "*" and value:
                    raise ProtocolError(f"presence predicate takes no value: {text!r}")
                return cls(key=key, op=op, value=value)
        raise ProtocolError(f"unparsable predicate {text!r}")


def parse_query(text: str) -> List[Predicate]:
    """Parse a ';'-separated predicate list ("kind=index;shard<=3")."""
    if not text:
        return []
    return [Predicate.parse(part) for part in text.split(";") if part]


def match_all(predicates: List[Predicate], attrs: Dict[str, str]) -> bool:
    """True when every predicate holds over the attribute dict."""
    return all(p.matches(attrs) for p in predicates)


def similarity(a: Dict[str, str], b: Dict[str, str]) -> float:
    """Jaccard-style similarity over attribute *pairs*: 1.0 for
    identical sets, 0.0 for disjoint."""
    pairs_a = set(a.items())
    pairs_b = set(b.items())
    if not pairs_a and not pairs_b:
        return 1.0
    union = pairs_a | pairs_b
    return len(pairs_a & pairs_b) / len(union)


class AttributeNameDatabase(NameDatabase):
    """A NameDatabase whose queries take predicates and whose
    forwarding falls back to attribute similarity.

    Drop-in for :class:`NameDatabase` (pass as ``db=`` to
    :class:`~repro.naming.server.NameServer`): the wire protocol is
    unchanged — predicate strings ride in the existing query field.
    """

    SIMILARITY_THRESHOLD = 0.5

    def query_attrs(self, required: Dict[str, str]) -> List[NameRecord]:
        """Exact-match dict queries still work; string values that look
        like predicates ("<=3") are honoured via the predicate engine
        when queried through :meth:`query_predicates`."""
        return super().query_attrs(required)

    def query_predicates(self, predicates: List[Predicate]) -> List[NameRecord]:
        """All alive records satisfying every predicate."""
        return [
            record for record in self.all_records()
            if record.alive and match_all(predicates, record.attrs)
        ]

    def lookup_forwarding(self, old_uadd) -> NameRecord:
        """Name-based forwarding first; attribute-similarity fallback
        when no same-name replacement exists."""
        record = self.resolve_uadd(old_uadd)
        if self.is_active(record):
            raise ModuleStillAlive(f"{old_uadd} ({record.name!r}) is still active")
        try:
            return super().lookup_forwarding(old_uadd)
        except NoForwardingAddress:  # ntcslint: allow=EXC002 — fallthrough to attribute-similarity fallback below
            pass
        best: Optional[NameRecord] = None
        best_score = self.SIMILARITY_THRESHOLD
        for candidate in self.all_records():
            if not candidate.alive or candidate.uadd == old_uadd:
                continue
            if not self.is_active(candidate):
                continue
            score = similarity(record.attrs, candidate.attrs)
            if score > best_score or (best is not None and score == best_score):
                if best is None or score > best_score or \
                        candidate.registered_at > best.registered_at:
                    best = candidate
                    best_score = max(best_score, score)
        if best is None:
            raise NoForwardingAddress(
                f"no same-name or attribute-similar replacement for {old_uadd}"
            )
        return best
