"""The NSP-layer resolution cache (PROTOCOL.md §9).

The paper centralizes all topology knowledge in the naming service
(Sec. 3) and already tolerates stale addresses: a send to a relocated
module faults, the LCM consults the forwarding machinery, and the
conversation resumes (Sec. 3.5).  Because *caches may lie and
forwarding fixes it*, the NSP-Layer can keep an optimistic client-side
cache of its three resolution maps without changing any visible
semantics:

* logical name → UAdd,
* UAdd → :class:`~repro.naming.protocol.NameRecord`,
* faulted UAdd → forwarding UAdd.

Coherence comes from two mechanisms:

* **generation stamps** — every Name-Server reply carries the database
  generation (a monotonic write counter); a reply newer than a cached
  entry's stamp evicts every entry that predates the write,
* **fault eviction** — the LCM's address-fault path evicts the faulted
  address before re-resolving, so a stale entry costs exactly one
  failed send.

Negative results (``NoSuchName`` / ``NoSuchAddress`` /
``NoForwardingAddress``) are cached only under a short *virtual-time*
TTL: absence is not protected by forwarding, so it must expire on its
own.  Temporary addresses (TAdds) are never cached — "they purge within
two NS communications" (Sec. 3.3), so any cached TAdd mapping would be
born stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Type

from repro.errors import (
    NoForwardingAddress,
    NoSuchAddress,
    NoSuchName,
    NtcsError,
)
from repro.naming.protocol import NameRecord
from repro.ntcs.address import Address

# Counter names surfaced by the control-plane-work-saved report table.
NSP_CACHE_HITS = "nsp_cache_hits"
NSP_CACHE_MISSES = "nsp_cache_misses"
NSP_CACHE_INVALIDATIONS = "nsp_cache_invalidations"


@dataclass
class _Entry:
    """One cached resolution: a value or a remembered negative."""

    value: object
    gen: int
    error: Optional[Type[NtcsError]] = None
    detail: str = ""
    expires_at: Optional[float] = None


class ResolutionCache:
    """Generation-stamped cache for the NSP-Layer's resolution maps.

    Args:
        clock: virtual-time source (``scheduler.now``) for negative TTLs.
        counters: the owning Nucleus's :class:`CounterSet`.
        negative_ttl: virtual seconds a cached negative stays valid.
    """

    def __init__(self, clock: Callable[[], float], counters,
                 negative_ttl: float = 2.0):
        self._clock = clock
        self._counters = counters
        self.negative_ttl = negative_ttl
        self._names: Dict[str, _Entry] = {}
        self._records: Dict[Address, _Entry] = {}
        self._forwards: Dict[Address, _Entry] = {}
        self._seen_gen = 0

    # -- generic machinery -----------------------------------------------------

    def _get(self, table: Dict, key) -> Optional[_Entry]:
        entry = table.get(key)
        if entry is not None and entry.expires_at is not None \
                and self._clock() >= entry.expires_at:
            del table[key]
            entry = None
        if entry is None:
            self._counters.incr(NSP_CACHE_MISSES)
            return None
        self._counters.incr(NSP_CACHE_HITS)
        if entry.error is not None:
            raise entry.error(entry.detail)
        return entry

    def _put(self, table: Dict, key, value, gen: int,
             error: Optional[Type[NtcsError]] = None,
             detail: str = "") -> None:
        expires_at = None
        if error is not None:
            expires_at = self._clock() + self.negative_ttl
        table[key] = _Entry(value=value, gen=gen, error=error,
                            detail=detail, expires_at=expires_at)

    def observe_generation(self, gen: Optional[int]) -> None:
        """Note the generation a Name-Server reply carried; a newer one
        evicts every entry stamped before it (the write it reports may
        have changed any mapping)."""
        if not gen or gen <= self._seen_gen:
            return
        self._seen_gen = gen
        for table in (self._names, self._records, self._forwards):
            stale = [key for key, entry in table.items() if entry.gen < gen]
            for key in stale:
                del table[key]
                self._counters.incr(NSP_CACHE_INVALIDATIONS)

    # -- name → UAdd -----------------------------------------------------------

    def lookup_name(self, name: str) -> Optional[Address]:
        """Cached UAdd for a name; None on miss; raises a cached
        :class:`NoSuchName` while the negative entry is fresh."""
        entry = self._get(self._names, name)
        return None if entry is None else entry.value

    def store_name(self, name: str, uadd: Address, gen: int) -> None:
        """Remember a name→UAdd resolution (TAdds are never cached)."""
        if uadd.temporary:
            return
        self._put(self._names, name, uadd, gen)

    def store_missing_name(self, name: str, gen: int) -> None:
        """Remember that a name did not resolve (short virtual-time TTL)."""
        self._put(self._names, name, None, gen, error=NoSuchName,
                  detail=f"no module registered as {name!r} (cached)")

    # -- UAdd → record ---------------------------------------------------------

    def lookup_record(self, uadd: Address) -> Optional[NameRecord]:
        """Cached record for a UAdd; None on miss; raises a cached
        :class:`NoSuchAddress` while the negative entry is fresh."""
        entry = self._get(self._records, uadd)
        return None if entry is None else entry.value

    def store_record(self, uadd: Address, record: NameRecord,
                     gen: int) -> None:
        """Remember a UAdd→record resolution (TAdds are never cached)."""
        if uadd.temporary:
            return
        self._put(self._records, uadd, record, gen)

    def store_missing_record(self, uadd: Address, gen: int) -> None:
        """Remember that a UAdd is unknown (short virtual-time TTL)."""
        self._put(self._records, uadd, None, gen, error=NoSuchAddress,
                  detail=f"naming service has no entry for {uadd} (cached)")

    # -- faulted UAdd → forwarding UAdd ---------------------------------------

    def lookup_forward(self, old_uadd: Address) -> Optional[Address]:
        """Cached forwarding UAdd; None on miss; raises a cached
        :class:`NoForwardingAddress` while the negative entry is fresh."""
        entry = self._get(self._forwards, old_uadd)
        return None if entry is None else entry.value

    def store_forward(self, old_uadd: Address, new_uadd: Address,
                      gen: int) -> None:
        """Remember a forwarding resolution (TAdds are never cached)."""
        if old_uadd.temporary or new_uadd.temporary:
            return
        self._put(self._forwards, old_uadd, new_uadd, gen)

    def store_no_forward(self, old_uadd: Address, gen: int) -> None:
        """Remember a forwarding dead end (short virtual-time TTL)."""
        self._put(self._forwards, old_uadd, None, gen,
                  error=NoForwardingAddress,
                  detail=f"no replacement module for {old_uadd} (cached)")

    # -- fault eviction --------------------------------------------------------

    def evict_address(self, uadd: Address) -> None:
        """Drop everything that could re-route traffic to ``uadd`` —
        the LCM's address-fault recovery (a cache lied; make the next
        resolution ask the naming service)."""
        evicted = 0
        if self._records.pop(uadd, None) is not None:
            evicted += 1
        if self._forwards.pop(uadd, None) is not None:
            evicted += 1
        stale_names = [
            name for name, entry in self._names.items()
            if entry.error is None and entry.value == uadd
        ]
        for name in stale_names:
            del self._names[name]
            evicted += 1
        stale_forwards = [
            old for old, entry in self._forwards.items()
            if entry.error is None and entry.value == uadd
        ]
        for old in stale_forwards:
            del self._forwards[old]
            evicted += 1
        if evicted:
            self._counters.incr(NSP_CACHE_INVALIDATIONS, evicted)

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._names) + len(self._records) + len(self._forwards)
