"""The name/address database behind the Name Server (paper Sec. 3.2).

Maintains, per module: logical name, UAdd, uninterpreted physical
addresses with their network ids, machine type and free-form attributes.
"Thus, module names can be resolved to UAdds, and UAdds can be resolved
to the physical address (location) information necessary for
communication."

Forwarding lookups implement Sec. 3.5's "some intelligence in the
naming service: first determining whether the old UAdd is really
inactive, mapping the old UAdd to its name, and then looking for a
similar name in a newer module."  A UAdd is considered inactive when it
was deregistered *or* a newer registration with the same name exists
(supersession — how a crash-and-replace is discovered without liveness
probes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import (
    ModuleStillAlive,
    NoForwardingAddress,
    NoSuchAddress,
    NoSuchName,
)
from repro.naming.protocol import NameRecord
from repro.ntcs.address import Address, make_uadd
from repro.util.idgen import SequenceGenerator


class NameDatabase:
    """The authoritative name↔address store.

    Args:
        server_id: prepended to generated UAdds, "in a distributed
            implementation, a unique Name Server identifier would be
            appended" (Sec. 3.2) — used by :mod:`repro.naming.replicated`.
        clock: source of registration timestamps.
    """

    def __init__(self, server_id: int = 0, clock=lambda: 0.0):
        self._server_id = server_id
        self._clock = clock
        self._counter = SequenceGenerator()
        self._by_uadd: Dict[Address, NameRecord] = {}
        self._by_name: Dict[str, List[NameRecord]] = {}
        self.registrations = 0
        self.lookups = 0
        # Monotonic database generation (PROTOCOL.md §9): bumped by
        # every mutation, stamped onto Name-Server replies so clients
        # can invalidate resolution caches that predate a write.
        self.generation = 1
        # Origin write log (PROTOCOL.md §14): (generation stamp, record
        # snapshot) per write this database *originated* — appended by
        # the serving Name Server, never by replication — so a peer can
        # pull exactly the writes past its watermark during
        # anti-entropy.  Lives on the database because the database is
        # what survives a crash/restart.
        self.oplog: List[Tuple[int, NameRecord]] = []

    # -- registration ------------------------------------------------------------

    def register(
        self,
        name: str,
        attrs: Dict[str, str],
        addresses: List[Tuple[str, str]],
        mtype_name: str,
    ) -> NameRecord:
        """Create a new entry; "the naming service generates a UAdd for
        the module" (Sec. 3.2)."""
        uadd = make_uadd(self._counter.next(), self._server_id)
        record = NameRecord(
            name=name,
            uadd=uadd,
            mtype_name=mtype_name,
            attrs=dict(attrs),
            addresses=list(addresses),
            alive=True,
            registered_at=self._clock(),
        )
        self.adopt(record)
        return record

    def adopt(self, record: NameRecord) -> None:
        """Install a record created elsewhere (replication path).
        Idempotent: re-adopting a known UAdd updates the stored record
        in place (last write wins)."""
        self.generation += 1
        existing = self._by_uadd.get(record.uadd)
        if existing is not None:
            existing.alive = record.alive
            existing.attrs = dict(record.attrs)
            existing.addresses = list(record.addresses)
            existing.mtype_name = record.mtype_name
            return
        self._by_uadd[record.uadd] = record
        self._by_name.setdefault(record.name, []).append(record)
        self.registrations += 1

    def log_write(self, record: NameRecord) -> None:
        """Append an origin write to the anti-entropy log, snapshotted
        (records mutate in place on deregister) and stamped with the
        current generation."""
        self.oplog.append((self.generation, NameRecord.decode(record.encode())))

    def merge(self, record: NameRecord) -> bool:
        """Anti-entropy merge (PROTOCOL.md §14): adopt a record pulled
        from a replica, tombstone-wins.  UAdd records are write-once
        plus tombstone, so the merge is idempotent and order-
        insensitive; True when the database changed."""
        existing = self._by_uadd.get(record.uadd)
        if existing is None:
            self.adopt(record)
            return True
        if existing.alive and not record.alive:
            self.adopt(record)
            return True
        return False

    def deregister(self, uadd: Address) -> bool:
        """Tombstone an entry (kept for forwarding lookups)."""
        record = self._by_uadd.get(uadd)
        if record is None or not record.alive:
            return False
        record.alive = False
        self.generation += 1
        return True

    # -- resolution -----------------------------------------------------------

    def _newest_alive(self, name: str) -> Optional[NameRecord]:
        for record in reversed(self._by_name.get(name, [])):
            if record.alive:
                return record
        return None

    def resolve_name(self, name: str) -> NameRecord:
        """Logical name → newest alive entry."""
        self.lookups += 1
        record = self._newest_alive(name)
        if record is None:
            raise NoSuchName(f"no module registered as {name!r}")
        return record

    def get(self, uadd: Address) -> Optional[NameRecord]:
        """The record for a UAdd, or None — no lookup accounting (used
        by ownership checks that precede the real resolution)."""
        return self._by_uadd.get(uadd)

    def resolve_uadd(self, uadd: Address) -> NameRecord:
        """UAdd → full record (physical location information)."""
        self.lookups += 1
        record = self._by_uadd.get(uadd)
        if record is None:
            raise NoSuchAddress(f"unknown UAdd {uadd}")
        return record

    # -- forwarding (Sec. 3.5) -------------------------------------------------

    def is_active(self, record: NameRecord) -> bool:
        """Alive and not superseded by a newer same-name registration."""
        if not record.alive:
            return False
        newest = self._newest_alive(record.name)
        return newest is record

    def lookup_forwarding(self, old_uadd: Address) -> NameRecord:
        """Forwarding UAdd for a faulted address.

        Raises:
            NoSuchAddress: the old UAdd was never registered.
            ModuleStillAlive: the old module looks active — the fault
                was a broken link, not a relocation.
            NoForwardingAddress: the module is gone and nothing similar
                replaced it.
        """
        record = self.resolve_uadd(old_uadd)
        if self.is_active(record):
            raise ModuleStillAlive(f"{old_uadd} ({record.name!r}) is still active")
        replacement = self._newest_alive(record.name)
        if replacement is None:
            raise NoForwardingAddress(
                f"no replacement for {old_uadd} ({record.name!r})"
            )
        return replacement

    # -- directory queries -------------------------------------------------------

    def list_gateways(self) -> List[NameRecord]:
        """Active gateway records: alive *and* not superseded by a newer
        same-name registration — so a restarted gateway's fresh record
        replaces its predecessor in everyone's route planning."""
        return [
            record for record in self._by_uadd.values()
            if record.is_gateway and self.is_active(record)
        ]

    def query_attrs(self, required: Dict[str, str]) -> List[NameRecord]:
        """Exact-match attribute query (the richer matcher lives in
        :mod:`repro.naming.attributes`)."""
        return [
            record for record in self._by_uadd.values()
            if record.alive and all(
                record.attrs.get(k) == v for k, v in required.items()
            )
        ]

    def all_records(self) -> List[NameRecord]:
        """Every record, tombstones included."""
        return list(self._by_uadd.values())

    def __len__(self) -> int:
        return sum(1 for r in self._by_uadd.values() if r.alive)
