"""The NTCS naming service (paper Sec. 3).

"A single dynamic naming service supporting all name and address
resolution within the NTCS, is built entirely on top of the Nucleus.
As such it is used by the internal Nucleus layers below, as well as by
the application modules above."

* :mod:`protocol` — the NS wire protocol (packed-mode bodies) and the
  :class:`NameRecord` exchanged over it,
* :mod:`database` — the name/address database: registration, two-level
  resolution, forwarding, supersession,
* :mod:`server` — the Name Server module, "for all practical purposes
  ... nothing more than an application built on the Nucleus",
* :mod:`nsp` — the NSP-Layer, "the single naming service access point
  for all layers within the ComMod",
* :mod:`attributes` — the attribute-value naming scheme the paper's
  Sec. 7 says was being adopted,
* :mod:`replicated` — the replicated name service Sec. 7 plans for
  failure resiliency,
* :mod:`shards` — the name database "partially distributed across two
  or more such modules" (Sec. 7): consistent-hash sharding over
  replica groups, with generation-stamped anti-entropy.
"""

from repro.naming.protocol import NameRecord, register_naming_types
from repro.naming.database import NameDatabase
from repro.naming.server import NameServer
from repro.naming.nsp import NspLayer
from repro.naming.shards import HashRing, ShardedNameServer, ShardedNspLayer

__all__ = [
    "NameRecord",
    "register_naming_types",
    "NameDatabase",
    "NameServer",
    "NspLayer",
    "HashRing",
    "ShardedNameServer",
    "ShardedNspLayer",
]
