"""The replicated naming service (paper Sec. 7).

"[the naming service implementation] will be replicated for failure
resiliency.  ... The database could ... be partially distributed across
two or more such modules ... without affecting the rest of the NTCS.
This flexibility is a direct result of having built this service on top
of the Nucleus, and of isolating it with the NSP-Layer."

Design, per the paper's hints:

* each server's database generates UAdds with "a unique Name Server
  identifier ... appended" (Sec. 3.2), so servers never collide,
* every write (register/deregister) is propagated to the peer servers
  over the NTCS's own connectionless protocol (last write wins; the
  paper predates stronger replication and so do we),
* the :class:`ReplicatedNspLayer` drop-in fails over between servers,
  priming the module's address tables with every server's well-known
  blob — the Sec. 3.4 bootstrap, extended to a set.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import (
    DestinationUnavailable,
    NameServerUnreachable,
    NtcsError,
    ReplyTimeout,
)
from repro.naming import protocol as p
from repro.naming.protocol import NameRecord
from repro.naming.server import NameServer
from repro.naming.nsp import NspLayer
from repro.ntcs.address import Address
from repro.ntcs.lcm import IncomingMessage
from repro.ntcs.message import FLAG_INTERNAL


class ReplicatedNameServer(NameServer):
    """One member of a replicated naming service."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.peer_uadds: List[Address] = []
        self._handlers["ns_repl_update"] = self._handle_repl_update
        self.updates_sent = 0
        self.updates_applied = 0

    def set_peers(self, peers: Sequence[Address]) -> None:
        """Tell this server which peer UAdds to replicate to."""
        self.peer_uadds = [u for u in peers if u != self.uadd]

    def _replicate(self, op: str, record: NameRecord) -> None:
        for peer in self.peer_uadds:
            if self.nucleus.lcm.datagram(peer, "ns_repl_update", {
                "op": op,
                "record": p.encode_records([record]),
            }, flags=FLAG_INTERNAL):
                self.updates_sent += 1

    def _handle_repl_update(self, request: IncomingMessage):
        records = p.decode_records(request.values["record"])
        op = request.values["op"]
        for record in records:
            if op == "deregister":
                record.alive = False
            self.db.adopt(record)
            self.updates_applied += 1
        return "ns_ack", {"ok": 1, "detail": ""}


class ReplicatedNspLayer(NspLayer):
    """NSP-Layer with server failover — a drop-in for
    :class:`~repro.naming.nsp.NspLayer`, proving the paper's claim that
    the implementation can change "with no direct impact on the NTCS"."""

    def __init__(self, nucleus,
                 servers: Sequence[Tuple[Address, str, str]]):
        """``servers``: [(uadd, listen_blob, mtype_name)] in preference
        order; the first is the conventional primary."""
        if not servers:
            raise NtcsError("a replicated NSP needs at least one server")
        super().__init__(nucleus, ns_uadd=servers[0][0])
        # The resolution cache and single-flight coalescing are
        # disabled here: generation stamps from different replicas are
        # not comparable (each database counts its own writes), and
        # coalescing through call_async would bypass the per-server
        # failover loop below.
        self.cache = None
        self._coalesce = False
        self.servers = [uadd for uadd, _, _ in servers]
        # The LCM's Sec. 6.3 patch must treat every replica as "the
        # naming service" or the runaway recursion returns via replicas.
        nucleus.ns_addresses.update(self.servers)
        # Load every server's well-known address into this module's
        # tables (Sec. 3.4, generalized).
        for uadd, blob, mtype_name in servers:
            if blob:
                nucleus.addr_cache.store(uadd, blob, mtype_name)
        self._current = 0
        self.failovers = 0

    def _call(self, type_name: str, values: dict, reason: str,
              timeout: Optional[float] = None) -> IncomingMessage:
        nucleus = self.nucleus
        with nucleus.enter(self.LAYER, type_name, reason=reason):
            nucleus.counters.incr("nsp_calls")
            last_error: Optional[Exception] = None
            for i in range(len(self.servers)):
                index = (self._current + i) % len(self.servers)
                target = self.servers[index]
                try:
                    reply = nucleus.lcm.call(
                        target, type_name, values,
                        timeout=timeout, flags=FLAG_INTERNAL,
                    )
                except (NameServerUnreachable, DestinationUnavailable,
                        ReplyTimeout) as exc:
                    last_error = exc
                    if i + 1 < len(self.servers):
                        self.failovers += 1
                        nucleus.counters.incr("ns_failovers")
                    continue
                self._current = index
                return reply
            raise NameServerUnreachable(
                f"all {len(self.servers)} naming servers failed: {last_error}"
            )


def deploy_replicated_naming(testbed, machine_names: Sequence[str]):
    """Start one :class:`ReplicatedNameServer` per machine, wire the
    replication mesh, and make every future ``testbed.module(...)`` use
    a failover NSP.  Returns the server list (element 0 is primary and
    becomes ``testbed.name_server_instance``)."""
    from dataclasses import replace as _replace
    from repro.machine.process import SimProcess
    from repro.naming.database import NameDatabase

    servers: List[ReplicatedNameServer] = []
    for server_id, machine_name in enumerate(machine_names):
        machine = testbed.machines[machine_name]
        network = machine.networks[0]
        protocol = testbed.networks[network].protocol
        binding = ("411" if protocol == "tcp" else "/mbx/name.server")
        process = SimProcess(machine, f"name.server.{server_id}")
        db = NameDatabase(server_id=server_id,
                          clock=lambda: testbed.scheduler.now)
        server = ReplicatedNameServer(
            process, testbed.registry, testbed.wellknown,
            network=network, binding=binding,
            config=_replace(testbed.config), db=db,
            name=f"name.server.{server_id}",
        )
        servers.append(server)
        if server_id == 0:
            testbed.wellknown.add_name_server_blob(server.listen_blob)
            testbed.name_server_instance = server
    all_uadds = [s.uadd for s in servers]
    directory = [(s.uadd, s.listen_blob, s.process.machine.mtype.name)
                 for s in servers]
    for server in servers:
        server.set_peers(all_uadds)
        # Each server knows its peers' well-known addresses and records
        # — the Sec. 3.4 bootstrap table, extended to the replica set.
        for uadd, blob, mtype_name in directory:
            if uadd != server.uadd:
                server.nucleus.addr_cache.store(uadd, blob, mtype_name)
        for other in servers:
            if other is not server:
                for record in other.db.all_records():
                    server.db.adopt(record)
    testbed.nsp_factory = lambda nucleus: ReplicatedNspLayer(nucleus, directory)
    return servers
