"""Dispatch annotations for the ntcsverify extractor.

Most handler sites are recognized structurally (``unpack_internal``
calls, ``type_name`` comparisons, dispatch dicts, kind tables), but a
handler reached through control flow the AST walker cannot follow —
e.g. a teardown path that consumes a message without unpacking it —
can declare itself explicitly::

    from repro.util.dispatch import handles

    @handles("ivc_close")
    def _teardown(self, ivc, reason): ...

The decorator is a pure annotation: it tags the function (so runtime
introspection can see the claim too) and changes nothing about how it
is called.  The analyzer reads the decorator's string arguments off
the AST; it never imports the decorated module.
"""

from __future__ import annotations

from typing import Callable, TypeVar

F = TypeVar("F", bound=Callable)

HANDLES_ATTR = "_ntcs_handles"


def handles(*type_names: str) -> Callable[[F], F]:
    """Declare that the decorated callable handles the named message
    type(s).  Stacks and repeats: all names accumulate."""

    def mark(func: F) -> F:
        existing = getattr(func, HANDLES_ATTR, ())
        setattr(func, HANDLES_ATTR, tuple(existing) + type_names)
        return func

    return mark
