"""Small shared utilities: deterministic id generation, layer tracing,
and counters used by the experiments."""

from repro.util.idgen import SequenceGenerator
from repro.util.trace import LayerTracer, TraceRecord, NullTracer
from repro.util.counters import CounterSet

__all__ = [
    "SequenceGenerator",
    "LayerTracer",
    "TraceRecord",
    "NullTracer",
    "CounterSet",
]
