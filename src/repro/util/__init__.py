"""Small shared utilities: deterministic id generation, layer tracing,
and counters used by the experiments."""

from repro.util.idgen import SequenceGenerator
from repro.util.trace import LayerTracer, TraceRecord, NullTracer
from repro.util.counters import CounterSet
from repro.util.seeds import derive_seed, derive_rng

__all__ = [
    "SequenceGenerator",
    "LayerTracer",
    "TraceRecord",
    "NullTracer",
    "CounterSet",
    "derive_seed",
    "derive_rng",
]
