"""Named event counters.

Several experiments assert *absence* claims from the paper — e.g.
"no inter-gateway communication ever takes place" (Sec. 4.2) and
"no needless conversions" (Sec. 5).  Absence is only checkable when the
relevant events are counted at the point they would occur, so the NTCS
layers increment :class:`CounterSet` entries and the benches read them.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Tuple

# Fast-path event names (PROTOCOL.md, "Fast path and wire invariance").
# Incremented by the ND-Layer / Gateway so E5-internet can report the
# per-hop work the splice path saves: frames forwarded verbatim without
# re-serialization, and header-checksum verifications a pass-through
# hop skipped (the terminating endpoint verifies once for the chain).
ND_FRAMES_FORWARDED = "nd_frames_forwarded"
GATEWAY_CHECKSUM_VERIFIES_DEFERRED = "gateway_checksum_verifies_deferred"

# Flow-control event names (PROTOCOL.md §12).  The bounded-memory claim
# is an absence claim too — "no per-LVC queue ever exceeds its
# watermark" — so the layers count every stall, probe, grant, drop, and
# the deepest any LVC's receive-queue attribution ever got.
LVC_RX_QUEUE_HIGH_WATER = "lvc_rx_queue_high_water"
IP_CREDIT_STALLS = "ip_credit_stalls"
IP_CREDIT_PROBES = "ip_credit_probes"
IP_CREDIT_GRANTS = "ip_credit_grants"
IP_CREDIT_RESYNCS = "ip_credit_resyncs"
ALI_SEND_BLOCKED = "ali_send_blocked"
DROP_CONNECTIONLESS = "drop_connectionless"
GATEWAY_CREDIT_DROPS = "gateway_credit_overruns_dropped"
GATEWAY_CREDIT_CLAMPS = "gateway_credit_clamps"

# Frame-train event names (PROTOCOL.md §13).  The dispatch-efficiency
# claim is measured, not assumed: each layer counts the batches it
# processed, and the bench derives scheduler events per delivered
# message from the run.  ``scheduler_events_per_message`` is a
# milli-events-per-message high-water-style gauge recorded by benches
# (integer counters only, so the ratio is stored x1000).
SCHEDULER_EVENTS_PER_MESSAGE = "scheduler_events_per_message"
ND_TRAIN_FRAMES = "nd_train_frames"
GW_TRAIN_SPLICES = "gw_train_splices"
LCM_TRAIN_DRAINS = "lcm_train_drains"
GATEWAY_TRAIN_ROTATIONS = "gateway_train_rotations"


class CounterSet:
    """A mutable set of named integer counters.

    >>> c = CounterSet()
    >>> c.incr("sends"); c.incr("sends", 2)
    >>> c["sends"]
    3
    >>> c["never_touched"]
    0
    """

    def __init__(self):
        self._counts: Counter = Counter()

    def incr(self, name: str, amount: int = 1) -> None:
        """Add to one named counter (default +1)."""
        self._counts[name] += amount

    def record_max(self, name: str, value: int) -> None:
        """Raise one named counter to ``value`` if it is below it — a
        high-water mark rather than an accumulator."""
        if value > self._counts[name]:
            self._counts[name] = value

    def __getitem__(self, name: str) -> int:
        return self._counts[name]

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def reset(self, name: str = None) -> None:
        """Reset one counter, or all of them when ``name`` is None."""
        if name is None:
            self._counts.clear()
        else:
            self._counts.pop(name, None)

    def snapshot(self) -> Dict[str, int]:
        """An immutable copy of the current counts."""
        return dict(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self)
        return f"CounterSet({inner})"
