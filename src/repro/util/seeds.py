"""Deterministic seed derivation for per-component RNG streams.

Every random stream in the simulation must be (a) explicitly seeded and
(b) *stable across runs and interpreter invocations*.  Deriving a
per-component seed with the builtin ``hash()`` would silently violate
(b): string hashing is salted by ``PYTHONHASHSEED``.  This module
derives seeds with CRC-32 instead — cheap, stable, and order-sensitive
in its labels — so a base seed plus a component path ("gw.gwm1",
"net1") always names the same stream.

The chaos harness and the LCM circuit-repair path (PROTOCOL.md §10)
draw their jitter from streams created here; ntcslint's DET005 rule
forbids those modules from constructing ``random.Random`` directly so
that every stream is derived, never ad hoc.
"""

from __future__ import annotations

import random
import zlib


def derive_seed(base: int, *labels: str) -> int:
    """A deterministic 32-bit seed from a base seed and label path."""
    acc = zlib.crc32(str(int(base)).encode("ascii"))
    for label in labels:
        acc = zlib.crc32(str(label).encode("utf-8"), acc)
    return acc & 0xFFFFFFFF


def derive_rng(base: int, *labels: str) -> random.Random:
    """A seeded :class:`random.Random` on the derived stream — the
    sanctioned factory for chaos/repair randomness (DET005)."""
    return random.Random(derive_seed(base, *labels))
