"""Deterministic sequence generation.

The paper generates UAdds with "a simple monotonically increasing
counter" (Sec. 3.2); every id-like value in this reproduction comes from
a :class:`SequenceGenerator` so runs are deterministic and replayable.
"""

from __future__ import annotations

import itertools


class SequenceGenerator:
    """A monotonically increasing integer sequence starting at ``start``.

    >>> gen = SequenceGenerator()
    >>> gen.next(), gen.next(), gen.next()
    (1, 2, 3)
    """

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)
        self._last = start - 1

    def next(self) -> int:
        """Return the next value in the sequence."""
        self._last = next(self._counter)
        return self._last

    @property
    def last(self) -> int:
        """The most recently issued value (``start - 1`` if none yet)."""
        return self._last
