"""Layer tracing — the debugging aid Sec. 6.2 of the paper asks for.

The paper found that in a recursive, layered system "simple tracebacks
are largely inadequate.  One must also know *why* a layer is being
called, and *who* is calling it", with adequate *selectivity*.

A :class:`LayerTracer` records, for each layer entry/exit, the layer
name, the operation, the caller (the layer or module that invoked it),
the reason, and the current recursion depth.  Experiments E1 and E8 are
built directly on these records; selectivity is provided by per-layer
and per-operation filters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One layer entry or exit event.

    Attributes:
        time: virtual time of the event.
        module: name of the module whose ComMod/Nucleus is executing.
        layer: layer name ("ALI", "NSP", "LCM", "IP", "ND", ...).
        operation: what the layer was asked to do ("send", "open", ...).
        phase: "enter" or "exit".
        caller: who invoked the layer (layer name or "application").
        reason: why the layer is being called.
        depth: Nucleus recursion depth at the time of the event.
    """

    time: float
    module: str
    layer: str
    operation: str
    phase: str
    caller: str
    reason: str
    depth: int


class LayerTracer:
    """Collects :class:`TraceRecord` objects with optional selectivity.

    Args:
        clock: zero-argument callable returning the current virtual time.
        layers: if given, only these layer names are recorded.
        operations: if given, only these operations are recorded.
    """

    def __init__(
        self,
        clock: Callable[[], float] = lambda: 0.0,
        layers: Optional[Iterable[str]] = None,
        operations: Optional[Iterable[str]] = None,
    ):
        self._clock = clock
        self._layers = set(layers) if layers is not None else None
        self._operations = set(operations) if operations is not None else None
        self.records: List[TraceRecord] = []

    @property
    def enabled(self) -> bool:
        return True

    def _selected(self, layer: str, operation: str) -> bool:
        if self._layers is not None and layer not in self._layers:
            return False
        if self._operations is not None and operation not in self._operations:
            return False
        return True

    def record(
        self,
        module: str,
        layer: str,
        operation: str,
        phase: str,
        caller: str = "",
        reason: str = "",
        depth: int = 0,
    ) -> None:
        """Record one event, subject to the configured filters."""
        if not self._selected(layer, operation):
            return
        self.records.append(
            TraceRecord(
                time=self._clock(),
                module=module,
                layer=layer,
                operation=operation,
                phase=phase,
                caller=caller,
                reason=reason,
                depth=depth,
            )
        )

    def clear(self) -> None:
        """Discard all recorded events."""
        self.records.clear()

    def layer_sequence(self, phase: str = "enter") -> List[str]:
        """The ordered list of layer names for events of ``phase``."""
        return [r.layer for r in self.records if r.phase == phase]

    def max_depth(self) -> int:
        """The deepest Nucleus recursion observed (0 if no records)."""
        return max((r.depth for r in self.records), default=0)

    def format(self) -> str:
        """Human-readable rendering, indented by recursion depth."""
        lines = []
        for r in self.records:
            indent = "  " * r.depth
            arrow = "->" if r.phase == "enter" else "<-"
            lines.append(
                f"{r.time:10.6f} {indent}{arrow} {r.module}:{r.layer}.{r.operation}"
                f" (caller={r.caller or '?'}, reason={r.reason or '-'})"
            )
        return "\n".join(lines)


class NullTracer:
    """A tracer that records nothing; the default when tracing is off."""

    records: List[TraceRecord] = []

    @property
    def enabled(self) -> bool:
        return False

    def record(self, *args, **kwargs) -> None:
        """No-op."""
        pass

    def clear(self) -> None:
        """Discard all recorded events."""
        pass

    def layer_sequence(self, phase: str = "enter") -> List[str]:
        """Always empty."""
        return []

    def max_depth(self) -> int:
        """Always zero."""
        return 0

    def format(self) -> str:
        """Always the empty string."""
        return ""
