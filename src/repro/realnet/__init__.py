"""Real-socket substrate: the portable upper layers over genuine OS TCP.

The paper's core architectural claim is that "everything above the
ND-Layer is portable, in terms of the communication interface"
(Sec. 2.2).  The strongest demonstration this reproduction can offer is
to run the *identical* Nucleus, naming service, ComMod and application
code over real operating-system TCP sockets on localhost instead of the
simulated networks — which this package does:

* :mod:`kernel` — a realtime event kernel with the same blocking-pump
  interface as the simulation scheduler,
* :mod:`driver` — an ND-Layer driver speaking real non-blocking TCP,
* :mod:`deploy` — a deployment builder mirroring
  :class:`~repro.testbed.Testbed`.

Used by experiment E10 and the ``realsockets.py`` example.
"""

from repro.realnet.kernel import RealtimeKernel
from repro.realnet.driver import LoopbackRealIpcs, LoopbackTcpDriver
from repro.realnet.deploy import RealDeployment

__all__ = [
    "RealtimeKernel",
    "LoopbackRealIpcs",
    "LoopbackTcpDriver",
    "RealDeployment",
]
