"""A realtime event kernel with the simulation scheduler's interface.

The NTCS layers only use a small scheduler surface: ``now``,
``schedule``, ``call_soon``, ``pump_until`` and ``wait``.  This kernel
implements it against wall-clock time and a :mod:`selectors` loop, so
the same passive, reentrantly-blocking layers run unchanged over real
sockets.
"""

from __future__ import annotations

import heapq
import selectors
import time
from typing import Callable, List, Optional

from repro.errors import SimulationError


class _Timer:
    __slots__ = ("when", "seq", "callback", "note", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None], note: str):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.note = note
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "_Timer") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)


class RealtimeKernel:
    """Wall-clock twin of :class:`repro.netsim.Scheduler`.

    File-descriptor callbacks are registered with
    :meth:`register_reader` / :meth:`register_writer`; each callback is
    invoked from inside whatever pump is currently blocking, so the
    passive-Nucleus recursion works exactly as in simulation.
    """

    #: Longest single poll; keeps a pump responsive to its predicate.
    MAX_POLL = 0.05

    def __init__(self):
        self.selector = selectors.DefaultSelector()
        self._timers: List[_Timer] = []
        self._seq = 0
        self._t0 = time.monotonic()
        self._pump_depth = 0
        self.max_pump_depth_seen = 0
        self.events_processed = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since kernel start (wall clock)."""
        return time.monotonic() - self._t0

    @property
    def pump_depth(self) -> int:
        return self._pump_depth

    # -- timers -------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None], note: str = ""):
        """Run a callback after a wall-clock delay; returns a cancellable timer."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        timer = _Timer(self.now + delay, self._seq, callback, note)
        heapq.heappush(self._timers, timer)
        return timer

    def call_soon(self, callback: Callable[[], None], note: str = ""):
        """Run a callback on the next pump iteration."""
        return self.schedule(0.0, callback, note)

    def _run_due_timers(self) -> int:
        ran = 0
        while self._timers and self._timers[0].when <= self.now:
            timer = heapq.heappop(self._timers)
            if timer.cancelled:
                continue
            self.events_processed += 1
            timer.callback()
            ran += 1
        return ran

    # -- io registration ----------------------------------------------------

    def register_reader(self, sock, callback: Callable[[], None]) -> None:
        """Invoke a callback whenever the socket is readable."""
        self._register(sock, selectors.EVENT_READ, callback)

    def register_writer(self, sock, callback: Callable[[], None]) -> None:
        """Invoke a callback whenever the socket is writable."""
        self._register(sock, selectors.EVENT_WRITE, callback)

    def _register(self, sock, event: int, callback) -> None:
        try:
            key = self.selector.get_key(sock)
        except KeyError:
            self.selector.register(sock, event, {event: callback})
            return
        data = dict(key.data)
        data[event] = callback
        self.selector.modify(sock, key.events | event, data)

    def unregister_writer(self, sock) -> None:
        """Stop watching a socket for writability."""
        try:
            key = self.selector.get_key(sock)
        except KeyError:
            return
        events = key.events & ~selectors.EVENT_WRITE
        data = {k: v for k, v in key.data.items() if k != selectors.EVENT_WRITE}
        if events:
            self.selector.modify(sock, events, data)
        else:
            self.selector.unregister(sock)

    def unregister(self, sock) -> None:
        """Stop watching a socket entirely."""
        try:
            self.selector.unregister(sock)
        except KeyError:
            pass

    # -- pumping -------------------------------------------------------------

    def _poll(self, max_wait: float) -> int:
        ready = self.selector.select(max(0.0, max_wait))
        dispatched = 0
        for key, mask in ready:
            for event in (selectors.EVENT_READ, selectors.EVENT_WRITE):
                if mask & event:
                    callback = key.data.get(event)
                    if callback is not None:
                        self.events_processed += 1
                        callback()
                        dispatched += 1
        return dispatched

    def pump_until(self, predicate: Callable[[], bool],
                   timeout: Optional[float] = None, what: str = "") -> bool:
        """Block until the predicate holds, dispatching io and timers."""
        deadline = None if timeout is None else self.now + timeout
        self._pump_depth += 1
        self.max_pump_depth_seen = max(self.max_pump_depth_seen, self._pump_depth)
        try:
            while True:
                if predicate():
                    return True
                self._run_due_timers()
                if predicate():
                    return True
                if deadline is not None and self.now >= deadline:
                    return False
                wait = self.MAX_POLL
                if self._timers:
                    wait = min(wait, max(0.0, self._timers[0].when - self.now))
                if deadline is not None:
                    wait = min(wait, max(0.0, deadline - self.now))
                self._poll(wait)
        finally:
            self._pump_depth -= 1

    def wait(self, duration: float) -> None:
        """Block for a wall-clock duration, dispatching io and timers."""
        self.pump_until(lambda: False, timeout=duration, what="wait")

    def run_for(self, duration: float) -> None:
        """Alias of wait(), matching the simulation scheduler's API."""
        self.wait(duration)

    def pending(self) -> int:
        """Number of armed (uncancelled) timers."""
        return sum(1 for t in self._timers if not t.cancelled)

    def close(self) -> None:
        """Close the selector (call once, on shutdown)."""
        self.selector.close()
