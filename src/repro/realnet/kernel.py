"""A realtime event kernel with the simulation scheduler's interface.

The NTCS layers only use a small scheduler surface: ``now``,
``schedule``, ``call_soon``, ``pump_until`` and ``wait``.  This kernel
implements it against wall-clock time and a :mod:`selectors` loop, so
the same passive, reentrantly-blocking layers run unchanged over real
sockets.

Timers are stored on the same hierarchical
:class:`~repro.netsim.timerwheel.TimerWheel` the virtual-time
scheduler uses — one clock abstraction, two drivers (PROTOCOL.md §11).
The wheel gives this kernel the identical total order ``(when, seq)``,
O(1) ``pending()``, and eager cancellation accounting; only the notion
of "now" (``time.monotonic`` here, the virtual clock in simulation)
differs between the two drivers.
"""

from __future__ import annotations

import selectors
import time
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.netsim.timerwheel import Event, RunQueue, TimerWheel


class RealtimeKernel:
    """Wall-clock twin of :class:`repro.netsim.Scheduler`.

    File-descriptor callbacks are registered with
    :meth:`register_reader` / :meth:`register_writer`; each callback is
    invoked from inside whatever pump is currently blocking, so the
    passive-Nucleus recursion works exactly as in simulation.
    """

    #: Longest single poll; keeps a pump responsive to its predicate.
    MAX_POLL = 0.05

    #: Wheel bucket width in wall seconds; timers beyond the window
    #: (quantum * slots) sit in the overflow heap until due.
    QUANTUM = 0.01
    WHEEL_SLOTS = 512

    def __init__(self):
        self.selector = selectors.DefaultSelector()
        self._wheel = TimerWheel(quantum=self.QUANTUM, slots=self.WHEEL_SLOTS)
        self._seq = 0
        self._t0 = time.monotonic()
        self._pump_depth = 0
        self.max_pump_depth_seen = 0
        self.events_processed = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since kernel start (wall clock)."""
        return time.monotonic() - self._t0

    @property
    def pump_depth(self) -> int:
        return self._pump_depth

    @property
    def wheel(self) -> TimerWheel:
        """The underlying timer wheel (shared implementation with the
        virtual-time scheduler)."""
        return self._wheel

    # -- timers -------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None], note: str = ""):
        """Run a callback after a wall-clock delay; returns a cancellable timer."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        timer = Event(self.now + delay, self._seq, callback, note)
        self._wheel.push(timer)
        return timer

    def call_soon(self, callback: Callable[[], None], note: str = ""):
        """Run a callback on the next pump iteration."""
        return self.schedule(0.0, callback, note)

    def run_queue(self, name: str) -> RunQueue:
        """A named local FIFO, as on the simulation scheduler.  Posted
        work runs on the next pump iteration in global order."""
        return RunQueue(self, name)

    def _post_queued(self, queue: RunQueue, callback: Callable[[], None],
                     note: str) -> None:
        self._seq += 1
        self._wheel.queue_push(queue, Event(self.now, self._seq, callback, note))

    def _run_due_timers(self) -> int:
        ran = 0
        now = self.now
        while True:
            timer = self._wheel.peek()
            if timer is None or timer.time > now:
                break
            self._wheel.pop()
            self.events_processed += 1
            timer.callback()
            ran += 1
        return ran

    # -- io registration ----------------------------------------------------

    def register_reader(self, sock, callback: Callable[[], None]) -> None:
        """Invoke a callback whenever the socket is readable."""
        self._register(sock, selectors.EVENT_READ, callback)

    def register_writer(self, sock, callback: Callable[[], None]) -> None:
        """Invoke a callback whenever the socket is writable."""
        self._register(sock, selectors.EVENT_WRITE, callback)

    def _register(self, sock, event: int, callback) -> None:
        try:
            key = self.selector.get_key(sock)
        except KeyError:
            self.selector.register(sock, event, {event: callback})
            return
        data = dict(key.data)
        data[event] = callback
        self.selector.modify(sock, key.events | event, data)

    def unregister_writer(self, sock) -> None:
        """Stop watching a socket for writability."""
        try:
            key = self.selector.get_key(sock)
        except KeyError:
            return
        events = key.events & ~selectors.EVENT_WRITE
        data = {k: v for k, v in key.data.items() if k != selectors.EVENT_WRITE}
        if events:
            self.selector.modify(sock, events, data)
        else:
            self.selector.unregister(sock)

    def unregister(self, sock) -> None:
        """Stop watching a socket entirely."""
        try:
            self.selector.unregister(sock)
        except KeyError:
            pass

    # -- pumping -------------------------------------------------------------

    def _poll(self, max_wait: float) -> int:
        ready = self.selector.select(max(0.0, max_wait))
        dispatched = 0
        for key, mask in ready:
            for event in (selectors.EVENT_READ, selectors.EVENT_WRITE):
                if mask & event:
                    callback = key.data.get(event)
                    if callback is not None:
                        self.events_processed += 1
                        callback()
                        dispatched += 1
        return dispatched

    def pump_until(self, predicate: Callable[[], bool],
                   timeout: Optional[float] = None, what: str = "") -> bool:
        """Block until the predicate holds, dispatching io and timers."""
        deadline = None if timeout is None else self.now + timeout
        self._pump_depth += 1
        self.max_pump_depth_seen = max(self.max_pump_depth_seen, self._pump_depth)
        try:
            while True:
                if predicate():
                    return True
                self._run_due_timers()
                if predicate():
                    return True
                if deadline is not None and self.now >= deadline:
                    return False
                wait = self.MAX_POLL
                head = self._wheel.peek()
                if head is not None:
                    wait = min(wait, max(0.0, head.time - self.now))
                if deadline is not None:
                    wait = min(wait, max(0.0, deadline - self.now))
                self._poll(wait)
        finally:
            self._pump_depth -= 1

    def wait(self, duration: float) -> None:
        """Block for a wall-clock duration, dispatching io and timers."""
        self.pump_until(lambda: False, timeout=duration, what="wait")

    def run_for(self, duration: float) -> None:
        """Alias of wait(), matching the simulation scheduler's API."""
        self.wait(duration)

    def pending(self) -> int:
        """Number of armed (uncancelled) timers.  O(1): the shared
        wheel accounts for cancellations eagerly."""
        return self._wheel.live

    def close(self) -> None:
        """Close the selector (call once, on shutdown)."""
        self.selector.close()
