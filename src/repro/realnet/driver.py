"""An ND-Layer driver over real OS TCP sockets (localhost).

Everything above this file is the unmodified portable NTCS.  The driver
reuses the simulation TCP driver's :class:`FramedChannel` for message
framing — real TCP is a byte stream too — and supplies a socket-backed
channel underneath it.
"""

from __future__ import annotations

import errno
import socket
from typing import Callable, Optional

from repro.errors import ChannelClosed, ConnectionRefused, NetworkUnreachable
from repro.machine.machine import Machine
from repro.machine.process import SimProcess
from repro.ntcs.drivers import register_driver
from repro.ntcs.drivers.sim_tcp import FramedChannel
from repro.ntcs.stdif import MessageChannel, StdIfDriver
from repro.realnet.kernel import RealtimeKernel


class RealSocketChannel:
    """Duck-types :class:`repro.ipcs.base.Channel` over a non-blocking
    socket, driven by the realtime kernel's selector."""

    def __init__(self, kernel: RealtimeKernel, sock: socket.socket):
        self.kernel = kernel
        self.sock = sock
        self.open = True
        self._receive_handler: Optional[Callable[[bytes], None]] = None
        self._close_handler: Optional[Callable[[str], None]] = None
        self._closed_reason: Optional[str] = None
        self._outbound = bytearray()
        self._write_registered = False
        self.bytes_sent = 0
        self.bytes_received = 0
        sock.setblocking(False)
        kernel.register_reader(sock, self._on_readable)

    # -- Channel interface ------------------------------------------------------

    def set_receive_handler(self, handler: Callable[[bytes], None]) -> None:
        """Install the per-chunk receive callback."""
        self._receive_handler = handler

    def set_close_handler(self, handler: Callable[[str], None]) -> None:
        """Install the socket-death callback (fires late if already dead)."""
        self._close_handler = handler
        if self._closed_reason is not None:
            handler(self._closed_reason)

    def send(self, data: bytes) -> None:
        """Queue bytes on the socket (partial writes buffered)."""
        if not self.open:
            raise ChannelClosed(self._closed_reason or "not open")
        self.bytes_sent += len(data)
        self._outbound.extend(data)
        self._flush()

    def close(self) -> None:
        """Close the socket and notify locally."""
        self._shutdown("closed by local end")

    # -- socket plumbing ----------------------------------------------------

    def _flush(self) -> None:
        while self._outbound:
            try:
                sent = self.sock.send(bytes(self._outbound))
            except BlockingIOError:
                break
            except OSError as exc:
                self._shutdown(f"send failed: {exc}")
                return
            if sent == 0:
                break
            del self._outbound[:sent]
        if self._outbound and not self._write_registered:
            self.kernel.register_writer(self.sock, self._on_writable)
            self._write_registered = True
        elif not self._outbound and self._write_registered:
            self.kernel.unregister_writer(self.sock)
            self._write_registered = False

    def _on_writable(self) -> None:
        self._flush()

    def _on_readable(self) -> None:
        try:
            data = self.sock.recv(65536)
        except BlockingIOError:
            return
        except OSError as exc:
            self._shutdown(f"recv failed: {exc}")
            return
        if not data:
            self._shutdown("closed by peer")
            return
        self.bytes_received += len(data)
        if self._receive_handler is not None:
            self._receive_handler(data)

    def _shutdown(self, reason: str) -> None:
        if self._closed_reason is not None:
            return
        self.open = False
        self._closed_reason = reason
        self.kernel.unregister(self.sock)
        try:
            self.sock.close()
        except OSError:
            pass
        if self._close_handler is not None:
            self._close_handler(reason)


class LoopbackRealIpcs:
    """A stand-in for the native IPCS registry slot: carries the kernel
    and the logical network name the real driver serves."""

    protocol = "rtcp"

    def __init__(self, kernel: RealtimeKernel, machine: Machine,
                 network_name: str = "loop0"):
        self.kernel = kernel
        self.machine = machine
        self.network_name = network_name
        machine.register_ipcs(network_name, self.protocol, self)


class LoopbackTcpDriver(StdIfDriver):
    """STD-IF over real localhost TCP."""

    protocol = "rtcp"

    def __init__(self, ipcs: LoopbackRealIpcs):
        self.ipcs = ipcs
        self.kernel = ipcs.kernel
        self._listeners = []

    @property
    def network_name(self) -> str:
        return self.ipcs.network_name

    def listen(self, process: SimProcess,
               on_accept: Callable[[MessageChannel], None],
               binding: Optional[str] = None) -> str:
        """Bind/listen a real TCP socket; returns the rtcp blob."""
        port = int(binding) if binding else 0
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", port))
        sock.listen(64)
        sock.setblocking(False)
        actual_port = sock.getsockname()[1]

        def accept():
            while True:
                try:
                    conn, _ = sock.accept()
                except BlockingIOError:
                    return
                except OSError:
                    return
                channel = RealSocketChannel(self.kernel, conn)
                on_accept(FramedChannel(channel))

        self.kernel.register_reader(sock, accept)
        self._listeners.append(sock)

        def close_listener():
            self.kernel.unregister(sock)
            try:
                sock.close()
            except OSError:
                pass

        process.at_kill(close_listener)
        return f"rtcp:{self.network_name}:127.0.0.1:{actual_port}"

    def connect(self, process: SimProcess, blob: str,
                timeout: float = 5.0) -> MessageChannel:
        """Non-blocking connect driven to completion by the kernel pump."""
        kind, network, host, port = blob.split(":")
        if kind != "rtcp":
            raise NetworkUnreachable(f"not a real-tcp blob: {blob!r}")
        if network != self.network_name:
            raise NetworkUnreachable(
                f"driver on {self.network_name!r} cannot reach {network!r}"
            )
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setblocking(False)
        state = {"done": False, "error": None}
        result = sock.connect_ex((host, int(port)))
        if result not in (0, errno.EINPROGRESS, errno.EWOULDBLOCK):
            sock.close()
            raise ConnectionRefused(f"connect to {blob}: {errno.errorcode.get(result, result)}")

        def on_writable():
            error = sock.getsockopt(socket.SOL_SOCKET, socket.SO_ERROR)
            state["done"] = True
            state["error"] = error or None
            self.kernel.unregister(sock)

        self.kernel.register_writer(sock, on_writable)
        ok = self.kernel.pump_until(lambda: state["done"], timeout=timeout,
                                    what=f"rtcp connect {blob}")
        if not ok or state["error"]:
            self.kernel.unregister(sock)
            sock.close()
            detail = ("timed out" if not ok
                      else errno.errorcode.get(state["error"], state["error"]))
            raise ConnectionRefused(f"connect to {blob}: {detail}")
        channel = RealSocketChannel(self.kernel, sock)
        process.at_kill(channel.close)
        return FramedChannel(channel)


# The ND-Layer discovers this substrate through the driver registry: an
# "rtcp" IPCS (LoopbackRealIpcs) can only be built by importing this
# module, so the factory is guaranteed registered before any Nucleus
# asks for it.
register_driver("rtcp", LoopbackTcpDriver)
