"""Deployment builder for real-socket NTCS systems.

Mirrors :class:`repro.testbed.Testbed`, but every "machine" is a bundle
of real localhost sockets under one realtime kernel.  Machine *types*
are still simulated (that is the point: byte-order heterogeneity on one
physical host), so the conversion layer behaves exactly as on the
simulated networks.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Optional

from repro.commod import ComMod
from repro.errors import SimulationError
from repro.machine import Machine, MachineType, SimProcess
from repro.naming import NameServer
from repro.ntcs.nucleus import NucleusConfig
from repro.ntcs.wellknown import WellKnownTable
from repro.realnet.driver import LoopbackRealIpcs
from repro.realnet.kernel import RealtimeKernel
from repro.testbed import make_registry

NETWORK = "loop0"


class RealDeployment:
    """One real-socket deployment on localhost."""

    def __init__(self, config: Optional[NucleusConfig] = None):
        self.kernel = RealtimeKernel()
        self.registry = make_registry()
        self.wellknown = WellKnownTable()
        self.config = config or NucleusConfig(
            open_timeout=3.0, call_timeout=5.0,
        )
        self.machines: Dict[str, Machine] = {}
        self.modules: Dict[str, ComMod] = {}
        self.name_server_instance: Optional[NameServer] = None

    def machine(self, name: str, mtype: MachineType) -> Machine:
        """Create a 'machine': a machine type plus a real-socket IPCS slot."""
        if name in self.machines:
            raise SimulationError(f"machine {name!r} already exists")
        machine = Machine(self.kernel, name, mtype)
        LoopbackRealIpcs(self.kernel, machine, NETWORK)
        self.machines[name] = machine
        return machine

    def name_server(self, machine_name: str) -> NameServer:
        """Start the Name Server on a real socket (OS-assigned port)."""
        if self.name_server_instance is not None:
            raise SimulationError("this deployment already has a Name Server")
        process = SimProcess(self.machines[machine_name], "name.server")
        server = NameServer(
            process, self.registry, self.wellknown,
            network=NETWORK, binding=None,  # OS assigns the port
            config=replace(self.config),
        )
        self.wellknown.add_name_server_blob(server.listen_blob)
        self.name_server_instance = server
        return server

    def module(self, name: str, machine_name: str, register: bool = True,
               attrs=None) -> ComMod:
        """Create an application module over real sockets."""
        process = SimProcess(self.machines[machine_name], name)
        commod = ComMod(
            process, self.registry, self.wellknown,
            network=NETWORK, config=replace(self.config),
        )
        if register:
            commod.ali.register(name, attrs=attrs)
        self.modules[name] = commod
        return commod

    def warm_naming(self) -> int:
        """Batch-prefetch the control plane (PROTOCOL.md §9): one
        ``ns_resolve_batch`` round trip per module primes its resolution
        cache with every registered peer's record, replacing one NS
        round trip per (module, peer) pair at first contact.  Returns
        the number of batch calls (0 when the cache is disabled)."""
        if not self.config.nsp_cache_enabled or not self.modules:
            return 0
        names = sorted(self.modules)
        batches = 0
        for commod in self.modules.values():
            commod.nsp.resolve_batch(names)
            batches += 1
        return batches

    def settle(self, duration: float = 0.05) -> None:
        """Let in-flight socket traffic drain (wall-clock)."""
        self.kernel.wait(duration)

    def shutdown(self) -> None:
        """Close every socket and the kernel."""
        for commod in self.modules.values():
            if commod.process.alive:
                commod.process.kill()
        if self.name_server_instance is not None:
            if self.name_server_instance.process.alive:
                self.name_server_instance.process.kill()
        self.kernel.close()
