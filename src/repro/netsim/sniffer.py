"""A wire sniffer: records every frame delivered on a network.

The Sec. 6.2 debugging discussion asks for visibility into what the
system is actually doing; a :class:`Sniffer` gives the wire-level view
the layer tracer cannot.  Tests also use it to check *wire-level*
claims — e.g. that bodies between unlike machines really travel in the
character transport format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.netsim.network import Datagram, Network


@dataclass(frozen=True)
class SniffedFrame:
    time: float
    network: str
    src_host: str
    dst_host: str
    protocol: str
    payload: object


class Sniffer:
    """Wiretap on one network.  Attach with :meth:`attach`; every frame
    *delivered* (not dropped) is recorded."""

    def __init__(self, keep: Optional[Callable[[Datagram], bool]] = None):
        self.frames: List[SniffedFrame] = []
        self._keep = keep
        self._network: Optional[Network] = None
        self._original_transmit = None

    def attach(self, network: Network) -> "Sniffer":
        """Start recording frames transmitted on a network."""
        if self._network is not None:
            raise RuntimeError("sniffer already attached")
        self._network = network
        self._original_transmit = network.transmit
        sniffer = self

        def tapped(datagram: Datagram, size: Optional[int] = None):
            if sniffer._keep is None or sniffer._keep(datagram):
                sniffer.frames.append(SniffedFrame(
                    time=network.scheduler.now,
                    network=datagram.network,
                    src_host=datagram.src_host,
                    dst_host=datagram.dst_host,
                    protocol=datagram.protocol,
                    payload=datagram.payload,
                ))
            sniffer._original_transmit(datagram, size=size)

        network.transmit = tapped
        return self

    def detach(self) -> None:
        """Stop recording and restore the network's transmit path."""
        if self._network is not None:
            self._network.transmit = self._original_transmit
            self._network = None

    # -- queries ----------------------------------------------------------

    def between(self, host_a: str, host_b: str) -> List[SniffedFrame]:
        """All recorded frames between two hosts (either direction)."""
        return [f for f in self.frames
                if {f.src_host, f.dst_host} == {host_a, host_b}]

    def payload_bytes(self) -> List[bytes]:
        """Every bytes-typed element found inside recorded payloads
        (segments' data, mailbox records)."""
        out = []
        for frame in self.frames:
            payload = frame.payload
            if isinstance(payload, tuple):
                out.extend(p for p in payload
                           if isinstance(p, (bytes, bytearray)))
        return out

    def clear(self) -> None:
        """Discard recorded frames."""
        self.frames.clear()

    def __len__(self) -> int:
        return len(self.frames)
