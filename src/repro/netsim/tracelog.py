"""Wire trace logging: JSONL event traces for conformance checking.

A :class:`NetTraceLog` taps one or more networks' ``trace_hook`` and
records every transmitted frame — including dropped ones — as one JSON
object per line, in the chaos schedule's event shape
(``{"at", "op", "target", "args"}``, see :mod:`repro.netsim.chaos`).
Every ``bytes`` blob found inside the payload is recorded as hex; the
netsim neither knows nor cares that some of those blobs are NTCS
frames.  The analysis layer's trace-conformance checker
(``python -m repro.analysis verify --trace``) does that join.

Observation only: the log rides the hook *after* the network's drop
decision and cannot change delivery, so tracing a simulation never
changes what the simulation does.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, List, Union

from repro.netsim.network import Datagram, Network


def _payload_blobs(payload: Any) -> List[bytes]:
    """Every bytes blob inside a payload, in order.  Payloads are
    tuples/lists with bytes elements (TCP segments, mailbox records);
    nesting is walked recursively."""
    out: List[bytes] = []
    if isinstance(payload, (bytes, bytearray)):
        out.append(bytes(payload))
    elif isinstance(payload, (tuple, list)):
        for element in payload:
            out.extend(_payload_blobs(element))
    return out


class NetTraceLog:
    """Records every frame transmitted on the attached networks."""

    def __init__(self) -> None:
        self.events: List[dict] = []
        self._networks: List[Network] = []

    def attach(self, network: Network) -> "NetTraceLog":
        """Start recording a network's frames (chainable; a network's
        previous hook, if any, is replaced)."""
        def hook(datagram: Datagram, size: int, dropped: bool,
                 network: Network = network) -> None:
            self._record(network, datagram, size, dropped)

        network.trace_hook = hook
        self._networks.append(network)
        return self

    def detach(self) -> None:
        """Stop recording on every attached network."""
        for network in self._networks:
            network.trace_hook = None
        self._networks.clear()

    def _record(self, network: Network, datagram: Datagram,
                size: int, dropped: bool) -> None:
        self.events.append({
            "at": network.scheduler.now,
            "op": "frame",
            "target": network.name,
            "args": {
                "src": datagram.src_host,
                "dst": datagram.dst_host,
                "protocol": datagram.protocol,
                "size": size,
                "dropped": dropped,
                "frames": [blob.hex()
                           for blob in _payload_blobs(datagram.payload)],
            },
        })

    # -- persistence --------------------------------------------------------

    def dump_jsonl(self, path: Union[str, Path]) -> Path:
        """Write the trace, one JSON event per line."""
        path = Path(path)
        with path.open("w") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return path

    @staticmethod
    def load_jsonl(path: Union[str, Path]) -> List[dict]:
        """Read a dumped trace back as a list of events."""
        return [json.loads(line)
                for line in Path(path).read_text().splitlines() if line]

    def clear(self) -> None:
        """Discard recorded events."""
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
