"""Deterministic discrete-event network simulation substrate.

The paper's NTCS ran over real LANs between real Apollo/VAX/Sun
machines.  This package supplies the reproduction's stand-in: a
deterministic event scheduler with a virtual clock (:mod:`scheduler`),
named networks with per-link latency (:mod:`network`), and fault
injection — message drop, partition, endpoint death (:mod:`faults`).

The scheduler is *reentrant*: an event handler may itself block by
pumping the queue (see :meth:`Scheduler.pump_until`), which is how the
reproduction models the paper's passive, recursive Nucleus (Sec. 6).
"""

from repro.netsim.scheduler import Scheduler, Event
from repro.netsim.network import Network, Interface, Datagram
from repro.netsim.faults import FaultPlan
from repro.netsim.sniffer import Sniffer, SniffedFrame
from repro.netsim.tracelog import NetTraceLog
from repro.netsim.chaos import ChaosEngine, ChaosEvent, ChaosSchedule, random_schedule

__all__ = [
    "Scheduler",
    "Event",
    "Network",
    "Interface",
    "Datagram",
    "FaultPlan",
    "Sniffer",
    "SniffedFrame",
    "NetTraceLog",
    "ChaosEngine",
    "ChaosEvent",
    "ChaosSchedule",
    "random_schedule",
]
