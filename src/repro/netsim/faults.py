"""Fault injection for the simulated networks.

The paper's dynamic-reconfiguration and gateway-failure machinery
(Secs. 3.5, 4.3) only does anything observable when links break,
messages vanish, and modules die.  A :class:`FaultPlan` is attached to a
:class:`~repro.netsim.network.Network` and consulted for every datagram.
"""

from __future__ import annotations

import random
from typing import FrozenSet, Optional, Set, Tuple


class FaultPlan:
    """Mutable description of what is currently broken on one network.

    Supports:
      * probabilistic datagram loss (seeded, deterministic),
      * a fixed number of "drop the next N datagrams",
      * severed host pairs (both directions),
      * partitions: the network is split into groups; datagrams only
        flow within a group.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)
        self.drop_probability = 0.0
        self._drop_next = 0
        self._severed: Set[FrozenSet[str]] = set()
        self._partition: Optional[Tuple[FrozenSet[str], ...]] = None
        self.dropped = 0

    # -- configuration ----------------------------------------------------

    def drop_next(self, count: int = 1) -> None:
        """Unconditionally drop the next ``count`` datagrams."""
        self._drop_next += count

    def sever(self, host_a: str, host_b: str) -> None:
        """Break the link between two hosts (both directions)."""
        self._severed.add(frozenset((host_a, host_b)))

    def heal(self, host_a: str, host_b: str) -> None:
        """Restore a previously severed link."""
        self._severed.discard(frozenset((host_a, host_b)))

    def partition(self, *groups: Set[str]) -> None:
        """Split the network into the given host groups."""
        self._partition = tuple(frozenset(g) for g in groups)

    def heal_partition(self) -> None:
        """Remove the partition; all hosts reach each other again."""
        self._partition = None

    def clear(self) -> None:
        """Remove every *configured* fault: probabilistic loss, pending
        ``drop_next`` budget, severed links, and the partition.  The
        ``dropped`` statistic is an observation, not a configuration,
        and is deliberately kept — callers diffing it across a chaos
        window must not lose the tally when the window is cleared."""
        self.drop_probability = 0.0
        self._drop_next = 0
        self._severed.clear()
        self._partition = None

    @property
    def pending_drops(self) -> int:
        """How many unconditional ``drop_next`` drops remain armed."""
        return self._drop_next

    # -- consultation -----------------------------------------------------

    def blocks(self, src_host: str, dst_host: str) -> bool:
        """True when the src→dst path is administratively broken
        (severed link or partition) — the datagram can never arrive."""
        if frozenset((src_host, dst_host)) in self._severed:
            return True
        if self._partition is not None:
            for group in self._partition:
                if src_host in group:
                    return dst_host not in group
            return True  # src in no group: isolated
        return False

    def should_drop(self, src_host: str, dst_host: str) -> bool:
        """Decide the fate of one datagram; counts drops."""
        if self.blocks(src_host, dst_host):
            self.dropped += 1
            return True
        if self._drop_next > 0:
            self._drop_next -= 1
            self.dropped += 1
            return True
        if self.drop_probability > 0 and self._rng.random() < self.drop_probability:
            self.dropped += 1
            return True
        return False
