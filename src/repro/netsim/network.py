"""Simulated networks and host interfaces.

A :class:`Network` is one physical communication medium — the stand-in
for an Ethernet segment or the Apollo ring.  Machines attach through
:class:`Interface` objects with network-unique host addresses.  The
network delivers :class:`Datagram` frames between interfaces with a
fixed per-network latency, subject to the attached
:class:`~repro.netsim.faults.FaultPlan`.

Networks are deliberately *disjoint*: an interface can only reach other
interfaces on the same network.  Crossing networks is exactly what the
paper's IP-Layer + Gateways exist for (Sec. 4), so the substrate must
not accidentally provide it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import NetworkUnreachable, SimulationError
from repro.netsim.faults import FaultPlan
from repro.netsim.scheduler import Scheduler


class Datagram:
    """One frame on the wire.

    ``protocol`` names the IPCS that should receive it ("tcp", "mbx");
    ``payload`` is whatever that IPCS puts on the wire (its own framing;
    NTCS bytes ride inside).

    A plain ``__slots__`` class rather than a frozen dataclass: one is
    constructed for every frame the simulation moves, and the frozen
    dataclass's per-field ``object.__setattr__`` made construction the
    single largest fixed cost on the transmit path.  Treat instances as
    immutable all the same — a frame on the wire does not change.
    """

    __slots__ = ("network", "src_host", "dst_host", "protocol", "payload")

    def __init__(self, network: str, src_host: str, dst_host: str,
                 protocol: str, payload: Any):
        self.network = network
        self.src_host = src_host
        self.dst_host = dst_host
        self.protocol = protocol
        self.payload = payload

    def __repr__(self) -> str:
        return (f"Datagram({self.network!r}, {self.src_host!r}->"
                f"{self.dst_host!r}, {self.protocol!r})")


class Interface:
    """One machine's attachment point to one network."""

    def __init__(self, network: "Network", host: str):
        self.network = network
        self.host = host
        self._handlers: Dict[str, Callable[[Datagram], None]] = {}
        self._batch_handlers: Dict[str, Callable[[List[Datagram]], None]] = {}
        self.up = True

    def bind_protocol(self, protocol: str, handler: Callable[[Datagram], None]) -> None:
        """Register the per-protocol receive handler (one per IPCS)."""
        if protocol in self._handlers:
            raise SimulationError(
                f"protocol {protocol!r} already bound on {self.host}@{self.network.name}"
            )
        self._handlers[protocol] = handler

    def bind_protocol_batch(
        self, protocol: str,
        handler: Callable[[List[Datagram]], None],
    ) -> None:
        """Register an optional batch receive handler: a frame train
        (PROTOCOL.md §13) for this protocol arrives as one call instead
        of one :meth:`deliver` per frame.  Purely an efficiency
        contract — the handler must process the frames exactly as the
        per-frame handler would, in list order."""
        self._batch_handlers[protocol] = handler

    def unbind_protocol(self, protocol: str) -> None:
        """Remove a protocol's receive handler."""
        self._handlers.pop(protocol, None)
        self._batch_handlers.pop(protocol, None)

    def send(self, dst_host: str, protocol: str, payload: Any,
             size: Optional[int] = None) -> None:
        """Transmit one datagram to another host on this network.
        ``size`` (bytes) feeds the bandwidth model; None means
        header-only (a small control frame)."""
        if not self.up:
            return  # a downed interface silently loses frames
        self.network.transmit(
            Datagram(
                network=self.network.name,
                src_host=self.host,
                dst_host=dst_host,
                protocol=protocol,
                payload=payload,
            ),
            size=size,
        )

    def deliver(self, datagram: Datagram) -> None:
        """Called by the network when a frame arrives for this host."""
        if not self.up:
            return
        handler = self._handlers.get(datagram.protocol)
        if handler is not None:
            handler(datagram)
        # No handler: the frame is dropped, as a real stack would discard
        # a segment for a protocol nobody registered.

    def deliver_train(self, datagrams: List[Datagram]) -> None:
        """Called by the network when a frame train arrives — every
        datagram shares this host and one protocol.  One handler lookup
        serves the whole batch; an IPCS that registered a batch handler
        receives the train intact, anyone else gets the per-frame
        upcalls in order."""
        if not self.up:
            return
        protocol = datagrams[0].protocol
        batch = self._batch_handlers.get(protocol)
        if batch is not None and len(datagrams) > 1:
            batch(datagrams)
            return
        handler = self._handlers.get(protocol)
        if handler is not None:
            for datagram in datagrams:
                handler(datagram)


class _Train:
    """One open frame train: back-to-back frames sharing a destination,
    protocol and delivery delay, coalesced into a single scheduled
    delivery event (PROTOCOL.md §13)."""

    __slots__ = ("iface", "protocol", "born_at", "delay", "frames")

    def __init__(self, iface: "Interface", protocol: str, born_at: float,
                 delay: float, first: Datagram):
        self.iface = iface
        self.protocol = protocol
        self.born_at = born_at
        self.delay = delay
        self.frames: List[Datagram] = [first]


class Network:
    """A single, isolated communication medium.

    Args:
        scheduler: the global event scheduler.
        name: the logical network identifier (what the naming service
            stores as a module's network id).
        latency: one-way frame latency in virtual seconds.
        fault_seed: seed for the probabilistic fault generator.
    """

    #: Assumed size of a control frame when the sender gives no size.
    DEFAULT_FRAME_SIZE = 64

    def __init__(
        self,
        scheduler: Scheduler,
        name: str,
        latency: float = 0.001,
        bandwidth: Optional[float] = None,
        fault_seed: int = 0,
    ):
        self.scheduler = scheduler
        self.name = name
        self.latency = latency
        # Bytes per virtual second; None models an infinitely fast wire
        # (latency only).  With a bandwidth, a frame's delivery delay is
        # latency + size / bandwidth — so packed mode's character-format
        # expansion (Sec. 5.2) costs measurable wire time.
        self.bandwidth = bandwidth
        self.faults = FaultPlan(seed=fault_seed)
        self._interfaces: Dict[str, Interface] = {}
        self.frames_sent = 0
        self.frames_delivered = 0
        self.bytes_sent = 0
        # Frame trains (PROTOCOL.md §13): coalesce back-to-back frames
        # sharing (dst_host, protocol, delay) at one transmit instant
        # into a single delivery event.  Purely a delivery-path
        # construct — transmit-side accounting, the drop decision and
        # the trace hook stay per-frame, so the wire is unaffected.
        # With ``train_enabled=False`` the pre-train per-frame schedule
        # is reproduced event-for-event.
        self.train_enabled = True
        self.train_max = 64
        self._open_train: Optional[_Train] = None
        # Delivery events that carried more than one frame.
        self.trains_coalesced = 0
        # Optional wire tap (see repro.netsim.tracelog): called for
        # every transmitted frame, after the drop decision, with
        # (datagram, size, dropped).  Observation only — it cannot
        # alter delivery, so attaching one never perturbs a run.
        self.trace_hook: Optional[Callable[[Datagram, int, bool], None]] = None

    def attach(self, host: str) -> Interface:
        """Attach a new host; returns its interface."""
        if host in self._interfaces:
            raise SimulationError(f"host {host!r} already attached to {self.name}")
        iface = Interface(self, host)
        self._interfaces[host] = iface
        return iface

    def detach(self, host: str) -> None:
        """Remove a host from the network (its interface goes down)."""
        iface = self._interfaces.pop(host, None)
        if iface is not None:
            iface.up = False

    def interface(self, host: str) -> Optional[Interface]:
        """The interface of one host, or None."""
        return self._interfaces.get(host)

    def hosts(self):
        """All attached host addresses."""
        return list(self._interfaces)

    def transmit(self, datagram: Datagram, size: Optional[int] = None) -> None:
        """Schedule delivery of one frame after latency (plus the
        serialization delay when a bandwidth is configured)."""
        if datagram.dst_host not in self._interfaces:
            raise NetworkUnreachable(
                f"no host {datagram.dst_host!r} on network {self.name!r}"
            )
        size = size if size is not None else self.DEFAULT_FRAME_SIZE
        self.frames_sent += 1
        self.bytes_sent += size
        dropped = self.faults.should_drop(datagram.src_host, datagram.dst_host)
        if self.trace_hook is not None:
            self.trace_hook(datagram, size, dropped)
        if dropped:
            return
        dst = self._interfaces[datagram.dst_host]
        delay = self.latency
        if self.bandwidth:
            delay += size / self.bandwidth

        if self.train_enabled:
            train = self._open_train
            if (train is not None
                    and train.iface is dst
                    and train.protocol == datagram.protocol
                    and train.delay == delay
                    and train.born_at == self.scheduler.now
                    and len(train.frames) < self.train_max):
                # Back-to-back same-key frame: ride the open train's
                # already-scheduled delivery event.  The event was
                # posted at the head frame's (time, seq), so trains
                # fire in head-seq order and delivery order equals the
                # per-frame order exactly.
                train.frames.append(datagram)
                return
            # Different key, a time advance, or a full train: this
            # frame opens a fresh train (closing the previous one — it
            # can no longer be joined).
            train = _Train(dst, datagram.protocol,
                           self.scheduler.now, delay, datagram)
            self._open_train = train

            def deliver_train():
                # Close the train before delivering: a frame
                # transmitted from inside a delivery upcall must start
                # a new train, never join one already firing.
                if self._open_train is train:
                    self._open_train = None
                frames = train.frames
                self.frames_delivered += len(frames)
                if len(frames) > 1:
                    self.trains_coalesced += 1
                dst.deliver_train(frames)

            self.scheduler.post(
                delay,
                deliver_train,
                note=f"{self.name}:{datagram.src_host}->{datagram.dst_host}",
            )
            return

        def deliver():
            self.frames_delivered += 1
            dst.deliver(datagram)

        # Fire-and-forget: a frame in flight is never cancelled, so the
        # pooled no-handle flavour keeps the per-frame cost to one
        # recycled event object (PROTOCOL.md §11).
        self.scheduler.post(
            delay,
            deliver,
            note=f"{self.name}:{datagram.src_host}->{datagram.dst_host}",
        )
