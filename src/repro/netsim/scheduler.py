"""Reentrant discrete-event scheduler with a virtual clock.

Every asynchronous action in the reproduction — a datagram in flight, a
channel-close detection delay, a periodic time-service refresh — is an
:class:`Event` on one global :class:`Scheduler`.

The essential property is **reentrancy**.  The paper's Nucleus is
passive: a module's send blocks until complete, and while it is blocked
the rest of the distributed system keeps running (the Name Server
answers, gateways splice circuits, the monitor collects data).  Here a
blocking call is :meth:`Scheduler.pump_until`: it pops and runs queued
events until its predicate holds.  A handler run by the pump may itself
call ``pump_until`` — a nested, deeper pump over the same queue.  That
is exactly the recursive control structure of Sec. 6 of the paper, and
it is what lets a Name-Server request issued *from inside* a send be
served before the send completes.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import DeadlockError, SimulationError, VirtualTimeout


class Event:
    """A scheduled callback.  Returned by :meth:`Scheduler.schedule` so
    callers can cancel it.  Ordered by (time, sequence) for determinism.
    """

    __slots__ = ("time", "seq", "callback", "note", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None], note: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.note = note
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call twice."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, note={self.note!r})"


class Scheduler:
    """The global event queue and virtual clock.

    Args:
        max_events: hard ceiling on total events processed, a backstop
            against runaway feedback loops (the reproduction's analogue
            of a hung testbed).
    """

    def __init__(self, max_events: int = 5_000_000):
        self._queue: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events
        self._pump_depth = 0
        self.max_pump_depth_seen = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pump_depth(self) -> int:
        """How many nested blocking pumps are currently active."""
        return self._pump_depth

    @property
    def events_processed(self) -> int:
        return self._processed

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None], note: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        event = Event(self._now + delay, self._seq, callback, note)
        heapq.heappush(self._queue, event)
        return event

    def call_soon(self, callback: Callable[[], None], note: str = "") -> Event:
        """Schedule ``callback`` at the current virtual time (after any
        already-queued events at this time)."""
        return self.schedule(0.0, callback, note)

    # -- execution --------------------------------------------------------

    def _pop_runnable(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if queue empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def _run(self, event: Event) -> None:
        if event.time < self._now:
            raise SimulationError(
                f"event time {event.time} precedes clock {self._now}"
            )
        self._now = event.time
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"event budget exceeded ({self._max_events}); "
                "probable runaway feedback loop"
            )
        event.callback()

    def step(self) -> bool:
        """Run the single earliest pending event.  Returns False when the
        queue is empty."""
        event = self._pop_runnable()
        if event is None:
            return False
        self._run(event)
        return True

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains; returns how many ran."""
        ran = 0
        while max_events is None or ran < max_events:
            if not self.step():
                break
            ran += 1
        return ran

    def run_for(self, duration: float) -> int:
        """Run events whose time is within ``duration`` from now, then
        advance the clock to exactly now + duration.  Returns the number
        of events run."""
        deadline = self._now + duration
        ran = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > deadline:
                break
            heapq.heappop(self._queue)
            self._run(head)
            ran += 1
        self._now = max(self._now, deadline)
        return ran

    def pump_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        what: str = "",
    ) -> bool:
        """Block (in simulation terms) until ``predicate()`` is true.

        Runs queued events — possibly reentrantly, from inside another
        pump — until the predicate holds.  Returns True on success.

        With a ``timeout`` (virtual seconds from now), the clock is
        advanced to the deadline and False is returned if the predicate
        never held.  Without one, an empty queue with a false predicate
        raises :class:`DeadlockError`, since no future event could ever
        change the outcome.
        """
        deadline = None if timeout is None else self._now + timeout
        self._pump_depth += 1
        self.max_pump_depth_seen = max(self.max_pump_depth_seen, self._pump_depth)
        try:
            while True:
                if predicate():
                    return True
                event = self._pop_runnable()
                if event is None:
                    if deadline is not None:
                        self._now = max(self._now, deadline)
                        return False
                    raise DeadlockError(
                        f"pump_until({what or 'predicate'}): event queue empty "
                        "and predicate false — nothing can unblock this call"
                    )
                if deadline is not None and event.time > deadline:
                    # Put it back: it belongs to whoever pumps next.
                    heapq.heappush(self._queue, event)
                    self._now = deadline
                    return False
                self._run(event)
        finally:
            self._pump_depth -= 1

    def wait(self, duration: float) -> None:
        """Blockingly let ``duration`` virtual seconds elapse, running any
        events that fall inside the window (a pump with an always-false
        predicate)."""
        ok = self.pump_until(lambda: False, timeout=duration, what="wait")
        if ok:  # pragma: no cover - predicate is constant False
            raise SimulationError("wait() predicate unexpectedly true")

    def sleep_until(self, when: float) -> None:
        """Blockingly advance virtual time to ``when`` (no-op if past)."""
        if when > self._now:
            self.wait(when - self._now)

    def pending(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def raise_timeout(self, what: str) -> None:
        """Helper for callers that want the raising flavour of timeout."""
        raise VirtualTimeout(what)
