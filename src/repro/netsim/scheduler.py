"""Reentrant discrete-event scheduler with a virtual clock.

Every asynchronous action in the reproduction — a datagram in flight, a
channel-close detection delay, a periodic time-service refresh — is an
:class:`Event` on one global :class:`Scheduler`.

The essential property is **reentrancy**.  The paper's Nucleus is
passive: a module's send blocks until complete, and while it is blocked
the rest of the distributed system keeps running (the Name Server
answers, gateways splice circuits, the monitor collects data).  Here a
blocking call is :meth:`Scheduler.pump_until`: it pops and runs queued
events until its predicate holds.  A handler run by the pump may itself
call ``pump_until`` — a nested, deeper pump over the same queue.  That
is exactly the recursive control structure of Sec. 6 of the paper, and
it is what lets a Name-Server request issued *from inside* a send be
served before the send completes.

Storage is the shared hierarchical timer wheel of
:mod:`repro.netsim.timerwheel` (PROTOCOL.md §11): events run in the
exact ``(time, seq)`` total order the original single heap produced,
but pushes, pops and ``pending()`` no longer pay per-event Python
comparisons or O(n) scans.  Three scheduling flavours exist:

* :meth:`schedule` — returns a cancellable :class:`Event` handle.
* :meth:`post` — no handle, so the event object is recycled through a
  free list; use for fire-and-forget hot-path work (datagram delivery,
  chaos appliers) that is never cancelled.
* :meth:`run_queue` — a named per-nucleus FIFO whose ``post`` is O(1)
  and registers only the queue head with the wheel, so idle modules
  cost nothing per tick.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import DeadlockError, SimulationError, VirtualTimeout
from repro.netsim.timerwheel import Event, EventPool, RunQueue, TimerWheel

__all__ = ["Event", "RunQueue", "Scheduler"]


class Scheduler:
    """The global event queue and virtual clock.

    Args:
        max_events: hard ceiling on total events processed, a backstop
            against runaway feedback loops (the reproduction's analogue
            of a hung testbed).
        quantum: timer-wheel bucket width in virtual seconds.  Purely a
            routing knob — the execution order is bucket-independent.
        wheel_slots: bucket count; ``quantum * wheel_slots`` is the
            wheel window, beyond which events sit in the overflow heap.
    """

    def __init__(self, max_events: int = 5_000_000,
                 quantum: float = 0.005, wheel_slots: int = 512):
        self._wheel = TimerWheel(quantum=quantum, slots=wheel_slots)
        self._pool = EventPool()
        self._seq = 0
        self._now = 0.0
        self._processed = 0
        self._max_events = max_events
        self._pump_depth = 0
        self.max_pump_depth_seen = 0
        # One-shot callbacks run at the next blocking pump's entry.
        # Frame-train walks (PROTOCOL.md §13) defer per-IVC flow-grant
        # checks to the walk's end; registering the discharge here as
        # well guarantees a handler that blocks *mid-walk* can never
        # wait on a grant the deferral is holding back.
        self._pump_flushers = []

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def pump_depth(self) -> int:
        """How many nested blocking pumps are currently active."""
        return self._pump_depth

    @property
    def events_processed(self) -> int:
        return self._processed

    @property
    def wheel(self) -> TimerWheel:
        """The underlying timer wheel (stats: compactions, pool reuse)."""
        return self._wheel

    @property
    def pool(self) -> EventPool:
        """The free list recycling no-handle events."""
        return self._pool

    # -- scheduling -------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None],
                 note: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` virtual seconds from
        now.  Returns a cancellable handle (never pooled)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        event = Event(self._now + delay, self._seq, callback, note)
        self._wheel.push(event)
        return event

    def post(self, delay: float, callback: Callable[[], None],
             note: str = "") -> None:
        """Fire-and-forget :meth:`schedule`: identical ordering, but no
        handle is returned, so the event object rides the free list.
        The hot-path flavour for work that is never cancelled."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        self._wheel.push(
            self._pool.acquire(self._now + delay, self._seq, callback, note))

    def defer_flush(self, flush: Callable[[], None]) -> None:
        """Register a one-shot callback to run when the next blocking
        pump starts (idempotent callbacks expected — a callback may also
        run earlier through its owner's own discharge point)."""
        self._pump_flushers.append(flush)

    def call_soon(self, callback: Callable[[], None], note: str = "") -> Event:
        """Schedule ``callback`` at the current virtual time (after any
        already-queued events at this time)."""
        return self.schedule(0.0, callback, note)

    def run_queue(self, name: str) -> RunQueue:
        """A named per-nucleus FIFO.  Its ``post`` lands locally in
        O(1); only the queue's head deadline is registered with the
        wheel, so idle queues are never visited."""
        return RunQueue(self, name)

    def _post_queued(self, queue: RunQueue, callback: Callable[[], None],
                     note: str) -> None:
        self._seq += 1
        self._wheel.queue_push(
            queue, self._pool.acquire(self._now, self._seq, callback, note))

    # -- execution --------------------------------------------------------

    def _pop_runnable(self) -> Optional[Event]:
        """Pop the earliest non-cancelled event, or None if queue empty."""
        return self._wheel.pop()

    def _peek_time(self) -> Optional[float]:
        """Time of the earliest non-cancelled event, or None."""
        event = self._wheel.peek()
        return None if event is None else event.time

    def _run(self, event: Event) -> None:
        if event.time < self._now:
            raise SimulationError(
                f"event time {event.time} precedes clock {self._now}"
            )
        self._now = event.time
        self._processed += 1
        if self._processed > self._max_events:
            raise SimulationError(
                f"event budget exceeded ({self._max_events}); "
                "probable runaway feedback loop"
            )
        callback = event.callback
        if event._pooled:
            # No handle exists, so nothing can cancel or observe the
            # object: recycle it before the callback so bursts of
            # fire-and-forget work reuse one allocation.
            self._pool.release(event)
        callback()

    def step(self) -> bool:
        """Run the single earliest pending event.  Returns False when the
        queue is empty."""
        event = self._wheel.pop()
        if event is None:
            return False
        self._run(event)
        return True

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains; returns how many ran."""
        ran = 0
        while max_events is None or ran < max_events:
            if not self.step():
                break
            ran += 1
        return ran

    def run_for(self, duration: float) -> int:
        """Run events whose time is within ``duration`` from now, then
        advance the clock to exactly now + duration.  Returns the number
        of events run."""
        deadline = self._now + duration
        ran = 0
        while True:
            head_time = self._peek_time()
            if head_time is None or head_time > deadline:
                break
            self._run(self._wheel.pop())
            ran += 1
        self._now = max(self._now, deadline)
        return ran

    def pump_until(
        self,
        predicate: Callable[[], bool],
        timeout: Optional[float] = None,
        what: str = "",
    ) -> bool:
        """Block (in simulation terms) until ``predicate()`` is true.

        Runs queued events — possibly reentrantly, from inside another
        pump — until the predicate holds.  Returns True on success.

        With a ``timeout`` (virtual seconds from now), the clock is
        advanced to the deadline and False is returned if the predicate
        never held.  Without one, an empty queue with a false predicate
        raises :class:`DeadlockError`, since no future event could ever
        change the outcome.
        """
        if self._pump_flushers:
            flushers = self._pump_flushers
            self._pump_flushers = []
            for flush in flushers:
                flush()
        deadline = None if timeout is None else self._now + timeout
        self._pump_depth += 1
        self.max_pump_depth_seen = max(self.max_pump_depth_seen, self._pump_depth)
        try:
            while True:
                if predicate():
                    return True
                head_time = self._peek_time()
                if head_time is None:
                    if deadline is not None:
                        self._now = max(self._now, deadline)
                        return False
                    raise DeadlockError(
                        f"pump_until({what or 'predicate'}): event queue empty "
                        "and predicate false — nothing can unblock this call"
                    )
                if deadline is not None and head_time > deadline:
                    # Leave it in place: it belongs to whoever pumps next.
                    self._now = deadline
                    return False
                self._run(self._wheel.pop())
        finally:
            self._pump_depth -= 1

    def wait(self, duration: float) -> None:
        """Blockingly let ``duration`` virtual seconds elapse, running any
        events that fall inside the window (a pump with an always-false
        predicate)."""
        ok = self.pump_until(lambda: False, timeout=duration, what="wait")
        if ok:  # pragma: no cover - predicate is constant False
            raise SimulationError("wait() predicate unexpectedly true")

    def sleep_until(self, when: float) -> None:
        """Blockingly advance virtual time to ``when`` (no-op if past)."""
        if when > self._now:
            self.wait(when - self._now)

    def pending(self) -> int:
        """Number of not-yet-cancelled queued events.  O(1): the wheel
        accounts for cancellations eagerly."""
        return self._wheel.live

    def raise_timeout(self, what: str) -> None:
        """Helper for callers that want the raising flavour of timeout."""
        raise VirtualTimeout(what)
