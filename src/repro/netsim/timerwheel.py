"""The shared event core: a hierarchical timer wheel with run queues.

Both clocks of the reproduction drive their events through this module:
the virtual-time :class:`~repro.netsim.scheduler.Scheduler` and the
wall-clock :class:`~repro.realnet.kernel.RealtimeKernel` are thin
drivers over one :class:`TimerWheel` (one clock abstraction, two
drivers — PROTOCOL.md §11).

Why a wheel.  The original core kept every pending event in a single
``heapq`` of :class:`Event` objects.  Each push/pop paid O(log n)
*Python-level* ``__lt__`` calls, ``pending()`` was an O(n) scan, and a
cancelled retry timer — the single most common event fate on the
message hot path — sat in the heap until its time came up, still
paying comparisons on every operation that sifted past it.  At 10,000
modules the substrate, not the protocol, was the ceiling.

The wheel routes events into coarse buckets keyed on quantized time
(``slot = int(time / quantum)``) and keeps three tiers:

* ``_ready`` — a heap of ``(time, seq, event)`` tuples holding every
  event at or before the **cursor** slot.  Tuple comparison stays in
  C; Python ``__lt__`` never runs on the hot path.
* ``_buckets`` — plain unsorted lists for slots inside the wheel
  window.  An event landing here costs one ``list.append``.  A bucket
  is heapified wholesale (C-level) only when the cursor reaches it.
* ``_overflow`` — a heap for events beyond the window (keepalives,
  far-future deadlines).  They cascade toward ``_ready`` lazily, as
  the cursor advances — idle-module timers cost nothing per tick.

**Determinism contract.**  Events run in exactly the total order
``(time, seq)``, bit-identical to the old single heap: bucketing only
*routes* entries, every consume point re-establishes the full tuple
order, and sequence numbers are allocated by the driver in call order.
Wire goldens and chaos replays cannot observe the data structure.

Run queues (:class:`RunQueue`) give each nucleus/machine a local FIFO
for ``call_soon``-grade work: a post is a ``deque.append``, and only
the queue's *head* ``(time, seq)`` is registered with the wheel, so a
mostly-idle population registers nothing and is never visited.  FIFO
entries are drained in global ``(time, seq)`` order against the timer
tiers, preserving the total order exactly.

Cancellation is accounted eagerly: :meth:`Event.cancel` moves the
event from the live count to the cancelled count in O(1) (so
``pending()`` is O(1)), and the wheel compacts — rewrites itself
without the corpses — whenever cancelled entries outnumber live ones.

This module is the **only** place in the tree allowed to import
``heapq`` (ntcslint DET006): ad-hoc event queues bypass the
determinism contract and the cancellation accounting.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Callable, Deque, List, Optional, Tuple


class Event:
    """A scheduled callback.  Returned by the drivers' ``schedule`` so
    callers can cancel it.  Ordered by (time, sequence) for determinism.
    """

    __slots__ = ("time", "seq", "callback", "note", "cancelled",
                 "_wheel", "_pooled")

    def __init__(self, time: float, seq: int,
                 callback: Callable[[], None], note: str):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.note = note
        self.cancelled = False
        self._wheel: Optional["TimerWheel"] = None
        self._pooled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Safe to call twice."""
        if not self.cancelled:
            self.cancelled = True
            wheel = self._wheel
            if wheel is not None:
                wheel._note_cancel()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, seq={self.seq}, {state}, note={self.note!r})"


class EventPool:
    """Free list for *unhandled* events.

    Only events the caller never receives a handle to (``post`` /
    ``RunQueue.post``) may be pooled: with no outstanding reference
    there is no way to cancel a recycled object by mistake.  Events
    returned from ``schedule`` are allocated fresh and never reused.
    """

    __slots__ = ("_free", "max_size", "reused", "allocated")

    def __init__(self, max_size: int = 4096):
        self._free: List[Event] = []
        self.max_size = max_size
        self.reused = 0
        self.allocated = 0

    def acquire(self, time: float, seq: int,
                callback: Callable[[], None], note: str) -> Event:
        """A pooled event, recycled from the free list when possible."""
        if self._free:
            event = self._free.pop()
            event.time = time
            event.seq = seq
            event.callback = callback
            event.note = note
            event.cancelled = False
            self.reused += 1
        else:
            event = Event(time, seq, callback, note)
            event._pooled = True
            self.allocated += 1
        return event

    def release(self, event: Event) -> None:
        """Return a consumed pooled event to the free list."""
        if len(self._free) < self.max_size:
            event.callback = _noop
            event.note = ""
            event._wheel = None
            self._free.append(event)


def _noop() -> None:
    pass


class RunQueue:
    """A per-nucleus (or per-machine) FIFO of immediate work.

    ``post`` is the run-queue flavour of ``call_soon``: the callback is
    stamped with the current time and the next global sequence number,
    appended locally, and only the queue *head* is registered on the
    wheel.  Entries cannot be cancelled — no handle is returned — which
    is what lets them ride the event pool.
    """

    __slots__ = ("name", "_scheduler", "_fifo")

    def __init__(self, scheduler, name: str):
        self.name = name
        self._scheduler = scheduler
        self._fifo: Deque[Event] = deque()

    def post(self, callback: Callable[[], None], note: str = "") -> None:
        """Run ``callback`` at the current time, after already-queued
        work (exact ``call_soon`` semantics, no handle)."""
        self._scheduler._post_queued(self, callback, note)

    def __len__(self) -> int:
        return len(self._fifo)

    def __repr__(self) -> str:
        return f"RunQueue({self.name!r}, depth={len(self._fifo)})"


class TimerWheel:
    """The storage engine: timer tiers plus registered run-queue heads.

    The wheel never invokes callbacks and never reads a clock — it is a
    pure priority structure over ``(time, seq)`` with O(1) live/
    cancelled accounting.  Drivers own sequence allocation and
    execution.
    """

    __slots__ = ("quantum", "nslots", "_buckets", "_occupied", "_ready",
                 "_overflow", "_qheads", "_cursor", "_live", "_cancelled",
                 "compactions", "compact_threshold")

    def __init__(self, quantum: float = 0.005, slots: int = 512,
                 compact_threshold: int = 64):
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self.nslots = slots
        self._buckets: List[List[Tuple[float, int, Event]]] = [
            [] for _ in range(slots)
        ]
        self._occupied: List[int] = []      # heap of absolute slot numbers
        self._ready: List[Tuple[float, int, Event]] = []
        self._overflow: List[Tuple[float, int, Event]] = []
        self._qheads: List[Tuple[float, int, RunQueue]] = []
        self._cursor = 0
        self._live = 0
        self._cancelled = 0
        self.compactions = 0
        self.compact_threshold = compact_threshold

    # -- accounting ---------------------------------------------------------

    @property
    def live(self) -> int:
        """Not-yet-cancelled events held (timers + run-queue entries)."""
        return self._live

    @property
    def cancelled_held(self) -> int:
        """Cancelled events still occupying structure (pre-compaction)."""
        return self._cancelled

    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is held here."""
        self._live -= 1
        self._cancelled += 1
        if (self._cancelled > self.compact_threshold
                and self._cancelled > self._live):
            self._compact()

    def __len__(self) -> int:
        return self._live

    # -- insertion ----------------------------------------------------------

    def push(self, event: Event) -> None:
        """File a timed event by its ``(time, seq)``.  (The placement
        logic is inlined — this is the hottest insert path.)"""
        event._wheel = self
        self._live += 1
        time = event.time
        slot = int(time / self.quantum)
        cursor = self._cursor
        if slot <= cursor:
            heappush(self._ready, (time, event.seq, event))
        elif slot < cursor + self.nslots:
            bucket = self._buckets[slot % self.nslots]
            if not bucket:
                heappush(self._occupied, slot)
            bucket.append((time, event.seq, event))
        else:
            heappush(self._overflow, (time, event.seq, event))

    def _place(self, entry: Tuple[float, int, Event]) -> None:
        slot = int(entry[0] / self.quantum)
        if slot <= self._cursor:
            heappush(self._ready, entry)
        elif slot < self._cursor + self.nslots:
            bucket = self._buckets[slot % self.nslots]
            if not bucket:
                heappush(self._occupied, slot)
            bucket.append(entry)
        else:
            heappush(self._overflow, entry)

    def queue_push(self, queue: RunQueue, event: Event) -> None:
        """Append to a run queue; register its head if it was idle."""
        event._wheel = self
        self._live += 1
        fifo = queue._fifo
        fifo.append(event)
        if len(fifo) == 1:
            heappush(self._qheads, (event.time, event.seq, queue))

    # -- consumption --------------------------------------------------------

    def peek(self) -> Optional[Event]:
        """The earliest live event, or None.  Does not remove it."""
        # Fast path: a live entry at the front of _ready that beats any
        # registered run-queue head.  (time, seq) pairs are unique, so
        # entry tuples compare without reaching their third elements.
        ready = self._ready
        if ready:
            entry = ready[0]
            event = entry[2]
            if not event.cancelled:
                qheads = self._qheads
                if not qheads or entry < qheads[0]:
                    return event
        timer = self._timer_head()
        qhead = self._qheads[0] if self._qheads else None
        if timer is None:
            return qhead[2]._fifo[0] if qhead is not None else None
        # (time, seq) pairs are unique, so the tuples never compare
        # their third elements.
        if qhead is None or timer < qhead:
            return timer[2]
        return qhead[2]._fifo[0]

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest live event, or None."""
        ready = self._ready
        if ready:
            entry = ready[0]
            event = entry[2]
            if not event.cancelled:
                qheads = self._qheads
                if not qheads or entry < qheads[0]:
                    heappop(ready)
                    self._live -= 1
                    event._wheel = None
                    return event
        return self._pop_slow()

    def _pop_slow(self) -> Optional[Event]:
        timer = self._timer_head()
        qhead = self._qheads[0] if self._qheads else None
        if timer is None and qhead is None:
            return None
        if qhead is None or (timer is not None and timer < qhead):
            heappop(self._ready)
            event = timer[2]
        else:
            heappop(self._qheads)
            queue = qhead[2]
            event = queue._fifo.popleft()
            if queue._fifo:
                head = queue._fifo[0]
                heappush(self._qheads, (head.time, head.seq, queue))
        self._live -= 1
        event._wheel = None
        return event

    def _timer_head(self) -> Optional[Tuple[float, int, Event]]:
        """Earliest live *timer* entry (left in ``_ready``), or None."""
        while True:
            ready = self._ready    # _refill may rebind the list
            while ready and ready[0][2].cancelled:
                self._cancelled -= 1
                heappop(ready)[2]._wheel = None
            if ready:
                return ready[0]
            if not self._refill():
                return None

    def _refill(self) -> bool:
        """Advance the cursor to the next populated slot and pull its
        bucket (and any due overflow) into ``_ready``.  Returns False
        when no timer entries remain anywhere."""
        occupied = self._occupied
        next_slot = occupied[0] if occupied else None
        if self._overflow:
            overflow_slot = int(self._overflow[0][0] / self.quantum)
            if next_slot is None or overflow_slot < next_slot:
                next_slot = overflow_slot
        if next_slot is None:
            return False
        self._cursor = next_slot
        if occupied and occupied[0] == next_slot:
            heappop(occupied)
            index = next_slot % self.nslots
            bucket = self._buckets[index]
            self._buckets[index] = []
            if self._ready:
                self._ready.extend(bucket)
                heapify(self._ready)
            else:
                heapify(bucket)
                self._ready = bucket
        overflow = self._overflow
        while overflow and int(overflow[0][0] / self.quantum) <= next_slot:
            heappush(self._ready, heappop(overflow))
        return True

    # -- compaction ---------------------------------------------------------

    def _compact(self) -> None:
        """Rewrite every tier without the cancelled entries.  Triggered
        from cancellation accounting once corpses outnumber live events;
        O(total) and therefore amortized O(1) per cancel."""
        survivors: List[Tuple[float, int, Event]] = []

        def keep(entries):
            for entry in entries:
                if entry[2].cancelled:
                    self._cancelled -= 1
                    entry[2]._wheel = None
                else:
                    survivors.append(entry)

        keep(self._ready)
        self._ready = []
        for index, bucket in enumerate(self._buckets):
            if bucket:
                keep(bucket)
                self._buckets[index] = []
        keep(self._overflow)
        self._overflow = []
        self._occupied = []
        for entry in survivors:
            self._place(entry)
        self.compactions += 1
