"""Standard internet topologies for tests and experiments.

The paper's deployments were hand-wired; these helpers build the
recurring shapes — a chain of networks, a star around a hub, a full
clique — on a :class:`~repro.testbed.Testbed`, with the prime-gateway
bootstrap configured so every module can always reach the Name Server.
"""

from __future__ import annotations

from typing import List, Optional

from repro.machine import SUN3, VAX, MachineType


def build_chain(bed, hops: int, protocol: str = "tcp",
                machine_type: Optional[MachineType] = None) -> List[str]:
    """net0 -gw- net1 -gw- … -gw- net<hops>; Name Server on net0.
    Returns the network names.  One end machine ("m0") exists on net0
    and one ("mEnd") on the last network."""
    mtype = machine_type or VAX
    networks = [f"net{i}" for i in range(hops + 1)]
    for name in networks:
        bed.network(name, protocol=protocol)
    bed.machine("m0", mtype, networks=["net0"])
    bed.name_server("m0")
    for i in range(hops):
        bed.machine(f"gwm{i}", SUN3, networks=[f"net{i}", f"net{i + 1}"])
        bed.gateway(f"gwm{i}", prime_for=[f"net{i + 1}"])
    bed.machine("mEnd", mtype, networks=[networks[-1]])
    return networks


def build_star(bed, spokes: int, protocol: str = "tcp",
               machine_type: Optional[MachineType] = None) -> List[str]:
    """A hub network with ``spokes`` leaf networks, one gateway and one
    leaf machine ("leaf<i>") per spoke; Name Server on the hub.
    Returns the spoke network names."""
    mtype = machine_type or VAX
    bed.network("hub", protocol=protocol)
    bed.machine("center", mtype, networks=["hub"])
    bed.name_server("center")
    names = []
    for i in range(spokes):
        name = f"spoke{i}"
        bed.network(name, protocol=protocol)
        bed.machine(f"g{i}", SUN3, networks=["hub", name])
        bed.gateway(f"g{i}", prime_for=[name])
        bed.machine(f"leaf{i}", mtype, networks=[name])
        names.append(name)
    return names


def build_clique(bed, size: int, protocol: str = "tcp",
                 machine_type: Optional[MachineType] = None) -> List[str]:
    """``size`` networks with a gateway between every pair (richly
    redundant routing); Name Server on net0, one machine ("host<i>")
    per network.  Returns the network names."""
    mtype = machine_type or VAX
    networks = [f"net{i}" for i in range(size)]
    for name in networks:
        bed.network(name, protocol=protocol)
    bed.machine("host0", mtype, networks=["net0"])
    bed.name_server("host0")
    for i in range(size):
        for j in range(i + 1, size):
            gw_name = f"gw{i}_{j}"
            bed.machine(gw_name, SUN3, networks=[f"net{i}", f"net{j}"])
            # net0-adjacent gateways are primes for their far network.
            prime = [f"net{j}"] if i == 0 else []
            bed.gateway(gw_name, prime_for=prime)
    for i in range(1, size):
        bed.machine(f"host{i}", mtype, networks=[f"net{i}"])
    return networks
