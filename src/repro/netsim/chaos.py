"""Deterministic chaos harness: scripted faults on virtual time.

The paper promises that applications "need not be aware of relocation,
failure, or reconfiguration" (Sec. 1) — a claim that is only testable
when failures actually happen, at controlled instants, identically on
every run.  A :class:`ChaosSchedule` is a seeded, JSON-serializable
list of timed fault operations; a :class:`ChaosEngine` installs it onto
the discrete-event :class:`~repro.netsim.scheduler.Scheduler`, so fault
injection rides the same (time, seq) total order as every protocol
event and runs are bit-deterministic.

The engine knows nothing of the NTCS layers above it (this module may
only import the foundation and its own package): process/gateway/
Name-Server crash and restart are *registered callables* — the harness
(``repro.testbed``) wires machine crashes and component restarts in —
while link flaps, partitions and datagram drops act directly on the
registered networks' :class:`~repro.netsim.faults.FaultPlan`.

Operations (``ChaosEvent.op``):

==================  =======================================================
``crash``           invoke the target's registered crash callable
``restart``         invoke the target's registered restart callable
``link_down``       ``faults.sever(a, b)`` on the target network
``link_up``         ``faults.heal(a, b)`` on the target network
``partition``      ``faults.partition(*groups)`` on the target network
``heal_partition``  ``faults.heal_partition()`` on the target network
``drop_next``       ``faults.drop_next(count)`` on the target network
``drop_probability`` set probabilistic loss on the target network
``clear_faults``    ``faults.clear()`` on the target network
==================  =======================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.netsim.scheduler import Scheduler
from repro.util.seeds import derive_rng

_NETWORK_OPS = frozenset({
    "link_down", "link_up", "partition", "heal_partition",
    "drop_next", "drop_probability", "clear_faults",
})
_TARGET_OPS = frozenset({"crash", "restart"})


@dataclass
class ChaosEvent:
    """One timed fault operation.

    ``at`` is absolute virtual time; ``target`` names a registered
    crash/restart target or a registered network; ``args`` carries the
    op-specific parameters (host pairs, groups, counts)."""

    at: float
    op: str
    target: str
    args: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (inverse of :meth:`from_dict`)."""
        return {"at": self.at, "op": self.op, "target": self.target,
                "args": dict(self.args)}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosEvent":
        return cls(at=float(data["at"]), op=str(data["op"]),
                   target=str(data["target"]),
                   args=dict(data.get("args", {})))


class ChaosSchedule:
    """A seeded, replayable fault schedule.

    The seed does not drive the schedule itself (events are explicit);
    it names the randomness the *system under test* should use for
    repair jitter, so a schedule JSON pins the entire run."""

    def __init__(self, seed: int = 0,
                 events: Optional[Sequence[ChaosEvent]] = None):
        self.seed = int(seed)
        self.events: List[ChaosEvent] = list(events or [])

    # -- construction helpers ------------------------------------------------

    def add(self, at: float, op: str, target: str, **args) -> "ChaosSchedule":
        """Append one event; returns self for chaining."""
        self.events.append(ChaosEvent(at=at, op=op, target=target, args=args))
        return self

    def crash(self, at: float, target: str) -> "ChaosSchedule":
        """Shorthand for ``add(at, "crash", target)``."""
        return self.add(at, "crash", target)

    def restart(self, at: float, target: str) -> "ChaosSchedule":
        """Shorthand for ``add(at, "restart", target)``."""
        return self.add(at, "restart", target)

    def sorted_events(self) -> List[ChaosEvent]:
        """Events in (time, insertion) order — the order they fire."""
        indexed = sorted(enumerate(self.events),
                         key=lambda pair: (pair[1].at, pair[0]))
        return [event for _, event in indexed]

    # -- JSON round trip -----------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """Serialize for replay (printed by failing property tests)."""
        return json.dumps({
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosSchedule":
        data = json.loads(text)
        return cls(seed=int(data.get("seed", 0)),
                   events=[ChaosEvent.from_dict(e)
                           for e in data.get("events", [])])

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        return f"ChaosSchedule(seed={self.seed}, events={len(self.events)})"


class ChaosEngine:
    """Installs a :class:`ChaosSchedule` onto a scheduler.

    Targets and networks are registered before :meth:`install`;
    installation validates every event so a typo'd schedule fails fast
    and identically on every run.  ``applied`` logs each operation as
    it fires — (virtual time, op, target) — for assertions and reports.
    """

    def __init__(self, scheduler: Scheduler, schedule: ChaosSchedule):
        self.scheduler = scheduler
        self.schedule = schedule
        self._crash: Dict[str, Callable[[], None]] = {}
        self._restart: Dict[str, Callable[[], None]] = {}
        self._networks: Dict[str, object] = {}
        self.applied: List[Tuple[float, str, str]] = []
        self._installed = False

    # -- registration -------------------------------------------------------

    def register_target(self, name: str,
                        crash: Optional[Callable[[], None]] = None,
                        restart: Optional[Callable[[], None]] = None) -> None:
        """Register crash/restart callables for a named target."""
        if crash is not None:
            self._crash[name] = crash
        if restart is not None:
            self._restart[name] = restart

    def register_network(self, name: str, network) -> None:
        """Register a network whose FaultPlan the link ops may drive."""
        self._networks[name] = network

    # -- installation --------------------------------------------------------

    def _validate(self, event: ChaosEvent) -> None:
        if event.op in _TARGET_OPS:
            table = self._crash if event.op == "crash" else self._restart
            if event.target not in table:
                raise SimulationError(
                    f"chaos event {event.op!r} names unregistered target "
                    f"{event.target!r}"
                )
        elif event.op in _NETWORK_OPS:
            if event.target not in self._networks:
                raise SimulationError(
                    f"chaos event {event.op!r} names unregistered network "
                    f"{event.target!r}"
                )
        else:
            raise SimulationError(f"unknown chaos op {event.op!r}")

    def install(self) -> None:
        """Validate and schedule every event at its absolute time.
        Events whose time has already passed fire immediately (delay 0),
        preserving schedule order."""
        if self._installed:
            raise SimulationError("chaos schedule already installed")
        self._installed = True
        for event in self.schedule.sorted_events():
            self._validate(event)
            delay = max(0.0, event.at - self.scheduler.now)
            # Installed faults always fire — no handle to cancel — so
            # they ride the scheduler's pooled no-handle path.
            self.scheduler.post(
                delay, self._applier(event),
                note=f"chaos:{event.op}:{event.target}",
            )

    def _applier(self, event: ChaosEvent) -> Callable[[], None]:
        def apply() -> None:
            self._apply(event)
            self.applied.append((self.scheduler.now, event.op, event.target))
        return apply

    def _apply(self, event: ChaosEvent) -> None:
        op, args = event.op, event.args
        if op == "crash":
            self._crash[event.target]()
        elif op == "restart":
            self._restart[event.target]()
        else:
            faults = self._networks[event.target].faults
            if op == "link_down":
                faults.sever(str(args["a"]), str(args["b"]))
            elif op == "link_up":
                faults.heal(str(args["a"]), str(args["b"]))
            elif op == "partition":
                faults.partition(*[set(map(str, g)) for g in args["groups"]])
            elif op == "heal_partition":
                faults.heal_partition()
            elif op == "drop_next":
                faults.drop_next(int(args.get("count", 1)))
            elif op == "drop_probability":
                faults.drop_probability = float(args["p"])
            elif op == "clear_faults":
                faults.clear()

    def remaining(self) -> int:
        """Events scheduled but not yet applied."""
        return len(self.schedule) - len(self.applied)


def random_schedule(
    seed: int,
    horizon: float,
    restartable: Sequence[str] = (),
    networks: Optional[Dict[str, Sequence[str]]] = None,
    faults: int = 3,
) -> ChaosSchedule:
    """A random-but-seeded schedule for property tests.

    Every injected fault heals before ``horizon``: crashes get a
    matching restart, severed links get healed, partitions are removed,
    so a correct system can always finish the conversation afterwards.

    ``restartable``: target names with registered crash *and* restart.
    ``networks``: network name -> hosts on it (for link/partition ops).
    """
    rng = derive_rng(seed, "chaos.schedule")
    networks = networks or {}
    schedule = ChaosSchedule(seed=seed)
    kinds: List[str] = []
    if restartable:
        kinds.append("crash_restart")
    for name, hosts in sorted(networks.items()):
        if len(hosts) >= 2:
            kinds.extend(["link_flap", "partition_heal", "drop_next"])
            break
    if not kinds:
        return schedule
    for _ in range(faults):
        kind = rng.choice(kinds)
        start = rng.uniform(0.05, horizon * 0.5)
        heal = rng.uniform(start + 0.05, horizon * 0.9)
        if kind == "crash_restart":
            target = rng.choice(sorted(restartable))
            schedule.crash(start, target)
            schedule.restart(heal, target)
        else:
            net_name = rng.choice(sorted(
                n for n, hosts in networks.items() if len(hosts) >= 2))
            hosts = sorted(networks[net_name])
            if kind == "link_flap":
                a, b = rng.sample(hosts, 2)
                schedule.add(start, "link_down", net_name, a=a, b=b)
                schedule.add(heal, "link_up", net_name, a=a, b=b)
            elif kind == "partition_heal":
                cut = rng.randint(1, len(hosts) - 1)
                shuffled = hosts[:]
                rng.shuffle(shuffled)
                schedule.add(start, "partition", net_name,
                             groups=[shuffled[:cut], shuffled[cut:]])
                schedule.add(heal, "heal_partition", net_name)
            else:
                schedule.add(start, "drop_next", net_name,
                             count=rng.randint(1, 3))
    return schedule
