"""Integration tests for the recursive naming service: bootstrap,
TAdds, caching, and removal of the Name Server (paper Secs. 3.2–3.4)."""

import pytest

from deployments import echo_server, single_net, two_nets
from repro import NAME_SERVER_UADD
from repro.errors import NameServerUnreachable, NoSuchAddress


@pytest.fixture
def bed():
    return single_net()


# -- bootstrap and TAdds ------------------------------------------------------

def test_module_starts_with_self_assigned_tadd(bed):
    commod = bed.module("late.registrar", "sun1", register=False)
    assert commod.address.temporary


def test_registration_switches_identity_to_uadd(bed):
    commod = bed.module("worker", "sun1", register=False)
    tadd = commod.address
    uadd = commod.ali.register("worker")
    assert commod.address == uadd
    assert not uadd.temporary
    assert commod.nucleus.is_self(tadd)  # old identity still recognized


def test_ns_assigns_local_alias_for_tadd_sources(bed):
    """Sec. 3.4: the receiver assigns its own TAdd to an inbound
    connection from a TAdd source."""
    ns_nucleus = bed.name_server_instance.nucleus
    before = ns_nucleus.counters["tadds_assigned_for_inbound"]
    bed.module("newcomer", "sun1")
    assert ns_nucleus.counters["tadds_assigned_for_inbound"] == before + 1


def test_tadds_purged_within_two_ns_communications(bed):
    """Sec. 3.4: "TAdds for any given module will be purged from all
    layers within the first two communications with the Name Server"."""
    ns_nucleus = bed.name_server_instance.nucleus
    commod = bed.module("worker", "sun1", register=False)
    # Communication 1: registration (module is still a TAdd source).
    commod.ali.register("worker")
    # Communication 2: any naming call now carries the real UAdd.
    commod.ali.ping_name_server()
    assert ns_nucleus.lcm.temporary_route_keys() == 0
    assert ns_nucleus.counters["tadds_purged"] >= 1
    assert ns_nucleus.addr_cache.temporary_entries() == 0


def test_purge_rekeys_reply_route(bed):
    """After the purge the Name Server reaches the module by its real
    UAdd over the existing circuit."""
    commod = bed.module("worker", "sun1")
    commod.ali.ping_name_server()
    ns_lcm = bed.name_server_instance.nucleus.lcm
    assert commod.ali.uadd in ns_lcm._routes


# -- two-level resolution and caching -------------------------------------------

def test_open_protocol_fills_address_cache(bed):
    """Sec. 3.3: UAdd→physical mappings are cached from information
    exchanged during the channel open protocol."""
    echo_server(bed, "echo.server", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("echo.server")
    client.ali.call(uadd, "echo", {"n": 1, "text": "x"})
    entry = client.nucleus.addr_cache.lookup(uadd)
    assert entry is not None
    assert entry.mtype_name == "Sun-3"
    assert "sun1" in entry.blob


def test_name_server_removable_after_warmup(bed):
    """Sec. 3.3: "once all necessary addresses have been resolved ...
    the Name Server can be removed with no consequence, unless the
    system is reconfigured"."""
    echo_server(bed, "echo.server", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("echo.server")
    client.ali.call(uadd, "echo", {"n": 1, "text": "warm"})

    bed.name_server_instance.kill()
    bed.settle()

    # Existing circuit: works.
    reply = client.ali.call(uadd, "echo", {"n": 2, "text": "no-ns"})
    assert reply.values["text"] == "NO-NS"
    # Even a *reopen* works from the cache alone.
    client.nucleus.lcm._drop_route(uadd)
    reply = client.ali.call(uadd, "echo", {"n": 3, "text": "reopen"})
    assert reply.values["text"] == "REOPEN"


def test_reconfiguration_after_ns_removal_fails(bed):
    """...but reconfiguration *does* need the Name Server ("unless the
    system is reconfigured")."""
    echo_server(bed, "echo.server", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("echo.server")
    client.ali.call(uadd, "echo", {"n": 1, "text": "warm"})
    bed.name_server_instance.kill()
    bed.settle()
    # A *new* resolution cannot be satisfied.
    with pytest.raises(NameServerUnreachable):
        client.ali.locate("anything.else")


def test_resolve_uadd_of_unknown_address(bed):
    client = bed.module("client", "vax1")
    from repro.ntcs.address import make_uadd
    with pytest.raises(NoSuchAddress):
        client.nsp.resolve_uadd(make_uadd(4242))


def test_attribute_based_location(bed):
    """The Sec. 7 attribute-value naming scheme."""
    bed.module("idx.1", "sun1", attrs={"kind": "index", "shard": "1"})
    bed.module("idx.2", "vax1", attrs={"kind": "index", "shard": "2"})
    bed.module("search.1", "sun1", attrs={"kind": "search"})
    client = bed.module("client", "vax1")
    records = client.ali.locate_by_attrs({"kind": "index"})
    assert {r.name for r in records} == {"idx.1", "idx.2"}
    records = client.ali.locate_by_attrs({"kind": "index", "shard": "2"})
    assert [r.name for r in records] == ["idx.2"]


def test_deregistered_module_not_resolvable(bed):
    """Deregistration is visible immediately to fresh resolvers; a
    module holding a cached resolution sees it at its next Name-Server
    contact, when the reply's newer database generation flushes the
    stale entry (PROTOCOL.md §9: caches may lie, briefly)."""
    worker = bed.module("worker", "sun1")
    client = bed.module("client", "vax1")
    stale = client.ali.locate("worker")
    worker.ali.deregister()
    from repro.errors import NoSuchName
    fresh = bed.module("fresh", "vax1")
    with pytest.raises(NoSuchName):
        fresh.ali.locate("worker")
    # The cached client still serves the optimistic entry...
    assert client.ali.locate("worker") == stale
    # ...until any Name-Server reply carries the post-write generation.
    client.nucleus.nsp.resolve_uadd(stale)
    with pytest.raises(NoSuchName):
        client.ali.locate("worker")


def test_graceful_kill_deregisters(bed):
    worker = bed.module("worker", "sun1")
    worker.process.kill()
    bed.settle()
    db = bed.name_server_instance.db
    assert db.resolve_uadd(worker.ali.uadd).alive is False


def test_crash_does_not_deregister(bed):
    """An abrupt machine crash cannot send the farewell datagram; the
    naming service still believes the module is alive (until
    supersession)."""
    worker = bed.module("worker", "sun1")
    bed.machines["sun1"].crash()
    bed.settle()
    db = bed.name_server_instance.db
    assert db.resolve_uadd(worker.ali.uadd).alive is True


# -- recursion across networks -----------------------------------------------

def test_registration_across_gateway():
    """The NSP-layers "talk across multiple networks in the identical
    manner as application modules do" (Sec. 3.1): a module on the ring
    registers with the Name Server on the ethernet, through the prime
    gateway, while still a TAdd source."""
    bed = two_nets()
    commod = bed.module("ring.worker", "apollo1")
    assert not commod.address.temporary
    assert commod.ali.ping_name_server()
