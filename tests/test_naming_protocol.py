"""Unit tests for the naming-service wire encodings."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ProtocolError
from repro.naming import protocol as p
from repro.naming.protocol import NameRecord
from repro.ntcs.address import make_uadd


def test_attrs_round_trip():
    attrs = {"kind": "gateway", "networks": "ether0,ring0", "x": "a=b;c"}
    assert p.decode_attrs(p.encode_attrs(attrs)) == attrs


def test_attrs_empty():
    assert p.encode_attrs({}) == ""
    assert p.decode_attrs("") == {}


def test_attrs_escaping_of_every_delimiter():
    attrs = {"k;=%,|": "v\n;=%"}
    assert p.decode_attrs(p.encode_attrs(attrs)) == attrs


def test_attrs_malformed_rejected():
    with pytest.raises(ProtocolError):
        p.decode_attrs("novalue")


def test_addresses_round_trip():
    addresses = [("ether0", "tcp:ether0:vax1:5000"),
                 ("ring0", "mbx:ring0://apollo2/mbx/gw")]
    assert p.decode_addresses(p.encode_addresses(addresses)) == addresses


def test_addresses_empty():
    assert p.decode_addresses("") == []


def test_addresses_malformed_rejected():
    with pytest.raises(ProtocolError):
        p.decode_addresses("no-pipe-here")


def test_record_round_trip():
    record = NameRecord(
        name="index.server",
        uadd=make_uadd(7),
        mtype_name="Sun-3",
        attrs={"kind": "index", "shard": "3"},
        addresses=[("ether0", "tcp:ether0:sun1:40001")],
        alive=True,
        registered_at=12.5,
    )
    back = NameRecord.decode(record.encode())
    assert back == record


def test_records_list_round_trip():
    records = [
        NameRecord(name=f"m{i}", uadd=make_uadd(i + 1), mtype_name="VAX",
                   addresses=[("ether0", f"tcp:ether0:vax1:{5000 + i}")])
        for i in range(4)
    ]
    assert p.decode_records(p.encode_records(records)) == records
    assert p.decode_records(p.encode_records([])) == []


def test_record_malformed_rejected():
    with pytest.raises(ProtocolError):
        NameRecord.decode("only\ntwo")


def test_record_helpers():
    record = NameRecord(
        name="gw", uadd=make_uadd(2), mtype_name="Apollo",
        attrs={"kind": "gateway"},
        addresses=[("ether0", "blob-a"), ("ring0", "blob-b")],
    )
    assert record.networks() == ["ether0", "ring0"]
    assert record.blob_on("ring0") == "blob-b"
    assert record.blob_on("nowhere") is None
    assert record.is_gateway


def test_register_payload_round_trip():
    attrs = {"kind": "search"}
    addresses = [("ether0", "tcp:ether0:sun1:40002")]
    payload = p.encode_register_payload(attrs, addresses)
    assert p.decode_register_payload(payload) == (attrs, addresses)
    assert p.decode_register_payload(
        p.encode_register_payload({}, [])) == ({}, [])


def test_register_payload_malformed():
    with pytest.raises(ProtocolError):
        p.decode_register_payload(b"no separator")


_name_text = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), min_size=1,
    max_size=30,
)


@settings(max_examples=150, deadline=None)
@given(
    name=_name_text,
    uadd=st.integers(1, 2 ** 48),
    attrs=st.dictionaries(_name_text, _name_text, max_size=5),
    nets=st.lists(st.tuples(_name_text, _name_text), max_size=4),
    alive=st.booleans(),
)
def test_property_record_round_trip(name, uadd, attrs, nets, alive):
    record = NameRecord(name=name, uadd=make_uadd(uadd), mtype_name="VAX",
                        attrs=attrs, addresses=nets, alive=alive)
    assert NameRecord.decode(record.encode()) == record
