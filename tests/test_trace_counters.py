"""Unit tests for the debugging utilities: LayerTracer (Sec. 6.2) and
CounterSet."""

from repro.util import CounterSet, LayerTracer, NullTracer
from repro.util.idgen import SequenceGenerator


# -- SequenceGenerator --------------------------------------------------------

def test_sequence_generator():
    gen = SequenceGenerator()
    assert gen.last == 0
    assert [gen.next() for _ in range(3)] == [1, 2, 3]
    assert gen.last == 3
    gen10 = SequenceGenerator(10)
    assert gen10.next() == 10


# -- CounterSet ------------------------------------------------------------

def test_counterset_basics():
    counters = CounterSet()
    assert counters["missing"] == 0
    counters.incr("a")
    counters.incr("a", 4)
    counters.incr("b")
    assert counters["a"] == 5
    assert "a" in counters and "missing" not in counters
    assert dict(counters) == {"a": 5, "b": 1}
    assert counters.snapshot() == {"a": 5, "b": 1}


def test_counterset_reset():
    counters = CounterSet()
    counters.incr("a")
    counters.incr("b")
    counters.reset("a")
    assert counters["a"] == 0 and counters["b"] == 1
    counters.reset()
    assert counters.snapshot() == {}


def test_counterset_repr_is_sorted():
    counters = CounterSet()
    counters.incr("zeta")
    counters.incr("alpha")
    assert repr(counters) == "CounterSet(alpha=1, zeta=1)"


# -- LayerTracer ------------------------------------------------------------

def _record_some(tracer):
    tracer.record("mod", "ALI", "send", "enter", caller="application",
                  reason="echo", depth=1)
    tracer.record("mod", "LCM", "send", "enter", caller="ALI",
                  reason="echo", depth=2)
    tracer.record("mod", "LCM", "send", "exit", caller="ALI",
                  reason="echo", depth=2)
    tracer.record("mod", "ALI", "send", "exit", caller="application",
                  reason="echo", depth=1)


def test_tracer_records_and_sequences():
    clock_value = [0.5]
    tracer = LayerTracer(clock=lambda: clock_value[0])
    _record_some(tracer)
    assert tracer.layer_sequence() == ["ALI", "LCM"]
    assert tracer.layer_sequence("exit") == ["LCM", "ALI"]
    assert tracer.max_depth() == 2
    assert all(r.time == 0.5 for r in tracer.records)
    tracer.clear()
    assert tracer.records == []
    assert tracer.max_depth() == 0


def test_tracer_layer_filter():
    tracer = LayerTracer(layers={"LCM"})
    _record_some(tracer)
    assert {r.layer for r in tracer.records} == {"LCM"}


def test_tracer_operation_filter():
    tracer = LayerTracer(operations={"open"})
    _record_some(tracer)
    assert tracer.records == []
    tracer.record("mod", "ND", "open", "enter")
    assert len(tracer.records) == 1


def test_tracer_format_is_indented_and_readable():
    tracer = LayerTracer()
    _record_some(tracer)
    text = tracer.format()
    lines = text.splitlines()
    assert len(lines) == 4
    assert "-> mod:ALI.send" in lines[0]
    assert "caller=application" in lines[0]
    assert "<- mod:LCM.send" in lines[2]
    # Depth-2 lines are indented deeper than depth-1 lines.
    assert lines[1].index("->") > lines[0].index("->")


def test_null_tracer_is_inert():
    tracer = NullTracer()
    tracer.record("mod", "ALI", "send", "enter")
    assert tracer.records == []
    assert tracer.layer_sequence() == []
    assert tracer.max_depth() == 0
    assert tracer.format() == ""
    assert not tracer.enabled
    tracer.clear()
