"""Unit tests for the realtime kernel (the real-socket substrate)."""

import socket

import pytest

from repro.errors import SimulationError
from repro.realnet.kernel import RealtimeKernel


@pytest.fixture
def kernel():
    kernel = RealtimeKernel()
    yield kernel
    kernel.close()


def test_clock_starts_near_zero(kernel):
    assert 0.0 <= kernel.now < 1.0


def test_timers_fire_in_order(kernel):
    fired = []
    kernel.schedule(0.02, lambda: fired.append("b"))
    kernel.schedule(0.01, lambda: fired.append("a"))
    kernel.wait(0.05)
    assert fired == ["a", "b"]


def test_timer_cancel(kernel):
    fired = []
    timer = kernel.schedule(0.01, lambda: fired.append(1))
    timer.cancel()
    kernel.wait(0.03)
    assert fired == []
    assert kernel.pending() == 0


def test_negative_delay_rejected(kernel):
    with pytest.raises(SimulationError):
        kernel.schedule(-0.1, lambda: None)


def test_pump_until_predicate(kernel):
    flag = []
    kernel.schedule(0.01, lambda: flag.append(1))
    assert kernel.pump_until(lambda: bool(flag), timeout=1.0) is True


def test_pump_until_timeout(kernel):
    t0 = kernel.now
    assert kernel.pump_until(lambda: False, timeout=0.05) is False
    assert kernel.now - t0 >= 0.04


def test_pump_depth_tracking(kernel):
    depths = []

    def nested():
        depths.append(kernel.pump_depth)
        kernel.pump_until(lambda: True)

    kernel.schedule(0.005, nested)
    kernel.pump_until(lambda: bool(depths), timeout=1.0)
    assert depths == [1]
    assert kernel.max_pump_depth_seen >= 2
    assert kernel.pump_depth == 0


def test_socket_reader_callback(kernel):
    a, b = socket.socketpair()
    a.setblocking(False)
    b.setblocking(False)
    got = []

    def on_readable():
        got.append(b.recv(100))

    kernel.register_reader(b, on_readable)
    a.send(b"ping")
    assert kernel.pump_until(lambda: bool(got), timeout=1.0)
    assert got == [b"ping"]
    kernel.unregister(b)
    a.close()
    b.close()


def test_writer_registration_toggles(kernel):
    a, b = socket.socketpair()
    a.setblocking(False)
    writable = []
    kernel.register_writer(a, lambda: writable.append(1))
    assert kernel.pump_until(lambda: bool(writable), timeout=1.0)
    kernel.unregister_writer(a)
    # Unregistered: further pumps do not add events.
    count = len(writable)
    kernel.wait(0.02)
    assert len(writable) == count
    a.close()
    b.close()


def test_unregister_unknown_socket_is_noop(kernel):
    a, b = socket.socketpair()
    kernel.unregister(a)           # never registered: fine
    kernel.unregister_writer(a)    # fine too
    a.close()
    b.close()
