"""Tests for the bandwidth (serialization delay) model and its
interaction with the conversion modes."""

import pytest

from deployments import register_app_types
from repro import Field, StructDef, SUN3, Testbed, VAX
from repro.netsim import Network, Scheduler


def test_bandwidth_adds_serialization_delay():
    sched = Scheduler()
    slow = Network(sched, "slow", latency=0.001, bandwidth=1000.0)
    a = slow.attach("a")
    b = slow.attach("b")
    arrivals = []
    b.bind_protocol("x", lambda d: arrivals.append(sched.now))
    a.send("b", "x", ("small",), size=100)
    a.send("b", "x", ("big",), size=1000)
    sched.run_until_idle()
    # 0.001 + 100/1000 = 0.101; 0.001 + 1000/1000 = 1.001 (plus ordering)
    assert arrivals[0] == pytest.approx(0.101)
    assert arrivals[1] == pytest.approx(1.001)


def test_no_bandwidth_means_latency_only():
    sched = Scheduler()
    fast = Network(sched, "fast", latency=0.002)
    a = fast.attach("a")
    b = fast.attach("b")
    arrivals = []
    b.bind_protocol("x", lambda d: arrivals.append(sched.now))
    a.send("b", "x", ("huge",), size=10 ** 9)
    sched.run_until_idle()
    assert arrivals[0] == pytest.approx(0.002)


def test_bytes_accounting():
    sched = Scheduler()
    net = Network(sched, "n", latency=0.001)
    a = net.attach("a")
    net.attach("b")
    a.send("b", "x", (), size=500)
    a.send("b", "x", ())  # default frame size
    assert net.bytes_sent == 500 + Network.DEFAULT_FRAME_SIZE


def test_packed_mode_costs_wire_time_on_slow_networks():
    """With a bandwidth model, the 2.4–2.7x character-format expansion
    (Sec. 5.2) becomes measurable latency — the reason the paper avoids
    needless conversions and uses shift mode for headers."""
    def round_trip_time(src_machine, dst_machine):
        bed = Testbed()
        bed.network("ether0", protocol="tcp", latency=0.001,
                    bandwidth=100_000.0)
        bed.machine("vax1", VAX, networks=["ether0"])
        bed.machine("vax2", VAX, networks=["ether0"])
        bed.machine("sun1", SUN3, networks=["ether0"])
        bed.name_server("vax1")
        payload = StructDef("payload", 100, [
            Field("seq", "u32"),
        ] + [Field(f"w{i}", "u32") for i in range(500)])  # ~2 KB struct
        bed.registry.register(payload)
        # Large values: ten decimal digits each, so the character
        # format genuinely expands (small ints would actually shrink).
        values = {"seq": 1}
        values.update({f"w{i}": 4_000_000_000 - i for i in range(500)})

        server = bed.module("dest", dst_machine)
        server.ali.set_request_handler(
            lambda req: server.ali.reply(req, "payload", values))
        client = bed.module("client", src_machine)
        uadd = client.ali.locate("dest")
        client.ali.call(uadd, "payload", values)  # warm up the circuit
        t0 = bed.now
        client.ali.call(uadd, "payload", values)
        return bed.now - t0

    image_time = round_trip_time("vax1", "vax2")   # VAX->VAX: image
    packed_time = round_trip_time("vax1", "sun1")  # VAX->Sun: packed
    assert packed_time > image_time * 1.5
