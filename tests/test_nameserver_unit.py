"""Focused tests for the Name Server module: protocol edge cases,
error replies, counters, self-registration."""

import pytest

from deployments import single_net
from repro import NAME_SERVER_UADD
from repro.ntcs.message import FLAG_INTERNAL


@pytest.fixture
def bed():
    return single_net()


def test_self_registration_matches_convention(bed):
    server = bed.name_server_instance
    assert server.uadd == NAME_SERVER_UADD
    record = server.db.resolve_name("name.server")
    assert record.attrs == {"kind": "nameserver"}
    assert record.blob_on("ether0") == server.listen_blob


def test_ns_counts_requests_by_type(bed):
    client = bed.module("client", "vax1")  # one ns_register
    client.ali.ping_name_server()          # one ns_ping
    server = bed.name_server_instance
    assert server.counters["ns_register"] == 1
    assert server.counters["ns_ping"] == 1


def test_unknown_request_type_counted_and_ignored(bed):
    client = bed.module("client", "vax1")
    # "echo" is an application type the NS has no handler for.
    client.nucleus.lcm.send(NAME_SERVER_UADD, "echo",
                            {"n": 1, "text": "confused"})
    bed.settle()
    assert bed.name_server_instance.counters["unknown_requests"] == 1


def test_resolve_name_not_found_reply(bed):
    client = bed.module("client", "vax1")
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_resolve_name",
                                    {"name": "ghost"}, flags=FLAG_INTERNAL)
    assert reply.type_name == "ns_resolve_name_ack"
    assert reply.values["found"] == 0


def test_resolve_uadd_not_found_reply(bed):
    client = bed.module("client", "vax1")
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_resolve_uadd",
                                    {"uadd": 424242}, flags=FLAG_INTERNAL)
    assert reply.type_name == "ns_record_ack"
    assert reply.values["found"] == 0
    assert reply.values["record"] == b""


def test_forward_unknown_uadd_is_none_status(bed):
    from repro.naming import protocol as p
    client = bed.module("client", "vax1")
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_forward",
                                    {"uadd": 424242}, flags=FLAG_INTERNAL)
    assert reply.values["status"] == p.FWD_NONE


def test_deregister_unknown_is_not_ok(bed):
    client = bed.module("client", "vax1")
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_deregister",
                                    {"uadd": 424242}, flags=FLAG_INTERNAL)
    assert reply.values["ok"] == 0


def test_malformed_register_payload_yields_error_ack(bed):
    client = bed.module("client", "vax1")
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_register", {
        "name": "broken", "mtype": "VAX",
        "payload": b"no separator at all",
    }, flags=FLAG_INTERNAL)
    assert reply.type_name == "ns_ack"
    assert reply.values["ok"] == 0
    # And the error landed in the NS's running error table (Sec. 6.3).
    assert bed.name_server_instance.nucleus.error_log


def test_list_gateways_empty(bed):
    client = bed.module("client", "vax1")
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_list_gw", {},
                                    flags=FLAG_INTERNAL)
    assert reply.values["count"] == 0
    assert reply.values["records"] == b""


def test_query_attrs_roundtrip_over_wire(bed):
    from repro.naming import protocol as p
    bed.module("tagged", "sun1", attrs={"kind": "demo", "tier": "2"})
    client = bed.module("client", "vax1")
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_query_attrs", {
        "query": p.encode_attrs({"kind": "demo"}).encode("ascii"),
    }, flags=FLAG_INTERNAL)
    records = p.decode_records(reply.values["records"])
    assert [r.name for r in records] == ["tagged"]
    assert records[0].attrs["tier"] == "2"


def test_ns_survives_many_clients(bed):
    """Stress-ish: 30 modules registering and resolving concurrently-ish."""
    modules = [bed.module(f"m{i}", "sun1" if i % 2 else "vax1")
               for i in range(30)]
    client = bed.module("client", "vax1")
    for i in range(30):
        assert client.ali.locate(f"m{i}") == modules[i].ali.uadd
    server = bed.name_server_instance
    assert server.counters["ns_register"] == 31  # 30 + the client
    assert len(server.db) == 32  # + the NS itself
