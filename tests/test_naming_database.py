"""Unit tests for the name/address database (Secs. 3.2, 3.5)."""

import pytest

from repro.errors import (
    ModuleStillAlive,
    NoForwardingAddress,
    NoSuchAddress,
    NoSuchName,
)
from repro.naming.database import NameDatabase


def _register(db, name, net="ether0", blob="tcp:ether0:m:1", **attrs):
    return db.register(name, attrs, [(net, blob)], "VAX")


def test_register_generates_monotonic_uadds():
    db = NameDatabase()
    r1 = _register(db, "a")
    r2 = _register(db, "b")
    assert r1.uadd.value == 1
    assert r2.uadd.value == 2
    assert not r1.uadd.temporary


def test_server_id_prepended():
    db = NameDatabase(server_id=3)
    record = _register(db, "a")
    assert record.uadd.value >> 48 == 3


def test_two_level_resolution():
    db = NameDatabase()
    record = _register(db, "index.server", blob="tcp:ether0:sun1:4000")
    # name -> UAdd
    assert db.resolve_name("index.server").uadd == record.uadd
    # UAdd -> physical location
    located = db.resolve_uadd(record.uadd)
    assert located.blob_on("ether0") == "tcp:ether0:sun1:4000"


def test_resolution_errors():
    db = NameDatabase()
    with pytest.raises(NoSuchName):
        db.resolve_name("ghost")
    record = _register(db, "a")
    from repro.ntcs.address import make_uadd
    with pytest.raises(NoSuchAddress):
        db.resolve_uadd(make_uadd(999))


def test_resolve_name_returns_newest_alive():
    db = NameDatabase()
    old = _register(db, "server")
    new = _register(db, "server")
    assert db.resolve_name("server").uadd == new.uadd


def test_deregister_tombstones():
    db = NameDatabase()
    record = _register(db, "a")
    assert db.deregister(record.uadd) is True
    assert db.deregister(record.uadd) is False  # idempotent
    # The tombstone is still resolvable by UAdd (needed for forwarding).
    assert db.resolve_uadd(record.uadd).alive is False
    with pytest.raises(NoSuchName):
        db.resolve_name("a")


def test_forwarding_after_deregistration():
    db = NameDatabase()
    old = _register(db, "server")
    db.deregister(old.uadd)
    replacement = _register(db, "server")
    assert db.lookup_forwarding(old.uadd).uadd == replacement.uadd


def test_forwarding_by_supersession_without_deregistration():
    """A crashed module cannot deregister; a newer registration with
    the same name supersedes it."""
    db = NameDatabase()
    old = _register(db, "server")
    replacement = _register(db, "server")
    assert db.lookup_forwarding(old.uadd).uadd == replacement.uadd


def test_forwarding_module_still_alive():
    db = NameDatabase()
    record = _register(db, "server")
    with pytest.raises(ModuleStillAlive):
        db.lookup_forwarding(record.uadd)


def test_forwarding_no_replacement():
    db = NameDatabase()
    record = _register(db, "server")
    db.deregister(record.uadd)
    with pytest.raises(NoForwardingAddress):
        db.lookup_forwarding(record.uadd)


def test_forwarding_chain_via_repeated_relocation():
    db = NameDatabase()
    first = _register(db, "server")
    db.deregister(first.uadd)
    second = _register(db, "server")
    db.deregister(second.uadd)
    third = _register(db, "server")
    # Both stale UAdds forward to the newest.
    assert db.lookup_forwarding(first.uadd).uadd == third.uadd
    assert db.lookup_forwarding(second.uadd).uadd == third.uadd


def test_list_gateways():
    db = NameDatabase()
    gw = db.register("gw.a", {"kind": "gateway"}, [("ether0", "b1")], "Apollo")
    _register(db, "app")
    dead_gw = db.register("gw.b", {"kind": "gateway"}, [("ring0", "b2")], "Apollo")
    db.deregister(dead_gw.uadd)
    gateways = db.list_gateways()
    assert [g.uadd for g in gateways] == [gw.uadd]


def test_query_attrs_exact_match():
    db = NameDatabase()
    a = db.register("a", {"kind": "index", "shard": "1"}, [], "VAX")
    b = db.register("b", {"kind": "index", "shard": "2"}, [], "VAX")
    db.register("c", {"kind": "search"}, [], "VAX")
    assert {r.uadd for r in db.query_attrs({"kind": "index"})} == {a.uadd, b.uadd}
    assert [r.uadd for r in db.query_attrs({"kind": "index", "shard": "2"})] == [b.uadd]
    assert db.query_attrs({"kind": "nothing"}) == []


def test_len_counts_alive_only():
    db = NameDatabase()
    r1 = _register(db, "a")
    _register(db, "b")
    db.deregister(r1.uadd)
    assert len(db) == 1
