"""Property-based whole-system test: a hypothesis state machine drives
registrations, sends, calls, relocations and kills against a live
deployment, checking global invariants after every step.

Invariants checked:

* per-sender sequence numbers arrive at each receiver without
  duplicates and in order (circuits are FIFO; drops only shorten),
* a registered, alive module is always locatable;
* a located UAdd keeps working across any number of relocations;
* the Nucleus recursion depth always returns to zero between steps.
"""

from collections import defaultdict

import pytest
from hypothesis import HealthCheck, settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
import hypothesis.strategies as st

from deployments import register_app_types
from repro import SUN3, Testbed, VAX
from repro.drts.proctl import ProcessController
from repro.errors import NtcsError

MACHINES = ["vax1", "sun1", "sun2"]


class NtcsMachine(RuleBasedStateMachine):
    @initialize()
    def build(self):
        self.bed = Testbed()
        self.bed.network("ether0", protocol="tcp")
        self.bed.machine("vax1", VAX, networks=["ether0"])
        self.bed.machine("sun1", SUN3, networks=["ether0"])
        self.bed.machine("sun2", SUN3, networks=["ether0"])
        self.bed.name_server("vax1")
        register_app_types(self.bed)
        self.controller = ProcessController(self.bed)
        self.received = defaultdict(list)   # receiver name -> [n]
        self.next_seq = defaultdict(int)    # (sender, receiver) -> n
        self.alive = {}                     # name -> ComMod
        self.dead = set()
        self.located = {}                   # name -> UAdd (from any client)
        self.counter = 0
        self.client = self.bed.module("prop.client", "vax1")

    # -- helpers ------------------------------------------------------------

    def _install(self, name, commod):
        def handle(message):
            self.received[name].append(message.values["n"])

        commod.ali.set_request_handler(handle)

    # -- rules --------------------------------------------------------------

    @rule(machine=st.sampled_from(MACHINES))
    def register_module(self, machine):
        self.counter += 1
        name = f"mod{self.counter}"
        commod = self.bed.module(name, machine)
        self._install(name, commod)
        self.alive[name] = commod

    @precondition(lambda self: self.alive)
    @rule(data=st.data())
    def locate(self, data):
        name = data.draw(st.sampled_from(sorted(self.alive)))
        uadd = self.client.ali.locate(name)
        self.located[name] = uadd

    @precondition(lambda self: self.located)
    @rule(data=st.data(), burst=st.integers(1, 5))
    def send_burst(self, data, burst):
        name = data.draw(st.sampled_from(sorted(self.located)))
        if name not in self.alive:
            return
        uadd = self.located[name]
        for _ in range(burst):
            n = self.next_seq[name]
            try:
                self.client.ali.send(uadd, "echo", {"n": n, "text": ""})
            except NtcsError:
                return  # transient failure: nothing was handed to the wire
            self.next_seq[name] = n + 1
        self.bed.settle()

    @precondition(lambda self: self.located)
    @rule(data=st.data(), target_machine=st.sampled_from(MACHINES))
    def relocate(self, data, target_machine):
        candidates = sorted(set(self.located) & set(self.alive))
        if not candidates:
            return
        name = data.draw(st.sampled_from(candidates))
        new = self.controller.relocate(
            name, target_machine,
            rebuild=lambda old, new: self._install(name, new),
        )
        self.alive[name] = new
        self.bed.settle()

    @precondition(lambda self: len(self.alive) > 1)
    @rule(data=st.data())
    def kill_module(self, data):
        name = data.draw(st.sampled_from(sorted(self.alive)))
        self.alive.pop(name).process.kill()
        self.dead.add(name)
        self.bed.settle()

    # -- invariants -----------------------------------------------------------

    @invariant()
    def receivers_see_ordered_unique_sequences(self):
        if not hasattr(self, "received"):
            return
        for name, values in self.received.items():
            assert values == sorted(set(values)), (
                f"{name} saw duplicates or reordering: {values}"
            )

    @invariant()
    def alive_modules_are_locatable(self):
        if not hasattr(self, "alive"):
            return
        db = self.bed.name_server_instance.db
        for name in self.alive:
            record = db.resolve_name(name)
            assert record.alive

    @invariant()
    def recursion_always_unwinds(self):
        if not hasattr(self, "client"):
            return
        assert self.client.nucleus.depth == 0


NtcsMachine.TestCase.settings = settings(
    max_examples=20,
    stateful_step_count=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TestNtcsStateMachine = NtcsMachine.TestCase
