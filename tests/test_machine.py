"""Unit tests for machine types, clocks, machines and processes."""

import pytest

from repro.errors import SimulationError
from repro.machine import (
    APOLLO,
    IBM_PC,
    LocalClock,
    Machine,
    MachineType,
    SimProcess,
    SUN3,
    VAX,
    list_machine_types,
)
from repro.machine.arch import machine_type
from repro.netsim import Network, Scheduler


# -- architectures ----------------------------------------------------------

def test_builtin_machine_types_have_expected_byte_orders():
    assert VAX.byte_order == "little"
    assert SUN3.byte_order == "big"
    assert APOLLO.byte_order == "big"
    assert IBM_PC.byte_order == "little"


def test_image_compatibility_is_by_data_format_not_name():
    # Sun-3 and Apollo are both big-endian 68k-family: image-safe.
    assert SUN3.image_compatible(APOLLO)
    assert VAX.image_compatible(IBM_PC)
    assert not VAX.image_compatible(SUN3)
    assert VAX.image_compatible(VAX)


def test_struct_prefix_matches_byte_order():
    assert VAX.struct_prefix == "<"
    assert SUN3.struct_prefix == ">"


def test_invalid_byte_order_rejected():
    with pytest.raises(ValueError):
        MachineType(name="bogus", byte_order="middle")


def test_machine_type_lookup():
    assert machine_type("VAX") is VAX
    with pytest.raises(KeyError):
        machine_type("PDP-11")


def test_list_machine_types_is_stable():
    assert list_machine_types() == list_machine_types()
    assert VAX in list_machine_types()


# -- local clocks --------------------------------------------------------------

def test_clock_offset_and_drift(sched):
    clock = LocalClock(sched, offset=2.0, drift=0.01)
    assert clock.now() == pytest.approx(2.0)
    sched.schedule(100.0, lambda: None)
    sched.run_until_idle()
    assert clock.now() == pytest.approx(100.0 * 1.01 + 2.0)
    assert clock.error() == pytest.approx(3.0)


def test_perfect_clock_tracks_true_time(sched):
    clock = LocalClock(sched)
    sched.schedule(7.5, lambda: None)
    sched.run_until_idle()
    assert clock.now() == pytest.approx(7.5)
    assert clock.error() == pytest.approx(0.0)


# -- machines -----------------------------------------------------------------

def test_machine_attach_networks(sched):
    net_a = Network(sched, "a")
    net_b = Network(sched, "b")
    machine = Machine(sched, "gw1", APOLLO)
    machine.attach_network(net_a)
    machine.attach_network(net_b, host="gw1-b")
    assert sorted(machine.networks) == ["a", "b"]
    assert machine.interface("a").host == "gw1"
    assert machine.interface("b").host == "gw1-b"


def test_machine_double_attach_rejected(sched):
    net = Network(sched, "a")
    machine = Machine(sched, "m", VAX)
    machine.attach_network(net)
    with pytest.raises(SimulationError):
        machine.attach_network(net)


def test_interface_lookup_unknown_network(sched):
    machine = Machine(sched, "m", VAX)
    with pytest.raises(SimulationError):
        machine.interface("nope")


def test_ipcs_registry(sched):
    net = Network(sched, "a")
    machine = Machine(sched, "m", VAX)
    machine.attach_network(net)
    sentinel = object()
    machine.register_ipcs("a", "tcp", sentinel)
    assert machine.ipcs_for("a", "tcp") is sentinel
    with pytest.raises(SimulationError):
        machine.register_ipcs("a", "tcp", object())
    with pytest.raises(SimulationError):
        machine.ipcs_for("a", "mbx")


# -- processes ------------------------------------------------------------------

def test_process_lifecycle(sched):
    machine = Machine(sched, "m", VAX)
    proc = SimProcess(machine, "worker")
    assert proc.alive
    assert proc in machine.processes
    cleanup = []
    proc.at_kill(lambda: cleanup.append("a"))
    proc.at_kill(lambda: cleanup.append("b"))
    proc.kill()
    assert not proc.alive
    assert cleanup == ["b", "a"]  # newest-first teardown
    assert proc not in machine.processes


def test_process_kill_idempotent(sched):
    machine = Machine(sched, "m", VAX)
    proc = SimProcess(machine, "worker")
    count = []
    proc.at_kill(lambda: count.append(1))
    proc.kill()
    proc.kill()
    assert count == [1]


def test_pids_are_unique(sched):
    machine = Machine(sched, "m", VAX)
    pids = {SimProcess(machine, f"p{i}").pid for i in range(10)}
    assert len(pids) == 10


def test_machine_crash_kills_processes_and_interfaces(sched):
    net = Network(sched, "a")
    machine = Machine(sched, "m", VAX)
    iface = machine.attach_network(net)
    procs = [SimProcess(machine, f"p{i}") for i in range(3)]
    machine.crash()
    assert not machine.alive
    assert all(not p.alive for p in procs)
    assert iface.up is False
