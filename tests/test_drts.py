"""Integration tests for the DRTS services (paper Secs. 1, 1.3): the
network monitor, the precision time corrector, error logging, process
control."""

import pytest

from deployments import echo_server, single_net
from repro import SUN3, VAX
from repro.drts.errorlog import ErrorLogServer, enable_error_logging
from repro.drts.monitor import Monitor, enable_monitoring
from repro.drts.proctl import ProcessController
from repro.drts.timeservice import TimeServer, enable_time_correction
from repro.errors import SimulationError


# -- monitor --------------------------------------------------------------

def test_monitor_collects_send_and_recv_events():
    bed = single_net()
    monitor = Monitor(bed.module("mon", "sun1", register=False))
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    enable_monitoring(client)
    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 1, "text": "x"})
    bed.settle()
    events = monitor.events_for("client")
    sends = [e for e in events if e["event"] == "send"]
    recvs = [e for e in events if e["event"] == "recv"]
    assert any(e["msg_type"] == "echo" for e in sends)
    assert any(e["msg_type"] == "echo" for e in recvs)
    # Naming-service traffic is monitored too (the Sec. 6.1 scenario).
    assert any(e["msg_type"].startswith("ns_") for e in sends)
    assert monitor.count() == monitor.count("send") + monitor.count("recv")


def test_monitor_events_carry_timestamps():
    bed = single_net()
    monitor = Monitor(bed.module("mon", "sun1", register=False))
    sink = bed.module("sink", "sun1")
    client = bed.module("client", "vax1")
    enable_monitoring(client)
    uadd = client.ali.locate("sink")
    bed.run_for(5.0)
    client.ali.send(uadd, "echo", {"n": 1, "text": "x"})
    bed.settle()
    events = [e for e in monitor.events_for("client")
              if e["msg_type"] == "echo"]
    assert events
    assert all(e["t"] >= 5.0 for e in events)


def test_monitor_survives_monitor_death():
    """Monitoring is best-effort: a dead monitor drops data but never
    breaks the application send path."""
    bed = single_net()
    monitor = Monitor(bed.module("mon", "sun1", register=False))
    sink = bed.module("sink", "sun1")
    client = bed.module("client", "vax1")
    mon_client = enable_monitoring(client)
    uadd = client.ali.locate("sink")
    client.ali.send(uadd, "echo", {"n": 1, "text": "a"})
    monitor.commod.process.kill()
    bed.settle()
    client.ali.send(uadd, "echo", {"n": 2, "text": "b"})
    bed.settle()
    assert sink.nucleus.lcm.queued() == 2  # both application sends landed
    assert mon_client.dropped >= 1


# -- time service -----------------------------------------------------------

def test_time_correction_beats_raw_clock():
    """E12's core claim: corrected timestamps are far closer to true
    time than the drifting local clock."""
    bed = single_net()
    # Give the client machine a badly wrong clock; the time server's
    # (vax1) is the reference.
    bed.machines["sun1"].clock.offset = 7.5
    bed.machines["sun1"].clock.drift = 1e-4
    TimeServer(bed.module("time", "vax1", register=False))
    client = bed.module("client", "sun1")
    time_client = enable_time_correction(client)
    bed.run_for(10.0)
    corrected = time_client.corrected_now()
    raw = bed.machines["sun1"].clock.now()
    true = bed.scheduler.now
    assert abs(raw - true) > 1.0
    assert abs(corrected - true) < 0.05
    assert time_client.syncs >= 1


def test_time_sync_is_periodic_not_per_call():
    """Sec. 6.2: "time service data communication only occurs
    periodically"."""
    bed = single_net()
    server = TimeServer(bed.module("time", "vax1", register=False))
    client = bed.module("client", "sun1")
    time_client = enable_time_correction(client, refresh_interval=100.0)
    for _ in range(10):
        time_client.corrected_now()
    assert time_client.syncs == 1
    bed.run_for(101.0)
    time_client.corrected_now()
    assert time_client.syncs == 2
    assert server.requests_served == 2


def test_time_client_survives_server_death():
    bed = single_net()
    server = TimeServer(bed.module("time", "vax1", register=False))
    client = bed.module("client", "sun1")
    time_client = enable_time_correction(client, refresh_interval=1.0)
    time_client.corrected_now()
    server.commod.process.kill()
    bed.run_for(2.0)
    # Stale but serviceable: no exception, failure counted.
    time_client.corrected_now()
    assert time_client.sync_failures >= 1


# -- error logging -----------------------------------------------------------

def test_error_log_ships_to_central_table():
    bed = single_net()
    errlog = ErrorLogServer(bed.module("errlog", "sun1", register=False))
    client = bed.module("client", "vax1")
    enable_error_logging(client)
    client.nucleus.log_error("something regrettable")
    bed.settle()
    entries = errlog.entries_for("client")
    assert len(entries) == 1
    assert entries[0]["text"] == "something regrettable"
    # The local running table keeps it too.
    assert "something regrettable" in client.nucleus.error_log


def test_error_log_client_never_recurses():
    bed = single_net()
    client = bed.module("client", "vax1")
    shipper = enable_error_logging(client)  # no errlog server exists
    client.nucleus.log_error("shouting into the void")
    bed.settle()
    assert shipper.dropped == 1
    assert shipper.shipped == 0


# -- process control -------------------------------------------------------

def test_controller_spawn_and_kill():
    bed = single_net()
    controller = ProcessController(bed)
    commod = controller.spawn("worker", "sun1")
    assert commod.process.alive
    controller.kill("worker")
    assert not commod.process.alive
    with pytest.raises(SimulationError):
        controller.kill("nobody")


def test_controller_relocate_preserves_attrs():
    bed = single_net()
    bed.machine("sun2", SUN3, networks=["ether0"])
    bed.module("svc", "sun1", attrs={"kind": "index", "shard": "7"})
    controller = ProcessController(bed)
    new = controller.relocate("svc", "sun2")
    record = bed.name_server_instance.db.resolve_uadd(new.ali.uadd)
    assert record.attrs == {"kind": "index", "shard": "7"}
    assert new.nucleus.machine.name == "sun2"
    assert controller.relocations == 1


def test_controller_relocate_unknown_module():
    bed = single_net()
    controller = ProcessController(bed)
    with pytest.raises(SimulationError):
        controller.relocate("ghost", "sun1")
