"""Shared fixtures: schedulers, networks, machines, and IPCS instances."""

from __future__ import annotations

import pytest

from repro.ipcs import SimMbxIpcs, SimTcpIpcs
from repro.machine import APOLLO, Machine, SimProcess, SUN3, VAX
from repro.netsim import Network, Scheduler


@pytest.fixture
def sched():
    return Scheduler()


@pytest.fixture
def ether(sched):
    """One Ethernet-like network."""
    return Network(sched, "ether0", latency=0.001)


@pytest.fixture
def ring(sched):
    """One Apollo-ring-like network."""
    return Network(sched, "ring0", latency=0.0005)


@pytest.fixture
def vax1(sched, ether):
    machine = Machine(sched, "vax1", VAX)
    machine.attach_network(ether)
    SimTcpIpcs(machine, ether)
    return machine


@pytest.fixture
def sun1(sched, ether):
    machine = Machine(sched, "sun1", SUN3)
    machine.attach_network(ether)
    SimTcpIpcs(machine, ether)
    return machine


@pytest.fixture
def apollo1(sched, ring):
    machine = Machine(sched, "apollo1", APOLLO)
    machine.attach_network(ring)
    SimMbxIpcs(machine, ring)
    return machine


@pytest.fixture
def apollo2(sched, ring):
    machine = Machine(sched, "apollo2", APOLLO)
    machine.attach_network(ring)
    SimMbxIpcs(machine, ring)
    return machine


def make_process(machine, name):
    return SimProcess(machine, name)


@pytest.fixture
def proc_factory():
    return make_process
