"""Canned deployments shared by integration tests and benchmarks."""

from __future__ import annotations

from repro import APOLLO, Field, StructDef, SUN3, Testbed, VAX
from repro.naming.shards import deploy_sharded_naming
from repro.ntcs.nucleus import NucleusConfig

# Application message types used across the integration tests.
ECHO = StructDef("echo", 100, [Field("n", "u32"), Field("text", "char[32]")])
NUMBERS = StructDef("numbers", 101, [
    Field("a", "u32"), Field("b", "i32"), Field("big", "u64"),
])
BULK = StructDef("bulk", 102, [Field("seq", "u32"), Field("data", "bytes")])


def register_app_types(bed: Testbed) -> None:
    for sdef in (ECHO, NUMBERS, BULK):
        bed.registry.register(sdef)


def single_net(config: NucleusConfig = None) -> Testbed:
    """One Ethernet, a VAX and a Sun, Name Server on the VAX."""
    bed = Testbed(config=config)
    bed.network("ether0", protocol="tcp")
    bed.machine("vax1", VAX, networks=["ether0"])
    bed.machine("sun1", SUN3, networks=["ether0"])
    bed.name_server("vax1")
    register_app_types(bed)
    return bed


def two_nets(config: NucleusConfig = None) -> Testbed:
    """Ethernet (tcp) + Apollo ring (mbx) joined by one gateway; Name
    Server on the Ethernet side — the paper's Fig. 2-2 shape."""
    bed = Testbed(config=config)
    bed.network("ether0", protocol="tcp")
    bed.network("ring0", protocol="mbx", latency=0.0005)
    bed.machine("vax1", VAX, networks=["ether0"])
    bed.machine("sun1", SUN3, networks=["ether0"])
    bed.machine("gw1", APOLLO, networks=["ether0", "ring0"])
    bed.machine("apollo1", APOLLO, networks=["ring0"])
    bed.machine("apollo2", APOLLO, networks=["ring0"])
    bed.name_server("vax1")
    bed.gateway("gw1", prime_for=["ring0"])
    register_app_types(bed)
    return bed


def chain_nets(hops: int, config: NucleusConfig = None) -> Testbed:
    """A linear chain of ``hops + 1`` networks joined by ``hops``
    gateways: net0 -gw0- net1 -gw1- ... -gw(h-1)- net(h).  Name Server
    on net0.  Used by the E5/E6 internet experiments."""
    bed = Testbed(config=config)
    for i in range(hops + 1):
        bed.network(f"net{i}", protocol="tcp")
    bed.machine("m0", VAX, networks=["net0"])
    bed.name_server("m0")
    for i in range(hops):
        bed.machine(f"gwm{i}", SUN3, networks=[f"net{i}", f"net{i + 1}"])
        # Each network routes toward the Name Server through the
        # gateway one step closer to net0.
        bed.gateway(f"gwm{i}", prime_for=[f"net{i + 1}"])
    bed.machine("mEnd", VAX, networks=[f"net{hops}"])
    register_app_types(bed)
    return bed


def sharded_single_net(shards: int = 2, replicas: int = 2,
                       config: NucleusConfig = None):
    """One Ethernet carrying a ``shards`` × ``replicas`` naming fleet
    (machine ``ns<shard><replica>`` per server) plus two app machines;
    every module talks to naming through a ShardedNspLayer.  Returns
    ``(bed, {shard_id: [servers]})``."""
    bed = Testbed(config=config)
    bed.network("ether0", protocol="tcp")
    shard_machines = []
    for s in range(shards):
        row = []
        for r in range(replicas):
            name = f"ns{s}{r}"
            bed.machine(name, VAX if (s + r) % 2 == 0 else SUN3,
                        networks=["ether0"])
            row.append(name)
        shard_machines.append(row)
    bed.machine("app1", SUN3, networks=["ether0"])
    bed.machine("app2", VAX, networks=["ether0"])
    groups = deploy_sharded_naming(bed, shard_machines)
    register_app_types(bed)
    return bed, groups


def sharded_chain(hops: int = 2, shards: int = 2, replicas: int = 2,
                  config: NucleusConfig = None):
    """The :func:`chain_nets` internet shape with the naming fleet
    sharded across dedicated machines on net0: client machine ``m0`` on
    net0, ``hops`` gateways, far machine ``mEnd`` on the last network.
    Returns ``(bed, {shard_id: [servers]})``."""
    bed = Testbed(config=config)
    for i in range(hops + 1):
        bed.network(f"net{i}", protocol="tcp")
    shard_machines = []
    for s in range(shards):
        row = []
        for r in range(replicas):
            name = f"ns{s}{r}"
            bed.machine(name, VAX, networks=["net0"])
            row.append(name)
        shard_machines.append(row)
    bed.machine("m0", VAX, networks=["net0"])
    groups = deploy_sharded_naming(bed, shard_machines)
    for i in range(hops):
        bed.machine(f"gwm{i}", SUN3, networks=[f"net{i}", f"net{i + 1}"])
        bed.gateway(f"gwm{i}", prime_for=[f"net{i + 1}"])
    bed.machine("mEnd", VAX, networks=[f"net{hops}"])
    register_app_types(bed)
    return bed, groups


def echo_server(bed: Testbed, name: str, machine: str, **kwargs):
    """A module answering echo requests with the text upper-cased."""
    commod = bed.module(name, machine, **kwargs)

    def handle(request):
        if request.type_name == "echo" and request.reply_expected:
            commod.ali.reply(request, "echo", {
                "n": request.values["n"],
                "text": request.values["text"].upper(),
            })

    commod.ali.set_request_handler(handle)
    return commod
