"""Smoke tests: every example script must run to completion.

Keeps the examples honest as the library evolves — each is executed in
a subprocess and its key output lines are checked."""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

_EXPECTATIONS = {
    "quickstart.py": ["hello, world!", "status"],
    "ursa_search.py": ["inter-gateway control messages: 0"],
    "reconfiguration.py": ["relocations followed:   2"],
    "heterogeneous.py": ["byte-swapped garbage"],
    "realsockets.py": ["deployment shut down cleanly"],
    "drts_services.py": ["same UAdd, new machine"],
    "windows.py": ["application received input events"],
    "recursion_trace.py": ["RecursionLimitExceeded", "NameServerUnreachable"],
}


@pytest.mark.parametrize("script", sorted(_EXPECTATIONS))
def test_example_runs(script):
    path = os.path.join(_EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path],
        capture_output=True, text=True, timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for expected in _EXPECTATIONS[script]:
        assert expected in result.stdout, (
            f"{script} output missing {expected!r}:\n{result.stdout[-2000:]}"
        )


def test_every_example_has_a_smoke_test():
    scripts = {f for f in os.listdir(_EXAMPLES_DIR) if f.endswith(".py")}
    assert scripts == set(_EXPECTATIONS), (
        "examples and smoke expectations out of sync"
    )
