"""Integration tests on richer internet topologies: triangles, stars,
and shortest-path routing behaviour."""

import pytest

from deployments import echo_server, register_app_types
from repro import SUN3, Testbed, VAX


def _triangle():
    """Three networks A, B, C with gateways AB, BC, and AC.
    The direct A–C gateway gives a one-hop route; A-B-C would be two."""
    bed = Testbed()
    for net in ("netA", "netB", "netC"):
        bed.network(net, protocol="tcp")
    bed.machine("mA", VAX, networks=["netA"])
    bed.name_server("mA")
    bed.machine("gAB", SUN3, networks=["netA", "netB"])
    bed.machine("gBC", SUN3, networks=["netB", "netC"])
    bed.machine("gAC", SUN3, networks=["netA", "netC"])
    bed.gateway("gAB", prime_for=["netB"])
    bed.gateway("gAC", prime_for=["netC"])
    bed.gateway("gBC")
    bed.machine("mC", VAX, networks=["netC"])
    register_app_types(bed)
    return bed


def test_triangle_uses_the_direct_gateway():
    bed = _triangle()
    echo_server(bed, "far", "mC")
    client = bed.module("client", "mA")
    uadd = client.ali.locate("far")
    reply = client.ali.call(uadd, "echo", {"n": 1, "text": "tri"})
    assert reply.values["text"] == "TRI"
    # The direct A-C gateway carried the circuit; the two-hop path idle.
    assert bed.gateways["gAC"].circuits_established >= 1
    assert bed.gateways["gBC"].messages_forwarded == 0


def test_triangle_survives_direct_gateway_loss():
    """When the direct gateway dies, the two-hop detour via netB takes
    over — replanned from the naming service's current topology."""
    bed = _triangle()
    echo_server(bed, "far", "mC")
    client = bed.module("client", "mA")
    uadd = client.ali.locate("far")
    client.ali.call(uadd, "echo", {"n": 1, "text": "warm"})
    bed.gateways["gAC"].process.kill()
    bed.settle()
    reply = client.ali.call(uadd, "echo", {"n": 2, "text": "detour"})
    assert reply.values["text"] == "DETOUR"
    assert bed.gateways["gAB"].circuits_established >= 1
    assert bed.gateways["gBC"].circuits_established >= 1


def test_star_topology_hub_carries_all_spokes():
    """A hub network with three spoke networks: spoke-to-spoke traffic
    crosses two gateways via the hub."""
    bed = Testbed()
    bed.network("hub", protocol="tcp")
    for i in range(3):
        bed.network(f"spoke{i}", protocol="tcp")
    bed.machine("center", VAX, networks=["hub"])
    bed.name_server("center")
    for i in range(3):
        bed.machine(f"g{i}", SUN3, networks=["hub", f"spoke{i}"])
        bed.gateway(f"g{i}", prime_for=[f"spoke{i}"])
        bed.machine(f"leaf{i}", VAX, networks=[f"spoke{i}"])
    register_app_types(bed)

    echo_server(bed, "svc", "leaf2")
    client = bed.module("client", "leaf0")  # spoke0 -> hub -> spoke2
    uadd = client.ali.locate("svc")
    reply = client.ali.call(uadd, "echo", {"n": 1, "text": "spokes"})
    assert reply.values["text"] == "SPOKES"
    assert bed.gateways["g0"].circuits_established >= 1
    assert bed.gateways["g2"].circuits_established >= 1
    # The uninvolved spoke's gateway forwarded nothing for this call...
    # (it may still carry naming traffic for its own leaf) — check the
    # splice shape instead: g1 never spliced a circuit ending at leaf0
    # or leaf2.
    assert bed.scheduler.max_pump_depth_seen >= 2  # nested establishment


def test_mixed_protocol_star():
    """Spokes with different native IPCSs joined through one hub."""
    from repro.machine import APOLLO

    bed = Testbed()
    bed.network("hub", protocol="tcp")
    bed.network("ring", protocol="mbx", latency=0.0005)
    bed.network("ether", protocol="tcp")
    bed.machine("center", VAX, networks=["hub"])
    bed.name_server("center")
    bed.machine("gr", APOLLO, networks=["hub", "ring"])
    bed.gateway("gr", prime_for=["ring"])
    bed.machine("ge", SUN3, networks=["hub", "ether"])
    bed.gateway("ge", prime_for=["ether"])
    bed.machine("apollo_leaf", APOLLO, networks=["ring"])
    bed.machine("sun_leaf", SUN3, networks=["ether"])
    register_app_types(bed)

    received = []
    sink = bed.module("sink", "apollo_leaf")
    sink.ali.set_request_handler(lambda msg: received.append(msg))
    src = bed.module("src", "sun_leaf")
    uadd = src.ali.locate("sink")
    src.ali.send(uadd, "numbers", {"a": 0xAABBCCDD, "b": -1, "big": 2 ** 33})
    bed.settle()
    assert received
    message = received[0]
    # Sun-3 -> Apollo are image-compatible, end to end, across
    # tcp -> gateway -> tcp -> gateway -> mbx.
    assert message.mode == 0
    assert message.values["a"] == 0xAABBCCDD
