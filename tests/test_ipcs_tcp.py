"""Unit tests for the simulated TCP IPCS."""

import pytest

from repro.errors import AddressInUse, ChannelClosed, ConnectionRefused, NetworkUnreachable
from repro.ipcs import SimTcpIpcs
from repro.machine import SimProcess


@pytest.fixture
def pair(sched, ether, vax1, sun1):
    """Server process on sun1 listening; client process on vax1."""
    server_proc = SimProcess(sun1, "server")
    client_proc = SimProcess(vax1, "client")
    server_ipcs = sun1.ipcs_for("ether0", "tcp")
    client_ipcs = vax1.ipcs_for("ether0", "tcp")
    listener = server_ipcs.listen(server_proc, "5000")
    return client_proc, client_ipcs, server_proc, listener


def test_address_blob_format(pair):
    _, _, _, listener = pair
    assert listener.address_blob() == "tcp:ether0:sun1:5000"
    assert SimTcpIpcs.parse_blob("tcp:ether0:sun1:5000") == ("ether0", "sun1", 5000)


def test_parse_blob_rejects_other_protocols():
    with pytest.raises(ValueError):
        SimTcpIpcs.parse_blob("mbx:ring0://a/b")


def test_connect_and_exchange(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    assert channel.open
    assert len(accepted) == 1
    server_channel = accepted[0]

    client_got, server_got = [], []
    channel.set_receive_handler(client_got.append)
    server_channel.set_receive_handler(server_got.append)
    channel.send(b"ping")
    sched.run_until_idle()
    assert server_got == [b"ping"]
    server_channel.send(b"pong")
    sched.run_until_idle()
    assert client_got == [b"pong"]


def test_connect_refused_when_no_listener(sched, pair):
    client_proc, client_ipcs, _, _ = pair
    with pytest.raises(ConnectionRefused, match="refused"):
        client_ipcs.connect(client_proc, "tcp:ether0:sun1:9999")


def test_connect_times_out_when_host_dead(sched, pair, sun1):
    client_proc, client_ipcs, _, listener = pair
    sun1.crash()
    with pytest.raises(ConnectionRefused, match="timed out"):
        client_ipcs.connect(client_proc, "tcp:ether0:sun1:5000", timeout=1.0)


def test_connect_wrong_network_unreachable(pair):
    client_proc, client_ipcs, _, _ = pair
    with pytest.raises(NetworkUnreachable):
        client_ipcs.connect(client_proc, "tcp:othernet:sun1:5000")


def test_port_collision(pair, sun1):
    server_proc = SimProcess(sun1, "second")
    with pytest.raises(AddressInUse):
        sun1.ipcs_for("ether0", "tcp").listen(server_proc, "5000")


def test_ephemeral_ports_allocated(sun1):
    proc = SimProcess(sun1, "p")
    ipcs = sun1.ipcs_for("ether0", "tcp")
    l1 = ipcs.listen(proc)
    l2 = ipcs.listen(proc)
    assert l1.binding != l2.binding


def test_stream_coalescing(sched, pair):
    """Sends queued back-to-back arrive as one coalesced chunk — the
    byte-stream semantics the ND-Layer driver must frame around."""
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    got = []
    accepted[0].set_receive_handler(got.append)
    channel.send(b"abc")
    channel.send(b"def")
    sched.run_until_idle()
    assert b"".join(got) == b"abcdef"
    assert len(got) == 1  # coalesced


def test_send_on_closed_channel_raises(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    channel.close()
    with pytest.raises(ChannelClosed):
        channel.send(b"late")


def test_close_notifies_peer(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    reasons = []
    accepted[0].set_close_handler(reasons.append)
    channel.close()
    sched.run_until_idle()
    assert reasons == ["closed by peer"]
    assert not accepted[0].open


def test_process_death_closes_channels_and_notifies(sched, pair):
    client_proc, client_ipcs, server_proc, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    reasons = []
    channel.set_close_handler(reasons.append)
    server_proc.kill()
    sched.run_until_idle()
    assert reasons  # client learned of the death via the wire
    assert not channel.open


def test_close_handler_fires_immediately_if_already_closed(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    channel.close()
    reasons = []
    channel.set_close_handler(reasons.append)
    assert reasons == ["closed by local end"]


def test_retransmission_recovers_lost_segment(sched, ether, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    got = []
    accepted[0].set_receive_handler(got.append)
    ether.faults.drop_next(1)
    channel.send(b"retried")
    sched.run_until_idle()
    assert got == [b"retried"]
    assert client_ipcs.segments_retransmitted >= 1


def test_retransmission_preserves_order_after_loss(sched, ether, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    got = []
    accepted[0].set_receive_handler(got.append)
    ether.faults.drop_next(1)  # first data segment lost
    channel.send(b"one")
    channel.send(b"two")
    channel.send(b"three")
    sched.run_until_idle()
    assert b"".join(got) == b"onetwothree"


def test_persistent_partition_aborts_channel(sched, ether, pair):
    client_proc, client_ipcs, _, listener = pair
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    reasons = []
    channel.set_close_handler(reasons.append)
    ether.faults.sever("vax1", "sun1")
    channel.send(b"doomed")
    sched.run_until_idle()
    assert reasons == ["retransmission timeout"]


def test_syn_retry_survives_single_loss(sched, ether, pair):
    client_proc, client_ipcs, _, listener = pair
    ether.faults.drop_next(1)  # the SYN
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    assert channel.open


def test_duplicate_syn_does_not_create_second_channel(sched, ether, pair):
    """If the SYNACK is lost the client retransmits its SYN; the server
    must answer again without opening a second connection."""
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    ether.faults.drop_next(2)  # SYN and then the first SYNACK... drop SYN, then SYNACK
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    sched.run_until_idle()
    assert channel.open
    assert len(accepted) == 1


def test_listener_close_refuses_new_connects(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    listener.close()
    with pytest.raises(ConnectionRefused):
        client_ipcs.connect(client_proc, "tcp:ether0:sun1:5000")


def test_bytes_accounting(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    accepted[0].set_receive_handler(lambda data: None)
    channel.send(b"12345")
    sched.run_until_idle()
    assert channel.bytes_sent == 5
    assert accepted[0].bytes_received == 5
