"""Unit tests for NTCS addressing: UAdds, TAdds, blobs, the cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import NtcsError
from repro.ntcs.address import (
    Address,
    AddressCache,
    NAME_SERVER_UADD,
    TAddAllocator,
    blob_network,
    blob_protocol,
    make_uadd,
)


def test_uadd_basics():
    addr = make_uadd(42)
    assert not addr.temporary
    assert str(addr) == "U#42"


def test_tadd_allocator_is_local_and_monotonic():
    alloc_a = TAddAllocator()
    alloc_b = TAddAllocator()
    a1, a2 = alloc_a.allocate(), alloc_a.allocate()
    b1 = alloc_b.allocate()
    assert a1.temporary and a2.temporary
    assert a1 != a2
    # Only locally unique (Sec. 3.4): two modules produce equal TAdds.
    assert a1 == b1


def test_name_server_uadd_convention():
    assert NAME_SERVER_UADD == make_uadd(1)
    assert not NAME_SERVER_UADD.temporary


def test_server_id_namespacing():
    a = make_uadd(7, server_id=1)
    b = make_uadd(7, server_id=2)
    assert a != b


def test_address_value_range_enforced():
    with pytest.raises(NtcsError):
        Address(value=0)
    with pytest.raises(NtcsError):
        Address(value=2 ** 63)  # collides with the temporary bit


def test_wire_round_trip_preserves_temporary_bit():
    for addr in (make_uadd(99), Address(value=5, temporary=True)):
        high, low = addr.to_u32_pair()
        assert Address.from_u32_pair(high, low) == addr


@settings(max_examples=200, deadline=None)
@given(value=st.integers(1, 2 ** 63 - 1), temporary=st.booleans())
def test_property_wire_round_trip(value, temporary):
    addr = Address(value=value, temporary=temporary)
    assert Address.from_u32_pair(*addr.to_u32_pair()) == addr


def test_addresses_are_hashable_table_keys():
    table = {make_uadd(1): "a", Address(value=1, temporary=True): "b"}
    assert len(table) == 2  # UAdd 1 and TAdd 1 are distinct keys


# -- blob helpers -------------------------------------------------------------

def test_blob_helpers():
    assert blob_protocol("tcp:ether0:vax1:5000") == "tcp"
    assert blob_network("tcp:ether0:vax1:5000") == "ether0"
    assert blob_protocol("mbx:ring0://apollo2/mbx/ns") == "mbx"
    assert blob_network("mbx:ring0://apollo2/mbx/ns") == "ring0"


def test_malformed_blob_rejected():
    with pytest.raises(NtcsError):
        blob_network("garbage")


# -- the ND-Layer cache -----------------------------------------------------

def test_cache_store_lookup_invalidate():
    cache = AddressCache()
    addr = make_uadd(10)
    assert cache.lookup(addr) is None
    cache.store(addr, "tcp:ether0:vax1:5000", "VAX")
    entry = cache.lookup(addr)
    assert entry.blob == "tcp:ether0:vax1:5000"
    assert entry.mtype_name == "VAX"
    assert cache.hits == 1 and cache.misses == 1
    cache.invalidate(addr)
    assert cache.lookup(addr) is None


def test_cache_tadd_purge():
    cache = AddressCache()
    tadd = Address(value=3, temporary=True)
    uadd = make_uadd(30)
    cache.store(tadd, "tcp:ether0:vax1:5000", "VAX")
    assert cache.temporary_entries() == 1
    assert cache.replace_tadd(tadd, uadd) is True
    assert cache.temporary_entries() == 0
    assert cache.tadds_purged == 1
    assert cache.lookup(uadd).blob == "tcp:ether0:vax1:5000"
    assert tadd not in cache


def test_cache_purge_rules():
    cache = AddressCache()
    uadd = make_uadd(1)
    tadd = Address(value=1, temporary=True)
    # Only TAdd → UAdd replacements are legal.
    assert cache.replace_tadd(uadd, make_uadd(2)) is False
    assert cache.replace_tadd(tadd, Address(value=2, temporary=True)) is False
    # Replacing an absent TAdd is a no-op.
    assert cache.replace_tadd(tadd, uadd) is False
    assert cache.tadds_purged == 0
