"""Golden wire-fixture generator.

Run ONCE against the pre-fast-path codecs (PR 2) to freeze the wire
format, and never again: the fixtures' whole value is that they were
produced by the per-byte shift/mask implementation the batch codecs
replaced.  ``tests/test_wire_golden.py`` replays the manifest against
the live codecs and fails on any byte-level drift.

    PYTHONPATH=src python tests/fixtures/wire/generate.py
"""

import json
import os

from repro.conversion import ConversionRegistry, Field, StructDef
from repro.ntcs import message as m
from repro.ntcs.address import Address
from repro.ntcs.protocol import register_nucleus_types

HERE = os.path.dirname(os.path.abspath(__file__))

APP_SDEF = StructDef("golden_app", 100, [
    Field("n", "i32"),
    Field("ratio", "f64"),
    Field("tag", "char[12]"),
    Field("tail", "bytes"),
])

APP_VALUES = {"n": -1234, "ratio": 2.5, "tag": "golden", "tail": b"\x00\x01\xfe"}

CONTROL_BODIES = {
    "lvc_hello": {"mtype": "VAX", "listen_blob": "tcp:ether0:vax1:5001",
                  "network": "ether0"},
    "lvc_hello_ack": {"mtype": "APOLLO", "listen_blob": "mbx:ring0://a1/mbx/7"},
    "ivc_open": {"dst_network": "ring0", "src_mtype": "VAX",
                 "src_listen_blob": "tcp:ether0:vax1:5001"},
    "ivc_open_ack": {"dst_mtype": "APOLLO"},
    "ivc_open_nak": {"reason": "hop count exceeded"},
    "ivc_close": {"reason": "upstream circuit failed: peer died"},
}


def build_registry():
    registry = ConversionRegistry()
    register_nucleus_types(registry)
    registry.register(APP_SDEF)
    return registry


def cases(registry):
    src = Address(value=3)
    dst = Address(value=9)
    tsrc = Address(value=5, temporary=True)
    app = registry.get_by_name("golden_app")
    packed_body = app.pack(APP_VALUES)
    yield ("data_packed", m.Msg(kind=m.DATA, src=src, dst=dst,
                                flags=m.FLAG_PACKED | m.FLAG_REPLY_EXPECTED,
                                type_id=100, corr_id=7, body=packed_body))
    yield ("data_image", m.Msg(kind=m.DATA, src=src, dst=dst, flags=0,
                               type_id=100, corr_id=8,
                               body=b"\x01\x02\x03\x04imagebody"))
    yield ("data_empty_body", m.Msg(kind=m.DATA, src=src, dst=dst,
                                    flags=m.FLAG_PACKED, type_id=100,
                                    corr_id=9))
    yield ("data_tadd_source", m.Msg(kind=m.DATA, src=tsrc, dst=dst,
                                     flags=m.FLAG_PACKED, type_id=100,
                                     corr_id=10, body=packed_body))
    for name, values in sorted(CONTROL_BODIES.items()):
        entry = registry.get_by_name(name)
        kind = {
            "lvc_hello": m.LVC_HELLO, "lvc_hello_ack": m.LVC_HELLO_ACK,
            "ivc_open": m.IVC_OPEN, "ivc_open_ack": m.IVC_OPEN_ACK,
            "ivc_open_nak": m.IVC_OPEN_NAK, "ivc_close": m.IVC_CLOSE,
        }[name]
        aux = 3 if name == "ivc_open" else 0
        yield (name, m.Msg(kind=kind, src=src, dst=dst,
                           flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
                           type_id=entry.sdef.type_id, aux=aux,
                           body=entry.pack(values)))


def main():
    registry = build_registry()
    manifest = {"app_struct": {"name": APP_SDEF.name,
                               "type_id": APP_SDEF.type_id},
                "app_values_packed_hex": registry.get_by_name(
                    "golden_app").pack(APP_VALUES).hex(),
                "control_bodies": CONTROL_BODIES,
                "frames": []}
    for name, msg in cases(registry):
        frame = msg.encode()
        path = os.path.join(HERE, f"{name}.bin")
        with open(path, "wb") as f:
            f.write(frame)
        manifest["frames"].append({
            "name": name,
            "file": f"{name}.bin",
            "kind": msg.kind,
            "src_value": msg.src.value,
            "src_temporary": msg.src.temporary,
            "dst_value": msg.dst.value,
            "dst_temporary": msg.dst.temporary,
            "flags": msg.flags,
            "type_id": msg.type_id,
            "corr_id": msg.corr_id,
            "aux": msg.aux,
            "body_hex": msg.body.hex(),
        })
    with open(os.path.join(HERE, "manifest.json"), "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(manifest['frames'])} frames to {HERE}")


if __name__ == "__main__":
    main()
