"""Golden wire-fixture generator.

Run ONCE against the pre-fast-path codecs (PR 2) to freeze the wire
format; later PRs may *extend* the case list (e.g. the §9 batched
naming operations), but a re-run must leave every existing ``.bin``
byte-identical — the fixtures' whole value is that they were produced
by the implementation that froze the format.
``tests/test_wire_golden.py`` replays the manifest against the live
codecs and fails on any byte-level drift.

    PYTHONPATH=src python tests/fixtures/wire/generate.py
"""

import json
import os

from repro.conversion import ConversionRegistry, Field, StructDef
from repro.naming import protocol as np
from repro.naming.protocol import register_naming_types
from repro.ntcs import message as m
from repro.ntcs.address import Address
from repro.ntcs.protocol import register_nucleus_types

HERE = os.path.dirname(os.path.abspath(__file__))

APP_SDEF = StructDef("golden_app", 100, [
    Field("n", "i32"),
    Field("ratio", "f64"),
    Field("tag", "char[12]"),
    Field("tail", "bytes"),
])

APP_VALUES = {"n": -1234, "ratio": 2.5, "tag": "golden", "tail": b"\x00\x01\xfe"}

CONTROL_BODIES = {
    "lvc_hello": {"mtype": "VAX", "listen_blob": "tcp:ether0:vax1:5001",
                  "network": "ether0"},
    "lvc_hello_ack": {"mtype": "APOLLO", "listen_blob": "mbx:ring0://a1/mbx/7"},
    "ivc_open": {"dst_network": "ring0", "src_mtype": "VAX",
                 "src_listen_blob": "tcp:ether0:vax1:5001"},
    "ivc_open_ack": {"dst_mtype": "APOLLO"},
    "ivc_open_nak": {"reason": "hop count exceeded"},
    "ivc_close": {"reason": "upstream circuit failed: peer died"},
    # Flow control (PROTOCOL.md §12): demand-driven standalone frames.
    # Cumulative counters ride in the body; the aux word carries the
    # same advertisement in piggyback encoding (CREDIT_VALID | count).
    "credit_grant": {"consumed": 6, "window": 8},
    "credit_probe": {"sent": 14},
}

# One fixed record shared by the naming-frame fixtures (PROTOCOL.md §9).
GOLDEN_RECORD = np.NameRecord(
    name="echo.server", uadd=Address(value=17), mtype_name="Sun-3",
    attrs={"kind": "echo"}, addresses=[("ether0", "tcp:ether0:sun1:5002")],
    alive=True, registered_at=0.125,
)

# Naming-service bodies frozen here: the generation-stamped acks and the
# batched resolve pair.  ``bytes`` fields are stored hex-encoded in the
# manifest (JSON cannot carry raw bytes); the replay test consults the
# StructDef to decode them.
NAMING_BODIES = {
    "ns_resolve_name_ack": {"found": 1, "uadd": 17, "gen": 4},
    "ns_record_ack": {"found": 1, "gen": 4,
                      "record": np.encode_records([GOLDEN_RECORD])},
    "ns_forward_ack": {"status": np.FWD_FOUND, "new_uadd": 33, "gen": 5},
    "ns_resolve_batch": {
        "count": 2,
        "names": np.encode_name_list(
            ["echo.server", "no.such"]).encode("ascii"),
    },
    "ns_resolve_batch_ack": {
        "gen": 4, "count": 1,
        "payload": np.encode_batch_payload(["no.such"], [GOLDEN_RECORD]),
    },
}

# One fixed shard-directory record shared by the sharded-naming frames
# (PROTOCOL.md §14): the owning shard's replica as carried by a
# redirect.
GOLDEN_SHARD_RECORD = np.NameRecord(
    name="name.shard.2", uadd=Address(value=(2 << 48) | 1),
    mtype_name="VAX", attrs={"kind": "nameserver", "shard": "2"},
    addresses=[("ether0", "tcp:ether0:ns20:411")],
    alive=True, registered_at=0.25,
)

# Sharded-naming bodies (PROTOCOL.md §14), frozen by PR 10 in their own
# corr-id range so every pre-existing fixture stays byte-identical.
SHARD_BODIES = {
    "ns_shard_redirect": {
        "shard_id": 2, "count": 1,
        "records": np.encode_records([GOLDEN_SHARD_RECORD]),
    },
    "ns_shard_handoff": {
        "shard_id": 2, "count": 1,
        "records": np.encode_stamped_records([(4, GOLDEN_RECORD)]),
    },
    "ns_shard_handoff_ack": {"ok": 1, "count": 1},
    "ns_antientropy": {"shard_id": 1, "gen": 4, "digest": b"7"},
    "ns_antientropy_ack": {
        "gen": 7, "count": 1,
        "records": np.encode_stamped_records([(5, GOLDEN_RECORD)]),
    },
}


def build_registry():
    registry = ConversionRegistry()
    register_nucleus_types(registry)
    register_naming_types(registry)
    registry.register(APP_SDEF)
    return registry


def cases(registry):
    src = Address(value=3)
    dst = Address(value=9)
    tsrc = Address(value=5, temporary=True)
    app = registry.get_by_name("golden_app")
    packed_body = app.pack(APP_VALUES)
    yield ("data_packed", m.Msg(kind=m.DATA, src=src, dst=dst,
                                flags=m.FLAG_PACKED | m.FLAG_REPLY_EXPECTED,
                                type_id=100, corr_id=7, body=packed_body))
    yield ("data_image", m.Msg(kind=m.DATA, src=src, dst=dst, flags=0,
                               type_id=100, corr_id=8,
                               body=b"\x01\x02\x03\x04imagebody"))
    yield ("data_empty_body", m.Msg(kind=m.DATA, src=src, dst=dst,
                                    flags=m.FLAG_PACKED, type_id=100,
                                    corr_id=9))
    yield ("data_tadd_source", m.Msg(kind=m.DATA, src=tsrc, dst=dst,
                                     flags=m.FLAG_PACKED, type_id=100,
                                     corr_id=10, body=packed_body))
    # A flow-controlled DATA frame: the receiver's cumulative consumed
    # count piggybacks in the aux word (PROTOCOL.md §12).
    yield ("data_credit_piggyback",
           m.Msg(kind=m.DATA, src=src, dst=dst, flags=m.FLAG_PACKED,
                 type_id=100, corr_id=11, aux=m.encode_credit(6),
                 body=packed_body))
    for name, values in sorted(CONTROL_BODIES.items()):
        entry = registry.get_by_name(name)
        kind = {
            "lvc_hello": m.LVC_HELLO, "lvc_hello_ack": m.LVC_HELLO_ACK,
            "ivc_open": m.IVC_OPEN, "ivc_open_ack": m.IVC_OPEN_ACK,
            "ivc_open_nak": m.IVC_OPEN_NAK, "ivc_close": m.IVC_CLOSE,
            "credit_grant": m.CREDIT_GRANT, "credit_probe": m.CREDIT_PROBE,
        }[name]
        aux = {"ivc_open": 3,
               "credit_grant": m.encode_credit(values.get("consumed", 0)),
               "credit_probe": m.encode_credit(values.get("sent", 0)),
               }.get(name, 0)
        yield (name, m.Msg(kind=kind, src=src, dst=dst,
                           flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
                           type_id=entry.sdef.type_id, aux=aux,
                           body=entry.pack(values)))
    for corr_id, (name, values) in enumerate(sorted(NAMING_BODIES.items()),
                                             start=20):
        entry = registry.get_by_name(name)
        yield (name, m.Msg(kind=m.DATA, src=src, dst=dst,
                           flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
                           type_id=entry.sdef.type_id, corr_id=corr_id,
                           body=entry.pack(values)))
    for corr_id, (name, values) in enumerate(sorted(SHARD_BODIES.items()),
                                             start=30):
        entry = registry.get_by_name(name)
        yield (name, m.Msg(kind=m.DATA, src=src, dst=dst,
                           flags=m.FLAG_PACKED | m.FLAG_INTERNAL,
                           type_id=entry.sdef.type_id, corr_id=corr_id,
                           body=entry.pack(values)))


def main():
    registry = build_registry()
    manifest = {"app_struct": {"name": APP_SDEF.name,
                               "type_id": APP_SDEF.type_id},
                "app_values_packed_hex": registry.get_by_name(
                    "golden_app").pack(APP_VALUES).hex(),
                "control_bodies": CONTROL_BODIES,
                "naming_bodies": {
                    name: {key: (value.hex() if isinstance(value, bytes)
                                 else value)
                           for key, value in values.items()}
                    for name, values in
                    {**NAMING_BODIES, **SHARD_BODIES}.items()},
                "frames": []}
    for name, msg in cases(registry):
        frame = msg.encode()
        path = os.path.join(HERE, f"{name}.bin")
        with open(path, "wb") as f:
            f.write(frame)
        manifest["frames"].append({
            "name": name,
            "file": f"{name}.bin",
            "kind": msg.kind,
            "src_value": msg.src.value,
            "src_temporary": msg.src.temporary,
            "dst_value": msg.dst.value,
            "dst_temporary": msg.dst.temporary,
            "flags": msg.flags,
            "type_id": msg.type_id,
            "corr_id": msg.corr_id,
            "aux": msg.aux,
            "body_hex": msg.body.hex(),
        })
    with open(os.path.join(HERE, "manifest.json"), "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {len(manifest['frames'])} frames to {HERE}")


if __name__ == "__main__":
    main()
