"""MDL001 mutation fixture: the ack handler has been deleted.

``ns_orphan`` is defined and sent as a request, but no module in this
tree handles it — exactly the hole MDL001 exists to catch.  (With no
handler at all, MDL002 stays quiet by design: one hole, one finding.)
"""

from repro.conversion import Field, StructDef

NS_ORPHAN = StructDef("ns_orphan", 30, [Field("name", "char[64]")])


class Client:
    def __init__(self, ali):
        self.ali = ali

    def ask(self, dst):
        return self.ali.call(dst, "ns_orphan", {"name": "who"})
