"""MDL003 mutation fixture: a handshake that can never start.

``HELLO`` requires a ``session`` flag, but nothing in the wire table
establishes ``session`` — so neither ``HELLO`` nor anything gated on
it is ever sendable.  The flag fixpoint is empty: a handshake deadlock
baked into the declaration.
"""

HELLO = 1
DATA = 2

KIND_NAMES = {
    HELLO: "HELLO",
    DATA: "DATA",
}

WIRE_PROTOCOL = {
    "HELLO": {"requires": ("session",), "establishes": ("hello",)},
    "DATA": {"requires": ("hello",), "establishes": ()},
}
