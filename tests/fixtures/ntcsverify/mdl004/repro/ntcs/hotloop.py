"""MDL004 mutation fixture: the retry bound has been dropped.

``TRY``/``CHECK`` form a retry cycle with no timeout edge, no bounded
budget, no progress mark, and no queue drain — under a persistent
fault it spins forever.  (The terminal is still reachable, so this is
a livelock, not an MDL003 deadlock.)
"""

PROTOCOL_MACHINE = {
    "name": "hot-loop",
    "initial": "TRY",
    "terminal": ("DONE",),
    "states": {
        "TRY": {
            "edges": (
                {"event": "local attempt", "next": "CHECK"},
            ),
        },
        "CHECK": {
            "edges": (
                {"event": "local failed", "next": "TRY"},
                {"event": "local success", "next": "DONE"},
            ),
        },
        "DONE": {},
    },
}
