"""MDL002 mutation fixture: the timeout edge has been dropped.

The machine below waits for a peer's ack in ``WAITING`` but its only
edge out is the ack itself — the timeout edge a real protocol would
carry was deleted, so one lost frame parks the machine forever.
"""

PROTOCOL_MACHINE = {
    "name": "ack-wait",
    "initial": "WAITING",
    "terminal": ("DONE",),
    "states": {
        "WAITING": {
            "waits": True,
            "edges": (
                {"event": "recv ack", "next": "DONE"},
            ),
        },
        "DONE": {},
    },
}
