"""MDL005 mutation fixture: the queue's draining edge has been deleted.

The pump cycle is properly bounded (so MDL004 stays quiet), but every
turn of it enqueues onto ``backlog`` and no edge of the machine ever
drains it — the unbounded-buildup shape the flow-control readiness
check exists to catch.
"""

MAX_PUMPS = 4  # the bound the cycle's edge names


PROTOCOL_MACHINE = {
    "name": "filler",
    "initial": "PUMP",
    "terminal": ("DONE",),
    "states": {
        "PUMP": {
            "edges": (
                {"event": "recv item", "next": "PUMP",
                 "queue": "+backlog", "bounded": "MAX_PUMPS"},
                {"event": "local stop", "next": "DONE"},
            ),
        },
        "DONE": {},
    },
}
