"""Seeded PERF001 violations: this file's module name resolves to
repro.ntcs.ndlayer — a frame-train hot-path module — so per-frame
Scheduler.post loops in it must fire."""


class BadNdLayer:
    def __init__(self, scheduler):
        self.scheduler = scheduler

    def deliver_all(self, frames):
        for frame in frames:
            self.scheduler.post(0.0, lambda f=frame: f)       # PERF001

    def requeue(self, scheduler, frames):
        while frames:
            scheduler.schedule(0.1, frames.pop)               # PERF001

    def one_shot(self, frame):
        # A single post outside any loop is the sanctioned shape.
        self.scheduler.post(0.0, lambda: frame)
