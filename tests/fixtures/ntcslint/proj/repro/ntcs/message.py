"""A *clean* fixture: the fast-path memoryview splice pattern.

This is the idiom the PR's zero-copy gateway path uses (see
``repro.ntcs.message.patch_frame_aux``): rewrite two header words of a
frame in place through a ``memoryview``, updating the word-sum checksum
incrementally.  The static-analysis gate must accept it without any
waiver pragma — layering (nucleus-level code importing the conversion
codecs and typed errors), determinism (no wall clock, no randomness),
and hygiene (typed raises, no swallowed errors, no mutable defaults)
are all respected.
"""

from repro.conversion.shiftmode import shift_decode_u32s, shift_encode_u32s
from repro.errors import ProtocolError

HEADER_BYTES = 48
AUX_WORD_OFFSET = 40
CHECKSUM_WORD_OFFSET = 44


def patch_aux_in_place(frame, aux):
    """Return a copy of ``frame`` with only aux + checksum rewritten."""
    if len(frame) < HEADER_BYTES:
        raise ProtocolError("short frame: %d bytes" % len(frame))
    patched = bytearray(frame)
    view = memoryview(patched)
    old_aux, old_sum = shift_decode_u32s(view, 2, offset=AUX_WORD_OFFSET)
    new_sum = (old_sum - old_aux + aux) & 0xFFFFFFFF
    view[AUX_WORD_OFFSET:CHECKSUM_WORD_OFFSET + 4] = \
        shift_encode_u32s((aux & 0xFFFFFFFF, new_sum))
    return bytes(patched)
