"""Seeded exception-hygiene violations."""

from repro.errors import NtcsError


def swallow_everything(op):
    """Bare except — EXC001."""
    try:
        return op()
    except:                                        # line 10: EXC001
        return None


def swallow_ntcs_error(op):
    """Silently dropped NTCS error — EXC002."""
    try:
        return op()
    except NtcsError:                              # line 18: EXC002
        pass


def sticky_default(item, bucket=[]):               # line 22: EXC003
    """Mutable default argument."""
    bucket.append(item)
    return bucket


def waived(op):
    """The same drop, explicitly waived — no finding."""
    try:
        return op()
    except NtcsError:  # ntcslint: allow=EXC002 — fixture for the waiver path
        pass
