"""Seeded violation: a repro module absent from the layer map (LAY002)."""

VALUE = 1
