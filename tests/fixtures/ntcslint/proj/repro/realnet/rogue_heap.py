"""Seeded DET006 violations: a private event heap outside the shared
timer module.  Lives under repro.realnet to pin that the realtime
substrate's wall-clock exemption does NOT extend to heapq — both
drivers must file timers through repro.netsim.timerwheel."""

import heapq                                       # line 6: DET006
from heapq import heappush, heappop                # line 7: DET006


def rogue_timer_loop(timers):
    """A second, unaccounted event queue — exactly what DET006 bans."""
    queue = []
    for t in timers:
        heappush(queue, t)
    return heapq.heapify(queue) or heappop(queue)
