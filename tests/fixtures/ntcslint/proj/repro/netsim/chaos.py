"""Seeded DET005 violation: a chaos/repair module (this file's module
name is ``repro.netsim.chaos``, one of the restricted set) constructing
``random.Random`` directly.  Even a *seeded* construction is banned
here — streams must come from ``repro.util.seeds.derive_rng`` so a
chaos schedule replays bit-identically from its seed alone."""

import random


def jitter(seed):
    """Seeded, but still DET005: the seed is not derived via derive_rng."""
    return random.Random(7).random() + seed        # line 12: DET005
