"""Seeded violation: the simulated network imports the NTCS above it.

The netsim layer models the physical network; the NTCS is software
running *on top of* it.  Both imports below must fire LAY001."""

from repro.ntcs.nucleus import Nucleus            # line 6: LAY001


def lazy_leak():
    """Function-scope imports are layering edges too."""
    from repro.ntcs.lcm import LcmLayer           # line 11: LAY001
    return LcmLayer, Nucleus
