"""Seeded protocol violations (type-id reservations, Sec. 5.2).

This module sits in ``repro.naming``, whose reserved range is 10-39."""

from repro.conversion import Field, StructDef

T_GOOD = 12
T_OUT_OF_RANGE = 99

STRUCTS = [
    StructDef("ok_message", T_GOOD, [
        Field("who", "char[16]"),
    ]),
    StructDef("rogue_id", T_OUT_OF_RANGE, [        # line 14: PRO001
        Field("what", "char[16]"),
    ]),
    StructDef("clashing", 12, [                    # line 17: PRO002 (dup of T_GOOD)
        Field("why", "u8"),
    ]),
    StructDef("bad_fields", 13, [
        Field("size", "float32"),                  # line 21: PRO003 (unknown type)
        Field("tail", "bytes"),                    # line 22: PRO003 (bytes not last)
        Field("size", "u16"),                      # line 23: PRO004 (dup field name)
    ]),
]
