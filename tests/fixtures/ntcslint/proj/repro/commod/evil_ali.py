"""Seeded violation: the ALI veneer reaching down into the ND-Layer.

"ALI never imports ndlayer/drivers" — the veneer sees only the Nucleus
surface and the NSP."""

from repro.ntcs.ndlayer import Lvc                # line 6: LAY001
from repro.ntcs.drivers import make_driver        # line 7: LAY001

__all__ = ["Lvc", "make_driver"]
