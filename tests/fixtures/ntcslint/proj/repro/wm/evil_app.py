"""Seeded violation: an application importing NTCS internals.

Applications see the ComMod and nothing else (Sec. 2.1)."""

from repro.ntcs.lcm import IncomingMessage        # line 5: LAY001
from repro.netsim.network import Network          # line 6: LAY001

__all__ = ["IncomingMessage", "Network"]
