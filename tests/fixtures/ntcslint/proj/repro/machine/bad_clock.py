"""Seeded determinism violations: sim code touching real time/RNGs."""

import random
import time
from datetime import datetime


def naughty_tick():
    """Every statement below must fire a DET rule."""
    t0 = time.time()                               # line 10: DET001
    time.sleep(0.1)                                # line 11: DET002
    jitter = random.random()                       # line 12: DET003
    rng = random.Random()                          # line 13: DET003 (unseeded)
    stamp = datetime.now()                         # line 14: DET004
    return t0, jitter, rng, stamp


def sanctioned(seed):
    """Seeded generators are the approved idiom — no finding."""
    return random.Random(seed).random()
