"""Unit coverage for :mod:`repro.netsim.faults` edge cases.

The chaos harness leans on the FaultPlan for every network-level fault
op, so its corner semantics — unknown hosts under a partition,
overlapping groups, drop_next interacting with partitions, and what
``clear()`` does and does not reset — are pinned here.
"""

from repro.netsim.faults import FaultPlan


def test_partition_isolates_unknown_hosts():
    # A host in no group is isolated from everyone (Sec. 4.3's abrupt
    # failures: absence from the partition map means unreachable).
    plan = FaultPlan()
    plan.partition({"a", "b"}, {"c"})
    assert plan.blocks("ghost", "a")
    assert plan.blocks("ghost", "c")
    # ...but reachable hosts inside one group still talk.
    assert not plan.blocks("a", "b")
    assert plan.blocks("a", "c")


def test_partition_with_overlapping_groups_uses_first_match():
    # "b" appears in both groups; the first group containing the source
    # decides, so b->a flows and b->c does not.
    plan = FaultPlan()
    plan.partition({"a", "b"}, {"b", "c"})
    assert not plan.blocks("b", "a")
    assert plan.blocks("b", "c")
    assert plan.blocks("c", "a")
    assert not plan.blocks("c", "b")


def test_drop_next_budget_not_consumed_by_partition_blocks():
    # A datagram the partition already blocks must not burn the
    # unconditional drop budget: blocks() short-circuits should_drop.
    plan = FaultPlan()
    plan.partition({"a"}, {"b"})
    plan.drop_next(2)
    assert plan.should_drop("a", "b")          # partition block
    assert plan.pending_drops == 2             # budget untouched
    plan.heal_partition()
    assert plan.should_drop("a", "b")          # burns one
    assert plan.should_drop("a", "b")          # burns the other
    assert plan.pending_drops == 0
    assert not plan.should_drop("a", "b")
    assert plan.dropped == 3


def test_sever_is_bidirectional_and_heals():
    plan = FaultPlan()
    plan.sever("a", "b")
    assert plan.blocks("a", "b")
    assert plan.blocks("b", "a")
    plan.heal("b", "a")                        # order-insensitive key
    assert not plan.blocks("a", "b")


def test_heal_of_unsevered_pair_is_a_noop():
    plan = FaultPlan()
    plan.heal("a", "b")
    assert not plan.blocks("a", "b")


def test_clear_resets_configuration_but_keeps_statistics():
    # clear() removes every *configured* fault, including the armed
    # drop_next budget; the ``dropped`` tally is an observation and
    # survives, so chaos windows can be diffed after cleanup.
    plan = FaultPlan()
    plan.drop_probability = 1.0
    plan.drop_next(5)
    plan.sever("a", "b")
    plan.partition({"a"}, {"b", "c"})
    assert plan.should_drop("a", "b")
    assert plan.dropped == 1
    plan.clear()
    assert plan.pending_drops == 0
    assert plan.drop_probability == 0.0
    assert not plan.blocks("a", "b")
    assert not plan.should_drop("a", "b")
    assert plan.dropped == 1


def test_probabilistic_drops_are_seed_deterministic():
    outcomes = []
    for _ in range(2):
        plan = FaultPlan(seed=42)
        plan.drop_probability = 0.5
        outcomes.append([plan.should_drop("a", "b") for _ in range(32)])
    assert outcomes[0] == outcomes[1]
    assert any(outcomes[0]) and not all(outcomes[0])
