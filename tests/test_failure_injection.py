"""Failure-injection tests: wire loss, partitions, crashes — the NTCS
behaviour under a misbehaving substrate."""

import pytest

from deployments import echo_server, single_net, two_nets
from repro.errors import DestinationUnavailable, ReplyTimeout


def test_probabilistic_wire_loss_is_absorbed_by_tcp():
    """Moderate random datagram loss on the wire is hidden from the
    NTCS by the native IPCS's retransmission — calls still succeed."""
    bed = single_net()
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 0, "text": "warm"})
    bed.networks["ether0"].faults.drop_probability = 0.10
    for i in range(30):
        reply = client.ali.call(uadd, "echo", {"n": i, "text": "lossy"},
                                timeout=5.0)
        assert reply.values["n"] == i
    ipcs = bed.machines["vax1"].ipcs_for("ether0", "tcp")
    assert ipcs.segments_retransmitted > 0


def test_partition_then_heal_recovers_conversation():
    bed = single_net()
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 0, "text": "before"})
    bed.networks["ether0"].faults.partition({"vax1"}, {"sun1"})
    with pytest.raises((DestinationUnavailable, ReplyTimeout)):
        client.ali.call(uadd, "echo", {"n": 1, "text": "during"},
                        timeout=0.5)
    bed.networks["ether0"].faults.heal_partition()
    bed.settle()
    reply = client.ali.call(uadd, "echo", {"n": 2, "text": "after"})
    assert reply.values["text"] == "AFTER"


def test_machine_crash_mid_call_fails_cleanly():
    bed = single_net()
    crashing = bed.module("crashy", "sun1")

    def handle(request):
        # Crash while holding the request — no reply will ever come.
        bed.machines["sun1"].crash()

    crashing.ali.set_request_handler(handle)
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("crashy")
    with pytest.raises((DestinationUnavailable, ReplyTimeout)):
        client.ali.call(uadd, "echo", {"n": 1, "text": "x"}, timeout=1.0)
    # The client is healthy afterwards.
    assert client.nucleus.depth == 0


def test_gateway_drops_counted_during_ring_failure():
    """Traffic in flight through a gateway when its downstream leg dies
    is dropped and counted (Sec. 4.3's "messages may get lost in
    Gateway queues")."""
    bed = two_nets()
    sink = bed.module("ring.sink", "apollo1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("ring.sink")
    client.ali.send(uadd, "echo", {"n": 0, "text": "warm"})
    bed.settle()
    # Kill the sink's host abruptly, then keep sending before the
    # teardown has propagated: the gateway forwards into the void.
    bed.machines["apollo1"].crash()
    for i in range(5):
        try:
            client.ali.send(uadd, "echo", {"n": i, "text": "void"})
        except DestinationUnavailable:
            break
    bed.settle()
    gw_stacks = bed.gateways["gw1"].stacks.values()
    dropped = sum(nucleus.counters["gateway_messages_dropped"]
                  for nucleus in gw_stacks)
    faults = client.nucleus.counters["lcm_circuit_faults"]
    assert dropped >= 1 or faults >= 1  # either counted or detected first


def test_mbx_ring_loss_aborts_but_system_recovers():
    """The MBX IPCS does not retransmit: a lost record kills the
    circuit, and the LCM's implicit reopen carries the next message."""
    bed = two_nets()
    received = []
    sink = bed.module("ring.sink", "apollo2")
    sink.ali.set_request_handler(lambda m: received.append(m.values["n"]))
    src = bed.module("ring.src", "apollo1")
    uadd = src.ali.locate("ring.sink")
    src.ali.send(uadd, "echo", {"n": 0, "text": ""})
    bed.settle()
    bed.networks["ring0"].faults.drop_next(1)
    src.ali.send(uadd, "echo", {"n": 1, "text": ""})  # lost + circuit dies
    bed.settle()
    src.ali.send(uadd, "echo", {"n": 2, "text": ""})  # implicit reopen
    bed.settle()
    assert 0 in received and 2 in received
    assert src.nucleus.counters["lcm_circuit_faults"] >= 1


def test_interleaved_failures_do_not_corrupt_ordering():
    """Loss + recovery must never reorder or duplicate what is
    delivered on one circuit."""
    bed = single_net()
    received = []
    sink = bed.module("sink", "sun1")
    sink.ali.set_request_handler(lambda m: received.append(m.values["n"]))
    src = bed.module("src", "vax1")
    uadd = src.ali.locate("sink")
    bed.networks["ether0"].faults.drop_probability = 0.05
    for i in range(100):
        src.ali.send(uadd, "echo", {"n": i, "text": ""})
        if i % 10 == 0:
            bed.run_for(0.05)
    bed.networks["ether0"].faults.drop_probability = 0.0
    bed.settle()
    # TCP under the hood: everything delivered, in order, exactly once.
    assert received == sorted(set(received))
    assert received == list(range(100))
