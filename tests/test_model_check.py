"""ntcsverify: protocol model extraction, MDL checking, trace replay.

Three halves, mirroring the tentpole:

* the *gate* — ``verify`` over ``src/repro`` extracts the message
  table, the declared machines, and the wire protocol, and every MDL
  rule comes back clean;
* the *demonstration* — one mutation fixture per MDL rule (a deleted
  ack handler, a dropped timeout edge, a dead handshake, an unbounded
  retry cycle, an undrained queue) proves each rule actually fires,
  and fires alone;
* the *bridge* — wire traces recorded from live chaos-schedule runs
  replay through the trace-conformance checker with zero unmodeled
  transitions, while corrupted traces are flagged.
"""

import json
from pathlib import Path

import pytest

from deployments import chain_nets, echo_server, two_nets
from repro.analysis import Project, analyze
from repro.analysis.cli import main
from repro.analysis.model import check_trace, extract
from repro.netsim import ChaosSchedule, NetTraceLog
from repro.ntcs import message as m
from repro.ntcs.address import Address
from repro.ntcs.nucleus import NucleusConfig

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
VERIFY_FIXTURES = REPO_ROOT / "tests" / "fixtures" / "ntcsverify"


def _model(paths=(SRC_TREE,)):
    return extract(Project.load(paths))


# ---------------------------------------------------------------------------
# The gate: verify is clean on the real tree
# ---------------------------------------------------------------------------

def test_verify_cli_clean_on_src_tree(capsys):
    assert main(["verify", str(SRC_TREE)]) == 0
    assert "ntcslint: clean" in capsys.readouterr().out


def test_model_family_clean_via_plain_lint():
    findings = analyze([SRC_TREE], rule_filter=["model"])
    assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# Extraction: the model really contains the protocol
# ---------------------------------------------------------------------------

def test_extracts_message_table_with_sites():
    model = _model()
    # Control bodies join their unpack/kind-dispatch handlers.
    hello = model.messages["lvc_hello"]
    assert 1 <= hello.type_id <= 9 and hello.sends and hello.handlers
    # ivc_close is never unpacked — found via kind dispatch + @handles.
    close = model.messages["ivc_close"]
    assert close.sends and close.handlers
    assert any(h.module == "repro.ntcs.iplayer" for h in close.handlers)
    # NSP requests resolve through the _call/_resolve wrappers and the
    # Name Server's dispatch dict.
    register = model.messages["ns_register"]
    assert register.is_request
    assert any(h.module.startswith("repro.naming") for h in register.handlers)
    # Replies are recognized from handler-return tuples and _expect.
    assert model.messages["ns_register_ack"].is_reply


def test_extracts_declared_machines_and_wire():
    model = _model()
    names = {machine.name for machine in model.machines}
    assert {"ivc-endpoint", "lvc", "lcm-send-repair",
            "lcm-call", "lcm-rx-queue"} <= names
    anchors = {machine.name for machine in model.machines if machine.anchor}
    assert {"ivc-endpoint", "lvc"} <= anchors
    wire = model.primary_wire()
    assert wire is not None and wire.module == "repro.ntcs.message"
    assert set(wire.kind_names.values()) == set(wire.requires)


def test_anchor_mismatch_fires_mdl003(tmp_path):
    tree = tmp_path / "repro" / "ntcs"
    tree.mkdir(parents=True)
    (tree / "drifted.py").write_text(
        'PROTOCOL_MACHINE = {\n'
        '    "name": "drifted", "anchor": True,\n'
        '    "initial": "NEW", "terminal": ("DONE",),\n'
        '    "states": {\n'
        '        "NEW": {"edges": ({"event": "local go", "next": "DONE"},)},\n'
        '        "DONE": {},\n'
        '    },\n'
        '}\n'
        '\n'
        'class Thing:\n'
        '    def __init__(self):\n'
        '        self.state = "NEW"\n'
        '    def finish(self):\n'
        '        self.state = "FINISHED"\n'
    )
    findings = analyze([tmp_path], rule_filter=["model"])
    assert {f.rule for f in findings} == {"MDL003"}
    assert any("FINISHED" in f.message for f in findings)


# ---------------------------------------------------------------------------
# Mutation fixtures: every MDL rule is live, and fires alone
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fixture, rule", [
    ("mdl001", "MDL001"),   # deleted ack handler
    ("mdl002", "MDL002"),   # dropped timeout edge
    ("mdl003", "MDL003"),   # handshake flag deadlock
    ("mdl004", "MDL004"),   # unbounded retry cycle
    ("mdl005", "MDL005"),   # queue grown, never drained
])
def test_mutation_fixture_fires_exactly_one_rule(fixture, rule):
    findings = analyze([VERIFY_FIXTURES / fixture], rule_filter=["model"])
    assert findings, f"{fixture} fired nothing"
    assert {f.rule for f in findings} == {rule}, \
        "\n".join(f.render() for f in findings)


def test_verify_cli_reports_fixture_violation(capsys):
    assert main(["verify", str(VERIFY_FIXTURES / "mdl004")]) == 1
    assert "MDL004" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The netsim wire trace log
# ---------------------------------------------------------------------------

def test_tracelog_records_and_roundtrips(tmp_path):
    bed = two_nets()
    log = bed.record_wire_trace()
    client = bed.module("client", "sun1")
    echo_server(bed, "srv", "apollo1")
    uadd = client.ali.locate("srv")
    reply = client.ali.call(uadd, "echo", {"n": 1, "text": "hi"})
    assert reply.values["text"] == "HI"
    assert len(log) > 0
    event = log.events[0]
    assert event["op"] == "frame"
    assert {"src", "dst", "protocol", "size", "dropped",
            "frames"} <= set(event["args"])
    path = log.dump_jsonl(tmp_path / "trace.jsonl")
    assert NetTraceLog.load_jsonl(path) == log.events


def test_tracelog_sees_dropped_frames():
    bed = two_nets()
    log = bed.record_wire_trace()
    client = bed.module("client", "sun1")
    echo_server(bed, "srv", "vax1")
    uadd = client.ali.locate("srv")
    client.ali.call(uadd, "echo", {"n": 0, "text": "warm"})
    bed.networks["ether0"].faults.drop_next(2)
    client.ali.call(uadd, "echo", {"n": 1, "text": "again"},
                    timeout=120.0)
    assert any(e["args"]["dropped"] for e in log.events)


# ---------------------------------------------------------------------------
# Trace conformance: live chaos traces replay with zero unmodeled
# transitions; corrupted traces are flagged
# ---------------------------------------------------------------------------

def _chaos_trace(seed: int, tmp_path: Path) -> Path:
    bed = chain_nets(2, config=NucleusConfig(chaos_seed=seed,
                                             repair_max_attempts=8))
    log = bed.record_wire_trace()
    echo_server(bed, "far.echo", "mEnd")
    client = bed.module("client", "m0")
    uadd = client.ali.locate("far.echo")
    client.ali.call(uadd, "echo", {"n": 0, "text": "warm"})
    schedule = (ChaosSchedule(seed=seed)
                .crash(bed.now + 0.005, "gwm0")
                .restart(bed.now + 0.35, "gwm0")
                .add(bed.now + 0.01, "drop_probability", "net1", p=0.3)
                .add(bed.now + 0.4, "clear_faults", "net1"))
    bed.chaos(schedule)
    for i in range(1, 4):
        try:
            client.ali.call(uadd, "echo", {"n": i, "text": "mid"},
                            timeout=120.0)
        except Exception:
            pass  # a lost call is chaos working; conformance is per-frame
    return log.dump_jsonl(tmp_path / f"chaos-{seed}.jsonl")


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_chaos_trace_replays_clean(seed, tmp_path):
    path = _chaos_trace(seed, tmp_path)
    findings = check_trace(str(path), _model())
    assert findings == [], "\n".join(f.render() for f in findings)


def _frame_event(frame_hex: str) -> str:
    return json.dumps({
        "at": 0.0, "op": "frame", "target": "ether0",
        "args": {"src": "h1", "dst": "h2", "protocol": "tcp",
                 "size": 64, "dropped": False, "frames": [frame_hex]},
    })


def _frame_hex(kind: int) -> str:
    msg = m.Msg(kind=kind, src=Address(1), dst=Address(2))
    return msg.encode().hex()


def test_corrupted_trace_fires_trc001(tmp_path):
    # DATA before any HELLO on the hop: a transition outside the model.
    path = tmp_path / "bad.jsonl"
    path.write_text(_frame_event(_frame_hex(m.DATA)) + "\n")
    findings = check_trace(str(path), _model())
    assert [f.rule for f in findings] == ["TRC001"]
    assert "lvc" in findings[0].message


def test_unknown_kind_fires_trc002(tmp_path):
    path = tmp_path / "weird.jsonl"
    path.write_text(_frame_event(_frame_hex(99)) + "\n")
    findings = check_trace(str(path), _model())
    assert [f.rule for f in findings] == ["TRC002"]


def test_verify_cli_with_traces(tmp_path, capsys):
    good = _chaos_trace(0, tmp_path)
    assert main(["verify", str(SRC_TREE), "--trace", str(good)]) == 0
    capsys.readouterr()
    bad = tmp_path / "bad.jsonl"
    bad.write_text(_frame_event(_frame_hex(m.DATA)) + "\n")
    assert main(["verify", str(SRC_TREE), "--trace", str(good),
                 "--trace", str(bad)]) == 1
    assert "TRC001" in capsys.readouterr().out


def test_verify_cli_missing_trace_is_usage_error(capsys):
    assert main(["verify", str(SRC_TREE),
                 "--trace", "/no/such/trace.jsonl"]) == 2
    assert "no such trace" in capsys.readouterr().err
