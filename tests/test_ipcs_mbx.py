"""Unit tests for the simulated Apollo MBX IPCS."""

import pytest

from repro.errors import AddressInUse, ChannelClosed, ConnectionRefused, NetworkUnreachable
from repro.ipcs import SimMbxIpcs
from repro.machine import SimProcess


@pytest.fixture
def pair(sched, ring, apollo1, apollo2):
    """Mailbox server on apollo2; client process on apollo1."""
    server_proc = SimProcess(apollo2, "mbx-server")
    client_proc = SimProcess(apollo1, "mbx-client")
    server_ipcs = apollo2.ipcs_for("ring0", "mbx")
    client_ipcs = apollo1.ipcs_for("ring0", "mbx")
    listener = server_ipcs.listen(server_proc, "/mbx/service")
    return client_proc, client_ipcs, server_proc, listener


def test_address_blob_is_pathname(pair):
    _, _, _, listener = pair
    assert listener.address_blob() == "mbx:ring0://apollo2/mbx/service"
    assert SimMbxIpcs.parse_blob("mbx:ring0://apollo2/mbx/service") == (
        "ring0", "apollo2", "/mbx/service",
    )


def test_parse_blob_rejects_tcp():
    with pytest.raises(ValueError):
        SimMbxIpcs.parse_blob("tcp:ether0:sun1:5000")


def test_open_and_exchange(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    assert channel.open
    got = []
    accepted[0].set_receive_handler(got.append)
    channel.send(b"record-1")
    sched.run_until_idle()
    assert got == [b"record-1"]


def test_record_boundaries_preserved(sched, pair):
    """Unlike TCP, MBX must deliver one record per send — never
    coalesced."""
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    got = []
    accepted[0].set_receive_handler(got.append)
    channel.send(b"abc")
    channel.send(b"def")
    sched.run_until_idle()
    assert got == [b"abc", b"def"]  # two records, not one chunk


def test_open_nak_when_no_mailbox(pair):
    client_proc, client_ipcs, _, _ = pair
    with pytest.raises(ConnectionRefused, match="no such mailbox"):
        client_ipcs.connect(client_proc, "mbx:ring0://apollo2/mbx/ghost")


def test_open_timeout_when_host_crashed(pair, apollo2):
    client_proc, client_ipcs, _, listener = pair
    apollo2.crash()
    with pytest.raises(ConnectionRefused, match="timed out"):
        client_ipcs.connect(client_proc, listener.address_blob(), timeout=0.5)


def test_wrong_network_unreachable(pair):
    client_proc, client_ipcs, _, _ = pair
    with pytest.raises(NetworkUnreachable):
        client_ipcs.connect(client_proc, "mbx:otherring://apollo2/mbx/service")


def test_mailbox_name_collision(pair, apollo2):
    proc = SimProcess(apollo2, "p2")
    with pytest.raises(AddressInUse):
        apollo2.ipcs_for("ring0", "mbx").listen(proc, "/mbx/service")


def test_auto_mailbox_names_unique(apollo1):
    proc = SimProcess(apollo1, "p")
    ipcs = apollo1.ipcs_for("ring0", "mbx")
    l1 = ipcs.listen(proc)
    l2 = ipcs.listen(proc)
    assert l1.binding != l2.binding


def test_lost_record_aborts_channel_no_retransmit(sched, ring, pair):
    """MBX does not retransmit: a lost record kills the channel."""
    client_proc, client_ipcs, _, listener = pair
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    reasons = []
    channel.set_close_handler(reasons.append)
    ring.faults.drop_next(1)
    channel.send(b"doomed")
    sched.run_until_idle()
    assert reasons == ["record not acknowledged"]
    with pytest.raises(ChannelClosed):
        channel.send(b"after")


def test_close_notifies_peer(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    reasons = []
    accepted[0].set_close_handler(reasons.append)
    channel.close()
    sched.run_until_idle()
    assert reasons == ["closed by peer"]


def test_server_process_death_closes_client_channel(sched, pair):
    client_proc, client_ipcs, server_proc, listener = pair
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    reasons = []
    channel.set_close_handler(reasons.append)
    server_proc.kill()
    sched.run_until_idle()
    assert reasons
    assert not channel.open


def test_bidirectional_records(sched, pair):
    client_proc, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    channel = client_ipcs.connect(client_proc, listener.address_blob())
    client_got = []
    channel.set_receive_handler(client_got.append)
    accepted[0].send(b"from-server")
    sched.run_until_idle()
    assert client_got == [b"from-server"]


def test_many_clients_one_mailbox(sched, pair, apollo1):
    _, client_ipcs, _, listener = pair
    accepted = []
    listener.on_accept = accepted.append
    clients = []
    for i in range(5):
        proc = SimProcess(apollo1, f"client{i}")
        clients.append(client_ipcs.connect(proc, listener.address_blob()))
    assert len(accepted) == 5
    got = []
    for server_channel in accepted:
        server_channel.set_receive_handler(got.append)
    for i, chan in enumerate(clients):
        chan.send(f"hello-{i}".encode())
    sched.run_until_idle()
    assert sorted(got) == [f"hello-{i}".encode() for i in range(5)]
