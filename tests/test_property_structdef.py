"""Property tests over *random structure definitions*: the code
generator must produce correct codecs for any legal StructDef, and
image mode must round-trip on any single machine."""

import string

from hypothesis import given, settings, strategies as st

from repro.conversion import Field, StructDef, build_codecs
from repro.machine import APOLLO, IBM_PC, SUN3, VAX

_SCALAR_TYPES = ["i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64", "f64"]

_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def struct_defs(draw):
    """A random legal StructDef plus a matching values dict."""
    n_fields = draw(st.integers(0, 8))
    fields = []
    values = {}
    used = set()
    for i in range(n_fields):
        name = f"f{i}_{draw(_names)}"
        if name in used:
            continue
        used.add(name)
        kind = draw(st.sampled_from(["scalar", "char"]))
        if kind == "scalar":
            ftype = draw(st.sampled_from(_SCALAR_TYPES))
            fields.append(Field(name, ftype))
            if ftype == "f64":
                values[name] = draw(st.floats(allow_nan=False,
                                              allow_infinity=False,
                                              width=64))
            else:
                signed = ftype.startswith("i")
                bits = int(ftype[1:])
                low = -(2 ** (bits - 1)) if signed else 0
                high = 2 ** (bits - 1) - 1 if signed else 2 ** bits - 1
                values[name] = draw(st.integers(low, high))
        else:
            size = draw(st.integers(1, 16))
            fields.append(Field(name, f"char[{size}]"))
            text = draw(st.text(
                alphabet=st.characters(min_codepoint=1, max_codepoint=126),
                max_size=size))
            values[name] = text
    if draw(st.booleans()):
        fields.append(Field("tail", "bytes"))
        values["tail"] = draw(st.binary(max_size=32))
    sdef = StructDef("random_struct", 100, fields)
    return sdef, values


@settings(max_examples=150, deadline=None)
@given(data=struct_defs())
def test_property_generated_codecs_round_trip_any_struct(data):
    sdef, values = data
    pack, unpack, source = build_codecs(sdef)
    compile(source, "<gen>", "exec")  # generated source is valid Python
    assert unpack(pack(values)) == values


@settings(max_examples=150, deadline=None)
@given(data=struct_defs(),
       mtype=st.sampled_from([VAX, SUN3, APOLLO, IBM_PC]))
def test_property_image_round_trips_on_any_single_machine(data, mtype):
    sdef, values = data
    image = sdef.image_encode(values, mtype.struct_prefix)
    assert sdef.image_decode(image, mtype.struct_prefix) == values


@settings(max_examples=100, deadline=None)
@given(data=struct_defs())
def test_property_packed_equals_image_semantics_across_machines(data):
    """Encoding on a VAX and unpacking the packed form yields exactly
    the same values as the local image round trip — conversion is
    lossless for every legal structure."""
    sdef, values = data
    pack, unpack, _ = build_codecs(sdef)
    vax_image = sdef.image_encode(values, VAX.struct_prefix)
    via_wire = unpack(pack(sdef.image_decode(vax_image, VAX.struct_prefix)))
    assert via_wire == values
