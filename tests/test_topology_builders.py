"""Tests for the standard topology builders."""

import pytest

from deployments import echo_server, register_app_types
from repro import Testbed
from repro.netsim.topology import build_chain, build_clique, build_star


def test_build_chain_connects_ends():
    bed = Testbed()
    build_chain(bed, hops=2)
    register_app_types(bed)
    echo_server(bed, "far", "mEnd")
    client = bed.module("client", "m0")
    uadd = client.ali.locate("far")
    assert client.ali.call(uadd, "echo",
                           {"n": 1, "text": "x"}).values["text"] == "X"
    assert len(bed.gateways) == 2


def test_build_star_spoke_to_spoke():
    bed = Testbed()
    build_star(bed, spokes=3)
    register_app_types(bed)
    echo_server(bed, "svc", "leaf1")
    client = bed.module("client", "leaf2")
    uadd = client.ali.locate("svc")
    assert client.ali.call(uadd, "echo",
                           {"n": 1, "text": "s"}).values["text"] == "S"


def test_build_clique_has_direct_routes():
    bed = Testbed()
    build_clique(bed, size=3)
    register_app_types(bed)
    echo_server(bed, "svc", "host2")
    client = bed.module("client", "host1")
    uadd = client.ali.locate("svc")
    assert client.ali.call(uadd, "echo",
                           {"n": 1, "text": "c"}).values["text"] == "C"
    # The direct net1-net2 gateway carried it (one splice), not a
    # two-hop detour via net0.
    assert bed.gateways["gw1_2"].circuits_established >= 1


def test_clique_survives_any_single_gateway_loss():
    bed = Testbed()
    build_clique(bed, size=3)
    register_app_types(bed)
    echo_server(bed, "svc", "host2")
    client = bed.module("client", "host1")
    uadd = client.ali.locate("svc")
    client.ali.call(uadd, "echo", {"n": 1, "text": "warm"})
    bed.gateways["gw1_2"].process.kill()  # the direct route dies
    bed.settle()
    reply = client.ali.call(uadd, "echo", {"n": 2, "text": "detour"})
    assert reply.values["text"] == "DETOUR"
