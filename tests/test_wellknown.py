"""Unit tests for the well-known address table (Sec. 3.4)."""

from repro.ntcs.address import Address, NAME_SERVER_UADD, make_uadd
from repro.ntcs.wellknown import WellKnownTable


def test_default_ns_uadd_is_the_convention():
    table = WellKnownTable()
    assert table.ns_uadd == NAME_SERVER_UADD


def test_ns_blob_per_network():
    table = WellKnownTable()
    table.add_name_server_blob("tcp:ether0:vax1:411")
    table.add_name_server_blob("mbx:ring0://vax1/mbx/ns")
    assert table.blob_for(table.ns_uadd, "ether0") == "tcp:ether0:vax1:411"
    assert table.blob_for(table.ns_uadd, "ring0") == "mbx:ring0://vax1/mbx/ns"
    assert table.blob_for(table.ns_uadd, "elsewhere") is None
    assert table.ns_networks() == ["ether0", "ring0"]
    assert table.ns_reachable_directly("ether0")
    assert not table.ns_reachable_directly("ring9")


def test_only_the_name_server_is_well_known():
    table = WellKnownTable()
    table.add_name_server_blob("tcp:ether0:vax1:411")
    assert table.blob_for(make_uadd(99), "ether0") is None


def test_prime_gateways_are_plural_and_rotate():
    table = WellKnownTable()
    assert table.prime_gateway_blob("ring0") is None
    assert table.prime_gateway_count("ring0") == 0
    table.add_prime_gateway("ring0", "mbx:ring0://gwa/mbx/gw")
    table.add_prime_gateway("ring0", "mbx:ring0://gwb/mbx/gw")
    assert table.prime_gateway_count("ring0") == 2
    assert table.prime_gateway_blob("ring0", 0).endswith("gwa/mbx/gw")
    assert table.prime_gateway_blob("ring0", 1).endswith("gwb/mbx/gw")
    # Index wraps: failure rotation can increment forever.
    assert table.prime_gateway_blob("ring0", 2).endswith("gwa/mbx/gw")


def test_custom_ns_uadd():
    custom = Address(value=77)
    table = WellKnownTable(ns_uadd=custom)
    table.add_name_server_blob("tcp:ether0:host:411")
    assert table.blob_for(custom, "ether0") is not None
    assert table.blob_for(NAME_SERVER_UADD, "ether0") is None
