"""Property-based chaos: random fault schedules never corrupt delivery.

Hypothesis draws a seed, :func:`repro.netsim.chaos.random_schedule`
expands it into a fault schedule in which every fault heals before the
horizon, and the run must uphold the LCM delivery contract no matter
what was injected:

* every call either completes or raises a typed :class:`NtcsError` —
  never a bare Python exception, never a hang;
* per-sender ordering is preserved — the requests the server actually
  serves form a subsequence-free, strictly increasing prefix order;
* nothing is served twice (no duplicate deliveries);
* once every fault has healed, a final call always succeeds.

On failure the schedule JSON is printed, so the exact run replays with
``ChaosSchedule.from_json`` — the schedule, not the Hypothesis seed, is
the repro artifact.
"""

from collections import Counter
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from deployments import chain_nets
from repro.errors import NtcsError
from repro.netsim import random_schedule
from repro.ntcs.nucleus import NucleusConfig

# One gateway between two networks: restartable, and partitionable on
# either side.  Small enough that 20 examples stay fast; rich enough
# that crashes, flaps, partitions and drops all hit the message path.
TOPOLOGY_NETWORKS = {
    "net0": ["m0", "gwm0"],
    "net1": ["gwm0", "mEnd"],
}
HORIZON = 2.0
CALLS = 5


def _run_schedule(seed: int):
    """One full chaos run; returns (schedule, served list, errors)."""
    config = NucleusConfig(chaos_seed=seed, repair_max_attempts=8)
    bed = chain_nets(1, config=config)
    server = bed.module("prop.echo", "mEnd")
    served = []

    def handle(request):
        if request.type_name == "echo" and request.reply_expected:
            served.append(request.values["n"])
            server.ali.reply(request, "echo", {
                "n": request.values["n"],
                "text": request.values["text"].upper(),
            })

    server.ali.set_request_handler(handle)
    client = bed.module("prop.client", "m0")
    uadd = client.ali.locate("prop.echo")

    schedule = random_schedule(
        seed, horizon=HORIZON,
        restartable=["gwm0"], networks=TOPOLOGY_NETWORKS,
    )
    bed.chaos(schedule)

    errors = []
    for i in range(CALLS):
        try:
            reply = client.ali.call(uadd, "echo",
                                    {"n": i, "text": "prop"}, timeout=60.0)
            assert reply.values["n"] == i, schedule.to_json()
        except NtcsError as exc:
            # Typed failure is an allowed outcome mid-chaos.
            errors.append((i, type(exc).__name__))
        bed.run_for(HORIZON / CALLS)
    # Past the horizon every fault has healed: the system must answer.
    bed.run_for(HORIZON)
    reply = client.ali.call(uadd, "echo",
                            {"n": CALLS, "text": "final"}, timeout=60.0)
    assert reply.values["text"] == "FINAL", schedule.to_json()
    bed.settle()
    return schedule, served, errors


def _record_failure(seed: int) -> str:
    """Persist the failing schedule's replay JSON (CI uploads the
    ``chaos-failures/`` directory as an artifact) and return it."""
    text = random_schedule(seed, horizon=HORIZON, restartable=["gwm0"],
                           networks=TOPOLOGY_NETWORKS).to_json(indent=2)
    out_dir = Path("chaos-failures")
    out_dir.mkdir(exist_ok=True)
    (out_dir / f"schedule-{seed}.json").write_text(text + "\n")
    return text


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_random_fault_schedules_preserve_delivery_contract(seed):
    try:
        schedule, served, errors = _run_schedule(seed)
    except Exception:
        # Print (and persist) the replay artifact before Hypothesis
        # reports — the schedule JSON, not the Hypothesis seed, is what
        # reproduces the run.
        print("failing chaos schedule:", _record_failure(seed))
        raise
    context = schedule.to_json()
    # No duplicate deliveries, ever.
    assert len(served) == len(set(served)), context
    # Per-sender ordering: the server saw a strictly increasing
    # subsequence of what the client sent.
    assert served == sorted(served), context
    # The final post-heal call is in the served log exactly once.
    assert served.count(CALLS) == 1, context


def test_random_schedule_is_seed_deterministic():
    a = random_schedule(7, horizon=HORIZON, restartable=["gwm0"],
                        networks=TOPOLOGY_NETWORKS)
    b = random_schedule(7, horizon=HORIZON, restartable=["gwm0"],
                        networks=TOPOLOGY_NETWORKS)
    assert a.to_json() == b.to_json()
    c = random_schedule(8, horizon=HORIZON, restartable=["gwm0"],
                        networks=TOPOLOGY_NETWORKS)
    assert c.to_json() != a.to_json()


def test_random_schedule_heals_every_fault_before_horizon():
    for seed in range(12):
        schedule = random_schedule(seed, horizon=HORIZON,
                                   restartable=["gwm0"],
                                   networks=TOPOLOGY_NETWORKS, faults=4)
        open_faults = Counter()
        for event in schedule.sorted_events():
            assert event.at < HORIZON
            if event.op == "crash":
                open_faults[("m", event.target)] += 1
            elif event.op == "restart":
                open_faults[("m", event.target)] -= 1
            elif event.op == "link_down":
                open_faults[("l", event.target,
                             frozenset((event.args["a"], event.args["b"])))] += 1
            elif event.op == "link_up":
                open_faults[("l", event.target,
                             frozenset((event.args["a"], event.args["b"])))] -= 1
            elif event.op == "partition":
                open_faults[("p", event.target)] += 1
            elif event.op == "heal_partition":
                open_faults[("p", event.target)] = 0
        # drop_next self-heals (the budget drains); everything else
        # must balance out inside the horizon.
        assert not +open_faults
