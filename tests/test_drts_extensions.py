"""Tests for the DRTS extensions: the NTCS-facing process-control
server and the monitor's analysis helpers."""

import pytest

from deployments import echo_server, single_net
from repro import SUN3
from repro.drts.monitor import Monitor, enable_monitoring
from repro.drts.proctl import ProcessController, ProcessControlServer


@pytest.fixture
def bed():
    bed = single_net()
    bed.machine("sun2", SUN3, networks=["ether0"])
    return bed


def _echo_rebuild(old, new):
    def handle(request):
        if request.reply_expected:
            new.ali.reply(request, "echo", {
                "n": request.values["n"],
                "text": f"{request.values['text']}@{new.nucleus.machine.name}",
            })
    new.ali.set_request_handler(handle)


# -- process-control server -------------------------------------------------

def test_relocation_requested_over_the_ntcs(bed):
    echo_server(bed, "server", "sun1")
    controller = ProcessController(bed)
    proctl = ProcessControlServer(
        bed.module("proctl.host", "vax1", register=False), controller)
    proctl.allow("server", _echo_rebuild)

    operator = bed.module("operator", "vax1")
    proctl_uadd = operator.ali.locate("drts.proctl")
    reply = operator.ali.call(proctl_uadd, "proctl_relocate", {
        "module": "server", "target_machine": "sun2",
    })
    assert reply.values["ok"] == 1
    assert "sun2" in reply.values["detail"]
    # And the relocation really happened, visible to any client.
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("server")
    answer = client.ali.call(uadd, "echo", {"n": 1, "text": "hi"})
    assert answer.values["text"].endswith("@sun2")


def test_disallowed_relocation_refused(bed):
    bed.module("precious", "sun1")
    controller = ProcessController(bed)
    proctl = ProcessControlServer(
        bed.module("proctl.host", "vax1", register=False), controller)
    operator = bed.module("operator", "vax1")
    proctl_uadd = operator.ali.locate("drts.proctl")
    reply = operator.ali.call(proctl_uadd, "proctl_relocate", {
        "module": "precious", "target_machine": "sun2",
    })
    assert reply.values["ok"] == 0
    assert "not allowed" in reply.values["detail"]
    assert bed.modules["precious"].nucleus.machine.name == "sun1"


def test_relocation_to_unknown_machine_refused(bed):
    echo_server(bed, "server", "sun1")
    controller = ProcessController(bed)
    proctl = ProcessControlServer(
        bed.module("proctl.host", "vax1", register=False), controller)
    proctl.allow("server", _echo_rebuild)
    operator = bed.module("operator", "vax1")
    proctl_uadd = operator.ali.locate("drts.proctl")
    reply = operator.ali.call(proctl_uadd, "proctl_relocate", {
        "module": "server", "target_machine": "nonexistent",
    })
    assert reply.values["ok"] == 0


# -- monitor analysis -----------------------------------------------------

def test_monitor_summary_and_matrix(bed):
    monitor = Monitor(bed.module("mon", "sun1", register=False))
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    enable_monitoring(client)
    uadd = client.ali.locate("dest")
    for i in range(3):
        client.ali.call(uadd, "echo", {"n": i, "text": ""})
    bed.settle()
    summary = monitor.summary()
    assert summary["client"]["send"] >= 3
    assert summary["client"]["recv"] >= 3
    matrix = monitor.conversation_matrix()
    assert matrix[("client", str(uadd))] >= 6  # sends + recvs


def test_monitor_send_rate(bed):
    monitor = Monitor(bed.module("mon", "sun1", register=False))
    sink = bed.module("sink", "sun1")
    client = bed.module("client", "vax1")
    enable_monitoring(client)
    uadd = client.ali.locate("sink")
    for i in range(5):
        client.ali.send(uadd, "echo", {"n": i, "text": ""})
        bed.run_for(1.0)  # one send per virtual second
    bed.settle()
    rate = monitor.send_rate("client", msg_type="echo")
    assert rate == pytest.approx(1.0, rel=0.05)
    # Unfiltered rate also counts the naming-service sends around t=0.
    assert monitor.send_rate("client") > rate
    assert monitor.send_rate("nobody") == 0.0
