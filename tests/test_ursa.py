"""Tests for the URSA distributed information-retrieval application."""

import pytest

from deployments import single_net, two_nets
from repro import SUN3
from repro.drts.proctl import ProcessController
from repro.ursa import Corpus, deploy_ursa
from repro.ursa.protocol import decode_ids, encode_ids
from repro.ursa.search_server import QueryError, parse_query


# -- corpus ---------------------------------------------------------------

def test_corpus_is_deterministic():
    a = Corpus(n_docs=20, seed=3)
    b = Corpus(n_docs=20, seed=3)
    assert a.doc_ids() == b.doc_ids()
    assert all(a.text(d) == b.text(d) for d in a.doc_ids())
    c = Corpus(n_docs=20, seed=4)
    assert any(a.text(d) != c.text(d) for d in a.doc_ids())


def test_corpus_inverted_index():
    corpus = Corpus(n_docs=10, seed=1)
    index = corpus.build_inverted_index(corpus.doc_ids())
    term, postings = next(iter(sorted(index.items())))
    assert postings == sorted(set(postings))
    for doc_id in postings:
        assert term in corpus.tokenize(corpus.text(doc_id))


def test_corpus_common_terms_are_frequent():
    corpus = Corpus(n_docs=50, seed=2)
    common = corpus.common_terms(5)
    index = corpus.build_inverted_index(corpus.doc_ids())
    rare_lengths = sorted(len(p) for p in index.values())
    assert len(index[common[0]]) >= rare_lengths[len(rare_lengths) // 2]


def test_id_codec():
    assert decode_ids(encode_ids([1, 2, 30])) == [1, 2, 30]
    assert decode_ids(encode_ids([])) == []


# -- query parser ----------------------------------------------------------

def test_parse_simple_term():
    assert parse_query("dog") == ("term", "dog")


def test_parse_precedence():
    # NOT > AND > OR
    ast = parse_query("a OR b AND NOT c")
    assert ast == ("or", ("term", "a"),
                   ("and", ("term", "b"), ("not", ("term", "c"))))


def test_parse_parentheses():
    ast = parse_query("( a OR b ) AND c")
    assert ast == ("and", ("or", ("term", "a"), ("term", "b")), ("term", "c"))


@pytest.mark.parametrize("bad", ["", "AND", "a AND", "( a", "a )", "a b"])
def test_parse_errors(bad):
    with pytest.raises(QueryError):
        parse_query(bad)


# -- the distributed system -------------------------------------------------

@pytest.fixture
def system():
    bed = single_net()
    bed.machine("sun2", SUN3, networks=["ether0"])
    corpus = Corpus(n_docs=60, seed=11)
    ursa = deploy_ursa(
        bed, corpus,
        index_machines=["sun1", "sun2"],
        search_machine="sun1",
        docs_machine="sun2",
        host_machines=["vax1"],
    )
    return bed, ursa


def test_search_matches_local_truth(system):
    bed, ursa = system
    corpus = ursa.corpus
    term = corpus.common_terms(1)[0]
    host = ursa.hosts[0]
    hits = host.search(term)
    truth = corpus.build_inverted_index(corpus.doc_ids()).get(term, [])
    assert hits == truth
    assert hits  # a common term matches something


def test_boolean_queries_against_truth(system):
    bed, ursa = system
    corpus = ursa.corpus
    index = corpus.build_inverted_index(corpus.doc_ids())
    t1, t2 = corpus.common_terms(2)
    host = ursa.hosts[0]
    assert host.search(f"{t1} AND {t2}") == sorted(
        set(index.get(t1, [])) & set(index.get(t2, [])))
    assert host.search(f"{t1} OR {t2}") == sorted(
        set(index.get(t1, [])) | set(index.get(t2, [])))
    assert host.search(f"{t1} AND NOT {t2}") == sorted(
        set(index.get(t1, [])) - set(index.get(t2, [])))


def test_sharding_covers_whole_corpus(system):
    bed, ursa = system
    shard_sizes = [len(s.index) for s in ursa.index_servers]
    assert all(size > 0 for size in shard_sizes)
    # Each shard holds only its own documents.
    for server in ursa.index_servers:
        for postings in server.index.values():
            assert all(d % 2 == server.shard for d in postings)


def test_fetch_documents(system):
    bed, ursa = system
    host = ursa.hosts[0]
    term = ursa.corpus.common_terms(1)[0]
    results = host.search_and_fetch(term, limit=3)
    assert results
    for doc_id, text in results:
        assert text == ursa.corpus.text(doc_id)
        assert term in ursa.corpus.tokenize(text)
    assert host.fetch(99999) is None


def test_unknown_term_returns_empty(system):
    bed, ursa = system
    assert ursa.hosts[0].search("zzzzunknown") == []


def test_search_fans_out_to_all_shards(system):
    bed, ursa = system
    host = ursa.hosts[0]
    host.search(ursa.corpus.common_terms(1)[0])
    assert all(s.requests >= 1 for s in ursa.index_servers)


def test_ursa_across_networks():
    """The system distributed across the ethernet and the Apollo ring —
    index lookups cross the gateway inside search handling."""
    bed = two_nets()
    corpus = Corpus(n_docs=40, seed=5)
    ursa = deploy_ursa(
        bed, corpus,
        index_machines=["apollo1", "apollo2"],
        search_machine="sun1",
        docs_machine="apollo1",
        host_machines=["vax1"],
    )
    host = ursa.hosts[0]
    term = corpus.common_terms(1)[0]
    truth = corpus.build_inverted_index(corpus.doc_ids()).get(term, [])
    assert host.search(term) == truth
    assert bed.scheduler.max_pump_depth_seen >= 2  # nested blocking


def test_index_server_relocation_transparent_to_search(system):
    """Move an index shard mid-run; searches keep answering correctly
    (the search server's cached UAdd forwards)."""
    bed, ursa = system
    host = ursa.hosts[0]
    corpus = ursa.corpus
    term = corpus.common_terms(1)[0]
    truth = corpus.build_inverted_index(corpus.doc_ids()).get(term, [])
    assert host.search(term) == truth

    controller = ProcessController(bed)
    shard0 = ursa.index_servers[0]

    def rebuild(old, new):
        from repro.ursa.protocol import encode_ids

        def handle(request):
            if request.type_name == "index_lookup" and request.reply_expected:
                postings = shard0.index.get(request.values["term"].lower(), [])
                new.ali.reply(request, "index_posting", {
                    "term": request.values["term"],
                    "count": len(postings),
                    "postings": encode_ids(postings),
                })

        new.ali.set_request_handler(handle)

    controller.relocate("ursa.index.0", "vax1", rebuild=rebuild)
    assert host.search(term) == truth
