"""Integration tests for recursion in the NTCS (paper Sec. 6): the
Sec. 6.1 first-send scenario, layer tracing, and the Sec. 6.3 runaway
Name-Server recursion with and without the LCM patch."""

import pytest

from deployments import echo_server, register_app_types, single_net
from repro import SUN3, Testbed, VAX
from repro.drts.monitor import Monitor, enable_monitoring
from repro.drts.timeservice import TimeServer, enable_time_correction
from repro.errors import NameServerUnreachable, RecursionLimitExceeded
from repro.ntcs.nucleus import NucleusConfig
from repro.util.trace import LayerTracer


def _scenario_bed():
    """single_net plus monitor and time-server modules."""
    bed = single_net()
    monitor = Monitor(bed.module("mon.host", "sun1", register=False))
    time_server = TimeServer(bed.module("time.host", "vax1", register=False))
    return bed, monitor, time_server


def test_first_send_scenario_recurses(monkeypatch=None):
    """Sec. 6.1: a first send with monitoring and time correction
    enabled recursively invokes the ComMod for time service, resource
    location, and monitor data."""
    bed, monitor, time_server = _scenario_bed()
    echo_server(bed, "dest", "sun1")
    plain = bed.module("plain.client", "vax1")
    client = bed.module("client", "vax1")
    enable_monitoring(client)
    time_client = enable_time_correction(client)

    # The identical cold send from an uninstrumented client, for scale.
    plain_uadd = plain.ali.locate("dest")
    plain.ali.call(plain_uadd, "echo", {"n": 0, "text": "plain"})

    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 1, "text": "cold"})
    bed.settle()

    assert time_client.syncs >= 1          # recursive time exchange ran
    assert monitor.count("send") >= 1      # monitor data delivered
    # Monitoring + time make the instrumented module's Nucleus re-enter
    # more deeply than the plain one's.
    assert client.nucleus.max_depth_seen > plain.nucleus.max_depth_seen


def test_blocking_handler_nests_pumps():
    """A server whose handler performs its own blocking call (the
    URSA search-server shape) re-enters the event pump while the
    client's pump is active — genuine nested blocking."""
    bed = single_net()
    echo_server(bed, "inner", "sun1")
    outer = bed.module("outer", "sun1")

    def outer_handler(request):
        inner_uadd = outer.ali.locate("inner")        # blocks inside pump
        inner_reply = outer.ali.call(inner_uadd, "echo", {
            "n": request.values["n"], "text": request.values["text"],
        })
        outer.ali.reply(request, "echo", {
            "n": inner_reply.values["n"],
            "text": "outer+" + inner_reply.values["text"],
        })

    outer.ali.set_request_handler(outer_handler)
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("outer")
    reply = client.ali.call(uadd, "echo", {"n": 1, "text": "deep"})
    assert reply.values["text"] == "outer+DEEP"
    assert bed.scheduler.max_pump_depth_seen >= 2


def test_warm_send_recurses_less_than_cold():
    bed, monitor, time_server = _scenario_bed()
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    enable_monitoring(client)
    enable_time_correction(client, refresh_interval=3600.0)

    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 1, "text": "cold"})
    cold_nsp_calls = client.nucleus.counters["nsp_calls"]
    client.ali.call(uadd, "echo", {"n": 2, "text": "warm"})
    warm_nsp_calls = client.nucleus.counters["nsp_calls"] - cold_nsp_calls
    assert warm_nsp_calls == 0  # everything located and cached


def test_monitor_sends_do_not_recurse_into_monitoring():
    """"time correction and monitoring are disabled here, to avoid the
    obvious infinite recursion" (Sec. 6.1)."""
    bed, monitor, time_server = _scenario_bed()
    sink = bed.module("sink", "sun1")
    client = bed.module("client", "vax1")
    mon_client = enable_monitoring(client)
    uadd = client.ali.locate("sink")
    client.ali.send(uadd, "echo", {"n": 1, "text": "x"})
    bed.settle()
    reported = mon_client.reported
    assert reported >= 1
    # Monitor events report the application send, not the monitor's own
    # datagrams (which would diverge).
    assert all(e["msg_type"] != "monitor_event" for e in monitor.events)


def test_layer_trace_matches_architecture():
    """E1: one send traverses ALI → LCM → IP → ND, top down — the
    paper's Figs. 2-1…2-4 layering, observed rather than asserted."""
    config = NucleusConfig(trace=True)
    bed = single_net(config=config)
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    client.nucleus.tracer.clear()
    client.ali.send(uadd, "echo", {"n": 1, "text": "x"})
    layers = [r.layer for r in client.nucleus.tracer.records
              if r.phase == "enter"]
    # Order of first appearance must be top-down.
    first_idx = {layer: layers.index(layer)
                 for layer in ("ALI", "LCM", "IP", "ND") if layer in layers}
    assert set(first_idx) == {"ALI", "LCM", "IP", "ND"}
    assert first_idx["ALI"] < first_idx["LCM"] < first_idx["IP"] < first_idx["ND"]


def test_trace_records_caller_and_reason():
    """Sec. 6.2: "one must also know *why* a layer is being called, and
    *who* is calling it"."""
    config = NucleusConfig(trace=True)
    bed = single_net(config=config)
    client = bed.module("client", "vax1")
    records = client.nucleus.tracer.records
    ali_records = [r for r in records if r.layer == "ALI"]
    assert any(r.caller == "application" for r in ali_records)
    assert any(r.reason for r in records)


def test_trace_selectivity():
    """Sec. 6.2 asks for "adequate selectivity": layer filters."""
    bed = single_net()
    client = bed.module("client", "vax1", register=False)
    tracer = LayerTracer(clock=lambda: bed.scheduler.now, layers={"LCM"})
    client.nucleus.tracer = tracer
    client.ali.register("client")
    assert tracer.records
    assert all(r.layer == "LCM" for r in tracer.records)


# -- the Sec. 6.3 pathological case --------------------------------------------

def _ns_loop_bed(patch: bool):
    config = NucleusConfig(ns_fault_patch=patch, open_timeout=0.5,
                           call_timeout=1.0, recursion_limit=48)
    bed = single_net(config=config)
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1", config=NucleusConfig(
        ns_fault_patch=patch, open_timeout=0.5, call_timeout=1.0,
        recursion_limit=48))
    return bed, client


def test_unpatched_ns_circuit_break_recurses_to_stack_overflow():
    """Sec. 6.3 verbatim: the broken Name-Server circuit sends the
    unpatched LCM through ND → LCM trap → NSP → ND ... "until either
    the stack overflows, or the connection can be reestablished"."""
    bed, client = _ns_loop_bed(patch=False)
    client.ali.ping_name_server()
    # Break the NS circuit and keep the NS unreachable.
    bed.networks["ether0"].faults.sever("vax1", "vax1")  # no-op guard
    bed.networks["ether0"].faults.partition({"vax1"}, {"sun1"})
    # vax1 hosts both client and NS... partition within one host is
    # impossible; instead kill the NS listener by crashing its process
    # while keeping the machine up.
    bed.networks["ether0"].faults.heal_partition()
    bed.name_server_instance.process.kill()
    bed.settle()
    with pytest.raises(RecursionLimitExceeded):
        client.ali.locate("dest")
    assert client.nucleus.max_depth_seen >= 40


def test_unpatched_recursion_unwinds_if_ns_comes_back():
    """The other arm of "whichever occurs first": if the connection can
    be reestablished mid-recursion, the stack unwinds successfully."""
    bed, client = _ns_loop_bed(patch=False)
    client.ali.ping_name_server()
    # Make exactly the next few connection attempts fail, then recover.
    ns_host = bed.name_server_instance.nucleus.machine.name
    client.nucleus.lcm._drop_route(bed.wellknown.ns_uadd)
    bed.settle()
    bed.networks["ether0"].faults.drop_next(6)  # a few SYNs vanish
    uadd = client.ali.locate("dest")  # recurses, then succeeds
    assert uadd is not None
    assert client.nucleus.max_depth_seen > 4


def test_patched_ns_fault_is_bounded():
    """With the LCM patch the same failure yields a clean, bounded
    NameServerUnreachable instead of runaway recursion."""
    bed, client = _ns_loop_bed(patch=True)
    client.ali.ping_name_server()
    bed.name_server_instance.process.kill()
    bed.settle()
    with pytest.raises(NameServerUnreachable):
        client.ali.locate("dest")
    assert client.nucleus.counters["ns_fault_patch_hits"] >= 1
    assert client.nucleus.max_depth_seen < 20


def test_patched_ns_fault_recovers_when_ns_returns():
    bed, client = _ns_loop_bed(patch=True)
    client.ali.ping_name_server()
    client.nucleus.lcm._drop_route(bed.wellknown.ns_uadd)
    bed.settle()
    bed.networks["ether0"].faults.drop_next(2)
    uadd = client.ali.locate("dest")
    assert uadd is not None


def test_recursion_limit_is_configurable():
    config = NucleusConfig(recursion_limit=3)
    bed = Testbed(config=config)
    bed.network("ether0", protocol="tcp")
    bed.machine("vax1", VAX, networks=["ether0"])
    bed.name_server("vax1")
    register_app_types(bed)
    # Even registration (ALI→NSP→LCM→IP→ND) exceeds a limit of 3.
    with pytest.raises(RecursionLimitExceeded):
        bed.module("client", "vax1")
