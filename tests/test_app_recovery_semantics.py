"""Application-level recovery semantics (paper Sec. 3.5): the NTCS
recovers *communication*, never application state — "recovery from this
type of failure belongs in the area of transaction management, and not
in the NTCS"."""

import pytest

from deployments import single_net
from repro import SUN3
from repro.drts.proctl import ProcessController
from repro.errors import NtcsError
from repro.wm import WindowClient, WindowManager, register_wm_types
from repro.ursa import Corpus, deploy_ursa


def test_window_state_is_lost_on_wm_relocation_and_rebuilt_by_client():
    """Relocating the window manager gives a fresh, empty display: the
    NTCS forwarded the circuits, but window contents are application
    state, which the application must rebuild (Sec. 3.5's "module-level
    recovery mechanism")."""
    bed = single_net()
    bed.machine("sun2", SUN3, networks=["ether0"])
    register_wm_types(bed.registry)
    wm_holder = [WindowManager(bed.module("wm.host", "sun1",
                                          register=False))]
    # WindowManager registers under its service name, not the process
    # name: relocate by the *registered* name.
    bed.modules["drts.windows"] = wm_holder[0].commod

    app = bed.module("app", "vax1")
    client = WindowClient(app)
    wid = client.create("stateful", width=20, height=2)
    client.write(wid, 0, "precious state")

    controller = ProcessController(bed)

    def rebuild(old, new):
        wm_holder.append(WindowManager.attach(new))

    controller.relocate("drts.windows", "sun2", rebuild=rebuild)

    # The old window is gone (fresh display) — the NTCS did not and
    # must not preserve it.
    assert client.snapshot(wid) is None
    # The application recovers by recreating its windows.
    new_wid = client.create("stateful", width=20, height=2)
    client.write(new_wid, 0, "rebuilt state")
    _, rows = client.snapshot(new_wid)
    assert rows[0] == "rebuilt state"


def test_ursa_backend_stats_survey():
    bed = single_net()
    bed.machine("sun2", SUN3, networks=["ether0"])
    corpus = Corpus(n_docs=20, seed=2)
    ursa = deploy_ursa(
        bed, corpus,
        index_machines=["sun1", "sun2"],
        search_machine="sun1",
        docs_machine="sun2",
        host_machines=["vax1"],
    )
    host = ursa.hosts[0]
    term = corpus.common_terms(1)[0]
    host.search(term)
    host.fetch(corpus.doc_ids()[0])
    stats = dict(
        (name, (requests, items))
        for name, requests, items in host.backend_stats()
    )
    assert stats["ursa.index.0"][0] >= 1
    assert stats["ursa.index.1"][0] >= 1
    assert stats["ursa.search"][0] == 1
    assert stats["ursa.docs"] == (1, 20)
