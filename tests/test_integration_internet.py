"""Integration tests for the portable internet scheme (paper Sec. 4):
chained IVCs, gateway autonomy, teardown propagation."""

import pytest

from deployments import chain_nets, echo_server, two_nets
from repro.errors import DestinationUnavailable, RouteNotFound


def test_direct_ivc_on_same_network():
    bed = two_nets()
    echo_server(bed, "echo", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("echo")
    client.ali.call(uadd, "echo", {"n": 1, "text": "x"})
    assert client.nucleus.counters["ivc_direct_opened"] >= 1
    assert client.nucleus.counters["ivc_chained_opened"] == 0


def test_chained_ivc_through_one_gateway():
    bed = two_nets()
    echo_server(bed, "ring.echo", "apollo1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("ring.echo")
    reply = client.ali.call(uadd, "echo", {"n": 7, "text": "thru"})
    assert reply.values["text"] == "THRU"
    assert client.nucleus.counters["ivc_chained_opened"] >= 1
    gw = bed.gateways["gw1"]
    assert gw.circuits_established >= 1
    assert gw.messages_forwarded > 0


@pytest.mark.parametrize("hops", [1, 2, 3, 4])
def test_chained_ivc_through_n_gateways(hops):
    """One circuit across a chain of ``hops`` gateways."""
    bed = chain_nets(hops)
    echo_server(bed, "far.echo", "mEnd")
    client = bed.module("client", "m0")
    uadd = client.ali.locate("far.echo")
    reply = client.ali.call(uadd, "echo", {"n": hops, "text": "far"})
    assert reply.values["text"] == "FAR"
    # Every gateway on the path spliced exactly one circuit for this
    # conversation (they may also carry naming traffic).
    for i in range(hops):
        assert bed.gateways[f"gwm{i}"].circuits_established >= 1


def test_no_inter_gateway_control_plane():
    """Sec. 4.2: "no inter-gateway communication ever takes place" —
    there is no routing protocol between gateways, only circuits."""
    bed = chain_nets(3)
    echo_server(bed, "far.echo", "mEnd")
    client = bed.module("client", "m0")
    uadd = client.ali.locate("far.echo")
    client.ali.call(uadd, "echo", {"n": 0, "text": "x"})
    for gw in bed.gateways.values():
        assert gw.inter_gateway_control_messages == 0


def test_end_to_end_machine_type_across_gateway():
    """Conversion mode must reflect the *end-to-end* pair, not the
    gateway hops: VAX client → (Apollo gateway) → Apollo server must
    still be packed (VAX vs Apollo), and Sun client → Apollo server
    image, regardless of what the gateway machine is."""
    bed = two_nets()
    sink = bed.module("ring.sink", "apollo1")
    vax_client = bed.module("vax.client", "vax1")
    sun_client = bed.module("sun.client", "sun1")
    uadd = vax_client.ali.locate("ring.sink")
    vax_client.ali.send(uadd, "numbers", {"a": 0x01020304, "b": -2, "big": 2 ** 40})
    sun_client.ali.send(uadd, "numbers", {"a": 0x01020304, "b": -2, "big": 2 ** 40})
    bed.settle()
    first = sink.ali.receive(timeout=1.0)
    second = sink.ali.receive(timeout=1.0)
    by_mode = {m.mode: m for m in (first, second)}
    assert set(by_mode) == {0, 1}  # one image, one packed
    # Both decoded correctly despite the byte-order difference.
    for message in (first, second):
        assert message.values["a"] == 0x01020304
        assert message.values["b"] == -2
        assert message.values["big"] == 2 ** 40


def test_route_not_found_without_gateway():
    bed = two_nets()
    # A second ring with no gateway to it.
    bed.network("ring9", protocol="mbx")
    from repro.machine import APOLLO
    bed.machine("lonely", APOLLO, networks=["ring9"])
    client = bed.module("client", "vax1")
    # The lonely module cannot even register (no path to the NS) —
    # build its record by hand to test the client-side routing error.
    from repro.naming.protocol import NameRecord
    record = bed.name_server_instance.db.register(
        "lonely.mod", {}, [("ring9", "mbx:ring9://lonely/mbx/x")], "Apollo")
    with pytest.raises((RouteNotFound, DestinationUnavailable)):
        client.ali.call(record.uadd, "echo", {"n": 1, "text": "x"}, timeout=1.0)


def test_gateway_death_propagates_teardown():
    """Sec. 4.3: killing a middle gateway closes the chained circuit
    hop-by-hop back to the originator."""
    bed = chain_nets(2)
    echo_server(bed, "far.echo", "mEnd")
    client = bed.module("client", "m0")
    uadd = client.ali.locate("far.echo")
    client.ali.call(uadd, "echo", {"n": 1, "text": "warm"})

    victim = bed.gateways["gwm1"]
    victim.process.kill()
    bed.settle()
    # The surviving gateway propagated the teardown.
    assert bed.gateways["gwm0"].teardowns_propagated >= 1
    # The client's circuit died; a new call fails (no alternate route).
    with pytest.raises(DestinationUnavailable):
        client.ali.call(uadd, "echo", {"n": 2, "text": "x"}, timeout=1.0)


def test_endpoint_death_tears_down_chain():
    """The other direction: the destination dies; gateways unwind."""
    bed = chain_nets(2)
    server = echo_server(bed, "far.echo", "mEnd")
    client = bed.module("client", "m0")
    uadd = client.ali.locate("far.echo")
    client.ali.call(uadd, "echo", {"n": 1, "text": "warm"})
    gw_splices = bed.gateways["gwm0"].splice_count()
    assert gw_splices >= 1
    server.process.kill()
    bed.settle()
    assert bed.gateways["gwm0"].splice_count() < gw_splices
    assert client.nucleus.counters["lcm_circuit_faults"] >= 1


def test_gateway_restored_circuit_after_reopen():
    """After a teardown the originator can re-establish through the
    same gateways (establishment is autonomous per circuit)."""
    bed = chain_nets(1)
    echo_server(bed, "far.echo", "mEnd")
    client = bed.module("client", "m0")
    uadd = client.ali.locate("far.echo")
    client.ali.call(uadd, "echo", {"n": 1, "text": "a"})
    # Force-close the client's circuit.
    client.nucleus.lcm._drop_route(uadd)
    bed.settle()
    reply = client.ali.call(uadd, "echo", {"n": 2, "text": "b"})
    assert reply.values["text"] == "B"
    assert bed.gateways["gwm0"].circuits_established >= 2


def test_topology_cached_after_first_route():
    """Sec. 4.2: topology is read from the naming service only at
    establishment; repeated circuits to the same network reuse the
    cached first hop."""
    bed = chain_nets(1)
    echo_server(bed, "far.echo", "mEnd")
    echo_server(bed, "far.echo2", "mEnd")
    client = bed.module("client", "m0")
    uadd1 = client.ali.locate("far.echo")
    client.ali.call(uadd1, "echo", {"n": 1, "text": "x"})
    queries_after_first = client.nucleus.counters["topology_queries"]
    uadd2 = client.ali.locate("far.echo2")
    client.ali.call(uadd2, "echo", {"n": 2, "text": "y"})
    assert client.nucleus.counters["topology_queries"] == queries_after_first
