"""Integration tests: the application-level primitives end to end on a
single network (paper Secs. 1.3, 2.4, 3.2–3.3)."""

import pytest

from deployments import echo_server, single_net
from repro import Address, NAME_SERVER_UADD
from repro.errors import (
    BadParameter,
    DestinationUnavailable,
    NoSuchName,
    ReplyTimeout,
)
from repro.ntcs.nucleus import NucleusConfig


@pytest.fixture
def bed():
    return single_net()


def test_register_assigns_uadd(bed):
    commod = bed.module("worker.1", "sun1")
    assert commod.ali.uadd is not None
    assert not commod.ali.uadd.temporary
    assert commod.address == commod.ali.uadd


def test_locate_then_call(bed):
    echo_server(bed, "echo.server", "sun1")
    client = bed.module("client.1", "vax1")
    uadd = client.ali.locate("echo.server")
    reply = client.ali.call(uadd, "echo", {"n": 1, "text": "hi"})
    assert reply.values == {"n": 1, "text": "HI"}
    assert reply.is_reply if hasattr(reply, "is_reply") else True


def test_locate_unknown_name(bed):
    client = bed.module("client.1", "vax1")
    with pytest.raises(NoSuchName):
        client.ali.locate("nobody.home")


def test_async_send_and_polling_receive(bed):
    receiver = bed.module("sink.1", "sun1")
    sender = bed.module("source.1", "vax1")
    uadd = sender.ali.locate("sink.1")
    sender.ali.send(uadd, "echo", {"n": 5, "text": "async"})
    message = receiver.ali.receive(timeout=2.0)
    assert message.values["n"] == 5
    assert message.src == sender.ali.uadd


def test_receive_timeout(bed):
    receiver = bed.module("sink.1", "sun1")
    with pytest.raises(ReplyTimeout):
        receiver.ali.receive(timeout=0.5)


def test_send_receive_reply_cycle_by_hand(bed):
    """The synchronous primitives without a handler: an async call on
    the client side, receive + reply by hand on the server side."""
    server = bed.module("manual.server", "sun1")
    client = bed.module("client.1", "vax1")
    uadd = client.ali.locate("manual.server")
    handle = client.ali.call_async(uadd, "echo", {"n": 41, "text": "x"})
    assert not handle.ready
    request = server.ali.receive(timeout=2.0)
    assert request.reply_expected
    server.ali.reply(request, "echo", {"n": request.values["n"] + 1,
                                       "text": "manual"})
    reply = handle.result(timeout=2.0)
    assert reply.values["n"] == 42


def test_bidirectional_circuit_reuse(bed):
    """Once A talked to B, B can send to A over the same circuit
    without any naming-service traffic."""
    a = echo_server(bed, "a", "sun1")
    b = bed.module("b", "vax1")
    uadd_a = b.ali.locate("a")
    b.ali.call(uadd_a, "echo", {"n": 1, "text": "warm"})
    circuits_before = a.nucleus.ip.open_ivc_count()
    a.ali.send(b.ali.uadd, "echo", {"n": 2, "text": "reverse"})
    message = b.ali.receive(timeout=1.0)
    assert message.values["n"] == 2
    assert a.nucleus.ip.open_ivc_count() == circuits_before  # reused


def test_many_messages_in_order(bed):
    received = []
    sink = bed.module("sink", "sun1")
    sink.ali.set_request_handler(lambda msg: received.append(msg.values["n"]))
    src = bed.module("src", "vax1")
    uadd = src.ali.locate("sink")
    for i in range(50):
        src.ali.send(uadd, "echo", {"n": i, "text": ""})
    bed.settle()
    assert received == list(range(50))


def test_datagram_best_effort(bed):
    sink = bed.module("sink", "sun1")
    src = bed.module("src", "vax1")
    uadd = src.ali.locate("sink")
    assert src.ali.datagram(uadd, "echo", {"n": 1, "text": "dgram"}) is True
    bed.settle()
    message = sink.ali.receive(timeout=0.5)
    assert message.connectionless
    # To a dead destination the datagram reports failure, no exception.
    sink.process.kill()
    bed.settle()
    assert src.ali.datagram(uadd, "echo", {"n": 2, "text": "x"}) is False


def test_call_to_dead_module_fails_cleanly(bed):
    victim = bed.module("victim", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("victim")
    victim.process.kill()
    bed.settle()
    with pytest.raises(DestinationUnavailable):
        client.ali.call(uadd, "echo", {"n": 1, "text": "x"}, timeout=1.0)


def test_name_server_is_an_ordinary_destination(bed):
    """The naming service is "nothing more than an application built on
    the Nucleus" — modules can call it like any module."""
    client = bed.module("client", "vax1")
    assert client.ali.ping_name_server() is True
    reply = client.nucleus.lcm.call(NAME_SERVER_UADD, "ns_ping", {})
    assert reply.values["ok"] == 1


def test_status_utility(bed):
    commod = bed.module("worker", "sun1")
    status = commod.ali.status()
    assert status["name"] == "worker"
    assert status["machine"] == "sun1"
    assert status["machine_type"] == "Sun-3"
    assert status["recursion_depth"] == 0


# -- ALI parameter checking (the Sec. 2.4 veneer) -------------------------------

def test_ali_rejects_bad_parameters(bed):
    commod = bed.module("checker", "sun1")
    peer = bed.module("peer", "vax1")
    uadd = commod.ali.locate("peer")
    with pytest.raises(BadParameter):
        commod.ali.send("not-an-address", "echo", {})
    with pytest.raises(BadParameter):
        commod.ali.send(uadd, "unregistered_type", {})
    with pytest.raises(BadParameter):
        commod.ali.send(uadd, "echo", values=["not", "a", "dict"])
    with pytest.raises(BadParameter):
        commod.ali.call(uadd, "echo", {}, timeout=-1)
    with pytest.raises(BadParameter):
        commod.ali.locate("")
    with pytest.raises(BadParameter):
        commod.ali.register("again")  # already registered
    with pytest.raises(BadParameter):
        commod.ali.set_request_handler("not callable")


def test_double_name_registration_supersedes(bed):
    first = bed.module("same.name", "sun1")
    second_proc_commod = bed.module("same.name2", "vax1", register=False)
    second_uadd = second_proc_commod.ali.register("same.name")
    ns_db = bed.name_server_instance.db
    assert ns_db.resolve_name("same.name").uadd == second_uadd


def test_unregistered_module_can_still_call(bed):
    """Registration is not a precondition for communication — the
    Name-Server bootstrap itself depends on that (Sec. 3.4)."""
    echo_server(bed, "echo.server", "sun1")
    anon = bed.module("anon", "vax1", register=False)
    assert anon.address.temporary
    uadd = anon.ali.locate("echo.server")
    reply = anon.ali.call(uadd, "echo", {"n": 9, "text": "anon"})
    assert reply.values["text"] == "ANON"
