"""Unit and property tests for the pack/unpack code generator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.conversion import (
    ConversionRegistry,
    Field,
    StructDef,
    build_codecs,
    generate_pack_source,
    generate_unpack_source,
)
from repro.errors import ConversionError, UnknownMessageType


def _sdef():
    return StructDef("sample", 100, [
        Field("count", "u32"),
        Field("delta", "i16"),
        Field("ratio", "f64"),
        Field("label", "char[12]"),
        Field("blob", "bytes"),
    ])


def test_generated_source_is_readable_python():
    sdef = _sdef()
    pack_src = generate_pack_source(sdef)
    unpack_src = generate_unpack_source(sdef)
    assert "def pack_sample(values):" in pack_src
    assert "def unpack_sample(data):" in unpack_src
    compile(pack_src, "<pack>", "exec")  # both must be valid standalone
    # unpack source references helpers from the preamble; compile only.
    compile(unpack_src, "<unpack>", "exec")


def test_round_trip():
    pack, unpack, _ = build_codecs(_sdef())
    values = {"count": 42, "delta": -3, "ratio": 0.125, "label": "hello",
              "blob": b"\x1f\x00binary\x1f"}
    assert unpack(pack(values)) == values


def test_packed_format_is_character_based():
    pack, _, _ = build_codecs(StructDef("s", 1, [Field("n", "u32")]))
    wire = pack({"n": 123456})
    assert b"123456" in wire  # decimal ASCII, per the paper's choice


def test_packed_format_endianness_independent():
    """The whole point: the packed bytes are identical no matter which
    machine packs them, because they never contain raw multi-byte ints."""
    pack, unpack, _ = build_codecs(StructDef("s", 1, [Field("n", "u32")]))
    wire = pack({"n": 0x01020304})
    assert unpack(wire) == {"n": 0x01020304}
    assert all(32 <= b < 127 or b == 0x1F for b in wire)


def test_separator_inside_text_fields_safe():
    pack, unpack, _ = build_codecs(StructDef("s", 1, [
        Field("a", "char[8]"), Field("b", "char[8]"),
    ]))
    values = {"a": "x\x1fy", "b": "1:2"}
    assert unpack(pack(values)) == values


def test_range_checked_on_pack():
    pack, _, _ = build_codecs(StructDef("s", 1, [Field("n", "u8")]))
    with pytest.raises(ConversionError, match="out of range"):
        pack({"n": 300})
    with pytest.raises(ConversionError, match="out of range"):
        pack({"n": -1})


def test_char_overflow_checked_on_pack():
    pack, _, _ = build_codecs(StructDef("s", 1, [Field("t", "char[4]")]))
    with pytest.raises(ConversionError, match="too long"):
        pack({"t": "abcdef"})


def test_non_ascii_rejected():
    pack, _, _ = build_codecs(StructDef("s", 1, [Field("t", "char[8]")]))
    with pytest.raises(ConversionError, match="not ASCII"):
        pack({"t": "héllo"})


def test_unpack_rejects_garbage():
    _, unpack, _ = build_codecs(StructDef("s", 1, [Field("n", "u32")]))
    with pytest.raises(ConversionError):
        unpack(b"not-a-number\x1f")
    with pytest.raises(ConversionError, match="unterminated"):
        unpack(b"123")


def test_unpack_rejects_truncated_counted_field():
    _, unpack, _ = build_codecs(StructDef("s", 1, [Field("t", "char[8]")]))
    with pytest.raises(ConversionError, match="truncated"):
        unpack(b"5:ab\x1f")


def test_empty_struct():
    pack, unpack, _ = build_codecs(StructDef("empty", 1, []))
    assert pack({}) == b""
    assert unpack(b"") == {}


# -- property-based round trips ------------------------------------------------

_scalars = {
    "i8": st.integers(-0x80, 0x7F),
    "u8": st.integers(0, 0xFF),
    "i16": st.integers(-0x8000, 0x7FFF),
    "u16": st.integers(0, 0xFFFF),
    "i32": st.integers(-0x80000000, 0x7FFFFFFF),
    "u32": st.integers(0, 0xFFFFFFFF),
    "i64": st.integers(-(2 ** 63), 2 ** 63 - 1),
    "u64": st.integers(0, 2 ** 64 - 1),
}

_MIXED = StructDef("mixed", 7, [
    Field("a", "i8"), Field("b", "u16"), Field("c", "i32"),
    Field("d", "u64"), Field("text", "char[20]"), Field("tail", "bytes"),
])
_PACK, _UNPACK, _ = build_codecs(_MIXED)

_ascii_text = st.text(
    alphabet=st.characters(min_codepoint=0, max_codepoint=127), max_size=20
).filter(lambda s: "\x00" not in s)


@settings(max_examples=200, deadline=None)
@given(
    a=_scalars["i8"], b=_scalars["u16"], c=_scalars["i32"], d=_scalars["u64"],
    text=_ascii_text, tail=st.binary(max_size=64),
)
def test_property_packed_round_trip(a, b, c, d, text, tail):
    values = {"a": a, "b": b, "c": c, "d": d, "text": text, "tail": tail}
    assert _UNPACK(_PACK(values)) == values


@settings(max_examples=200, deadline=None)
@given(
    a=_scalars["i8"], b=_scalars["u16"], c=_scalars["i32"], d=_scalars["u64"],
    tail=st.binary(max_size=64),
)
def test_property_image_and_packed_agree(a, b, c, d, tail):
    """Packing a VAX image and unpacking on a Sun must yield the same
    values as an image round trip on a single machine."""
    from repro.machine import SUN3, VAX

    values = {"a": a, "b": b, "c": c, "d": d, "text": "t", "tail": tail}
    vax_image = _MIXED.image_encode(values, VAX.struct_prefix)
    via_packed = _UNPACK(_PACK(_MIXED.image_decode(vax_image, VAX.struct_prefix)))
    assert via_packed == values


# -- registry -------------------------------------------------------------

def test_registry_generates_codecs():
    reg = ConversionRegistry()
    entry = reg.register(_sdef())
    assert entry.generated_source is not None
    assert "pack_sample" in entry.generated_source
    values = {"count": 1, "delta": 0, "ratio": 1.0, "label": "x", "blob": b""}
    assert entry.unpack(entry.pack(values)) == values


def test_registry_accepts_custom_codecs():
    """The transport format is application-determined (Sec. 5.1)."""
    reg = ConversionRegistry()
    sdef = StructDef("custom", 200, [Field("n", "u32")])

    entry = reg.register(
        sdef,
        pack=lambda values: f"N={values['n']}".encode(),
        unpack=lambda data: {"n": int(data.decode().split("=")[1])},
    )
    assert entry.generated_source is None
    assert entry.unpack(entry.pack({"n": 9})) == {"n": 9}


def test_registry_rejects_duplicates_and_partial_codecs():
    reg = ConversionRegistry()
    reg.register(StructDef("a", 1, []))
    with pytest.raises(ConversionError):
        reg.register(StructDef("a", 2, []))  # duplicate name
    with pytest.raises(ConversionError):
        reg.register(StructDef("b", 1, []))  # duplicate id
    with pytest.raises(ConversionError):
        reg.register(StructDef("c", 3, []), pack=lambda v: b"")  # partial


def test_registry_lookup_errors():
    reg = ConversionRegistry()
    with pytest.raises(UnknownMessageType):
        reg.get(999)
    with pytest.raises(UnknownMessageType):
        reg.get_by_name("ghost")
    assert 999 not in reg

def test_registry_errors_carry_type_id_and_name():
    """Every lookup path normalizes to a typed ConversionError carrying
    the offending type id (or name) — no raw KeyError escapes."""
    reg = ConversionRegistry()
    with pytest.raises(UnknownMessageType) as exc_info:
        reg.get(999)
    assert exc_info.value.type_id == 999
    assert exc_info.value.name is None
    with pytest.raises(UnknownMessageType) as exc_info:
        reg.get_by_name("ghost")
    assert exc_info.value.name == "ghost"
    assert exc_info.value.type_id is None


def test_pack_missing_field_is_conversion_error():
    """A missing value raises ConversionError naming the field, not a
    raw KeyError out of the generated codec."""
    pack, _, _ = build_codecs(_sdef())
    with pytest.raises(ConversionError, match="sample.count: missing field"):
        pack({"delta": 0, "ratio": 1.0, "label": "x", "blob": b""})
    with pytest.raises(ConversionError, match="sample.label: missing field"):
        pack({"count": 1, "delta": 0, "ratio": 1.0, "blob": b""})


def test_route_cache_hits_after_first_lookup():
    """(type id, src arch, dst arch) -> (codec, mode) is one dict probe
    per peer after warm-up."""
    from repro.machine.arch import machine_type

    reg = ConversionRegistry()
    entry = reg.register(_sdef())
    vax, sun = machine_type("VAX"), machine_type("Sun-3")
    first = reg.lookup_route(100, vax, sun)
    assert first == (entry, vax.image_compatible(sun))
    assert reg.counters["codec_cache_misses"] == 1
    for _ in range(5):
        assert reg.lookup_route(100, vax, sun) is not None
    assert reg.counters["codec_cache_hits"] == 5
    assert reg.counters["codec_cache_misses"] == 1
    # A different destination arch is a different decision.
    reg.lookup_route(100, vax, vax)
    assert reg.counters["codec_cache_misses"] == 2
    assert reg.lookup_route(100, vax, vax)[1] is True


def test_route_cache_unknown_type_not_cached():
    from repro.machine.arch import machine_type

    reg = ConversionRegistry()
    vax = machine_type("VAX")
    with pytest.raises(UnknownMessageType) as exc_info:
        reg.lookup_route(999, vax, vax)
    assert exc_info.value.type_id == 999
