"""Focused tests for IP-Layer mechanics: route planning, the BFS over
gateway adjacency, route-cache behaviour."""

import pytest

from deployments import echo_server, single_net
from repro import Testbed, SUN3, VAX
from repro.errors import AddressFault, NoSuchAddress, RouteNotFound
from repro.naming.protocol import NameRecord
from repro.ntcs.address import Address, make_uadd


class FakeNsp:
    """An NSP stub serving canned records and gateway lists."""

    def __init__(self, records=(), gateways=()):
        self._records = {r.uadd: r for r in records}
        self.gateways = list(gateways)
        self.resolve_calls = 0

    def resolve_uadd(self, uadd):
        self.resolve_calls += 1
        try:
            return self._records[uadd]
        except KeyError:
            raise NoSuchAddress(str(uadd))

    def list_gateways(self):
        return self.gateways


def _gw_record(n, networks):
    return NameRecord(
        name=f"gw{n}", uadd=make_uadd(100 + n), mtype_name="Apollo",
        attrs={"kind": "gateway"},
        addresses=[(net, f"tcp:{net}:gw{n}:90") for net in networks],
    )


@pytest.fixture
def ip_layer():
    """A client module's IP-Layer with a fake NSP behind it."""
    bed = single_net()
    client = bed.module("client", "vax1")
    return bed, client, client.nucleus.ip


def test_plan_prefers_wellknown_for_ns(ip_layer):
    bed, client, ip = ip_layer
    plan = ip._plan(bed.wellknown.ns_uadd)
    assert plan.direct
    assert plan.blob == "tcp:ether0:vax1:411"


def test_plan_uses_cache_before_nsp(ip_layer):
    bed, client, ip = ip_layer
    target = make_uadd(50)
    client.nucleus.addr_cache.store(target, "tcp:ether0:sun1:7000", "Sun-3")
    fake = FakeNsp()
    client.nucleus.nsp = fake
    plan = ip._plan(target)
    assert plan.direct and plan.blob == "tcp:ether0:sun1:7000"
    assert fake.resolve_calls == 0


def test_plan_temporary_address_faults(ip_layer):
    bed, client, ip = ip_layer
    with pytest.raises(AddressFault, match="temporary"):
        ip._plan(Address(value=3, temporary=True))


def test_plan_never_asks_nsp_about_the_ns(ip_layer):
    """Naming-service addresses with no cache entry must fault, not
    recurse into the NSP (a Sec. 6.3 guard)."""
    bed, client, ip = ip_layer
    fake_ns_addr = make_uadd(77)
    client.nucleus.ns_addresses.add(fake_ns_addr)
    with pytest.raises(AddressFault, match="well-known"):
        ip._plan(fake_ns_addr)


def test_first_hop_bfs_multi_hop():
    """BFS over gateway adjacency picks a first hop on the local
    network even when the destination is several networks away."""
    bed = single_net()
    client = bed.module("client", "vax1")
    ip = client.nucleus.ip
    # Topology: ether0 -gw1- netB -gw2- netC; destination on netC.
    client.nucleus.nsp = FakeNsp(gateways=[
        _gw_record(1, ["ether0", "netB"]),
        _gw_record(2, ["netB", "netC"]),
    ])
    gw_uadd, blob = ip._first_hop("ether0", "netC")
    assert gw_uadd == make_uadd(101)  # gw1: the hop on OUR network
    assert blob == "tcp:ether0:gw1:90"


def test_first_hop_no_route():
    bed = single_net()
    client = bed.module("client", "vax1")
    ip = client.nucleus.ip
    client.nucleus.nsp = FakeNsp(gateways=[_gw_record(1, ["netX", "netY"])])
    with pytest.raises(RouteNotFound):
        ip._first_hop("ether0", "netZ")


def test_first_hop_ignores_gateway_without_local_blob():
    """A gateway chain whose first hop has no blob on the local network
    cannot be used."""
    bed = single_net()
    client = bed.module("client", "vax1")
    ip = client.nucleus.ip
    broken = _gw_record(1, ["ether0", "netB"])
    broken.addresses = [("netB", "tcp:netB:gw1:90")]  # no ether0 blob
    client.nucleus.nsp = FakeNsp(gateways=[broken])
    with pytest.raises(RouteNotFound):
        ip._first_hop("ether0", "netB")


def test_route_cache_populated_and_reused():
    bed = single_net()
    client = bed.module("client", "vax1")
    ip = client.nucleus.ip
    fake = FakeNsp(gateways=[_gw_record(1, ["ether0", "netB"])])
    client.nucleus.nsp = fake
    plan1 = ip._gateway_plan(make_uadd(60), "netB")
    plan2 = ip._gateway_plan(make_uadd(61), "netB")
    assert plan1.blob == plan2.blob
    assert client.nucleus.counters["topology_queries"] == 1  # cached


def test_plan_resolves_remote_entry_and_caches(ip_layer):
    bed, client, ip = ip_layer
    target = make_uadd(70)
    record = NameRecord(
        name="remote", uadd=target, mtype_name="Sun-3",
        addresses=[("netB", "tcp:netB:far:70")],
    )
    client.nucleus.nsp = FakeNsp(
        records=[record], gateways=[_gw_record(1, ["ether0", "netB"])])
    plan = ip._plan(target)
    assert not plan.direct
    assert plan.dst_network == "netB"
    # The remote blob was cached so the next plan skips resolution.
    assert client.nucleus.addr_cache.lookup(target) is not None


def test_plan_entry_without_addresses(ip_layer):
    bed, client, ip = ip_layer
    target = make_uadd(71)
    record = NameRecord(name="ghost", uadd=target, mtype_name="VAX",
                        addresses=[])
    client.nucleus.nsp = FakeNsp(records=[record])
    with pytest.raises(NoSuchAddress):
        ip._plan(target)
