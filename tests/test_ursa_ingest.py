"""Tests for the URSA ingest path: documents added at runtime become
immediately searchable (live index maintenance over the NTCS)."""

import pytest

from deployments import single_net, two_nets
from repro import SUN3
from repro.ursa import Corpus, deploy_ursa


@pytest.fixture
def system():
    bed = single_net()
    bed.machine("sun2", SUN3, networks=["ether0"])
    corpus = Corpus(n_docs=30, seed=21)
    ursa = deploy_ursa(
        bed, corpus,
        index_machines=["sun1", "sun2"],
        search_machine="sun1",
        docs_machine="sun2",
        host_machines=["vax1"],
    )
    return bed, ursa


def test_ingested_document_becomes_searchable(system):
    bed, ursa = system
    host = ursa.hosts[0]
    assert host.search("xylophone") == []
    new_id = max(ursa.corpus.doc_ids()) + 1
    assert host.ingest(new_id, "a xylophone concerto for xylophone") is True
    assert host.search("xylophone") == [new_id]
    assert host.fetch(new_id) == "a xylophone concerto for xylophone"


def test_ingest_routes_to_owning_shard(system):
    bed, ursa = system
    host = ursa.hosts[0]
    base = max(ursa.corpus.doc_ids()) + 1
    # Two documents landing on the two different shards (ids differ mod 2).
    host.ingest(base, "shardtesta unique")
    host.ingest(base + 1, "shardtestb unique")
    owners = {base % 2: "shardtesta", (base + 1) % 2: "shardtestb"}
    for server in ursa.index_servers:
        expected_term = owners[server.shard]
        assert expected_term in server.index
        other_term = owners[1 - server.shard]
        assert other_term not in server.index


def test_duplicate_ingest_refused(system):
    bed, ursa = system
    host = ursa.hosts[0]
    existing = ursa.corpus.doc_ids()[0]
    assert host.ingest(existing, "whatever") is False


def test_ingest_combines_with_existing_terms(system):
    bed, ursa = system
    host = ursa.hosts[0]
    corpus = ursa.corpus
    term = corpus.common_terms(1)[0]
    before = host.search(term)
    new_id = max(corpus.doc_ids()) + 1
    host.ingest(new_id, f"{term} appears here too")
    after = host.search(term)
    assert after == sorted(before + [new_id])
    # Boolean combination across old and new documents.
    assert host.search(f"{term} AND appears") == [new_id]


def test_ingest_across_networks():
    """Ingest where the document server and index shards sit on the
    Apollo ring: store + index update both cross the gateway."""
    bed = two_nets()
    corpus = Corpus(n_docs=20, seed=3)
    ursa = deploy_ursa(
        bed, corpus,
        index_machines=["apollo1", "apollo2"],
        search_machine="sun1",
        docs_machine="apollo1",
        host_machines=["vax1"],
    )
    host = ursa.hosts[0]
    new_id = max(corpus.doc_ids()) + 1
    assert host.ingest(new_id, "ringdoc crossing gateways") is True
    assert host.search("ringdoc") == [new_id]
    assert ursa.document_server.ingests == 1
