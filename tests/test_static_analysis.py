"""ntcslint: the architecture stays machine-checked.

Two halves:

* the *gate* — the full rule set runs over ``src/repro`` and must come
  back empty, so any future PR that violates the paper's layering
  (Fig. 2-1), type-id reservations (Sec. 5.2), determinism, or
  exception hygiene fails tier-1;
* the *demonstration* — fixture trees with deliberately seeded
  violations assert that each rule family actually fires, with exact
  rule ids and line numbers, so the gate cannot rot into a no-op.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import Finding, Project, analyze, layer_name
from repro.analysis.cli import main
from repro.conversion import ConversionRegistry, Field, StructDef
from repro.errors import ConversionError, DuplicateTypeId

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_TREE = REPO_ROOT / "src" / "repro"
FIXTURE_PROJ = REPO_ROOT / "tests" / "fixtures" / "ntcslint" / "proj"


def fixture_findings(*relpath_filters):
    """Findings over the fixture project, optionally narrowed to files
    whose path contains one of the given substrings."""
    findings = analyze([FIXTURE_PROJ])
    if relpath_filters:
        findings = [f for f in findings
                    if any(token in f.path for token in relpath_filters)]
    return findings


def rule_lines(findings):
    """(rule id, line) pairs, order-preserving."""
    return [(f.rule, f.line) for f in findings]


# ---------------------------------------------------------------------------
# The gate: the real tree is clean
# ---------------------------------------------------------------------------

def test_src_tree_is_clean():
    findings = analyze([SRC_TREE])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_exits_zero_on_src_tree(capsys):
    assert main([str(SRC_TREE)]) == 0
    assert "ntcslint: clean" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Layering (LAY001/LAY002) — the Fig. 2-1 stack
# ---------------------------------------------------------------------------

def test_netsim_importing_ntcs_fires_both_scopes():
    # Module-scope AND function-scope (lazy) imports are both edges.
    findings = fixture_findings("evil_netsim")
    assert rule_lines(findings) == [("LAY001", 6), ("LAY001", 11)]
    assert "repro.ntcs.nucleus" in findings[0].message
    assert "repro.ntcs.lcm" in findings[1].message


def test_ali_importing_ndlayer_and_drivers_fires():
    findings = fixture_findings("evil_ali")
    assert rule_lines(findings) == [("LAY001", 6), ("LAY001", 7)]
    assert all(f.severity == "error" for f in findings)


def test_application_importing_internals_fires():
    findings = fixture_findings("evil_app")
    assert rule_lines(findings) == [("LAY001", 5), ("LAY001", 6)]
    assert "layer 'apps'" in findings[0].message


def test_unmapped_module_is_reported():
    findings = fixture_findings("mystery")
    assert rule_lines(findings) == [("LAY002", 1)]
    assert findings[0].severity == "warning"


def test_layer_map_places_the_paper_stack():
    assert layer_name("repro.commod.ali") == "ali"
    assert layer_name("repro.naming.nsp") == "nsp"
    assert layer_name("repro.ntcs.lcm") == "lcm"
    assert layer_name("repro.ntcs.iplayer") == "ip"
    assert layer_name("repro.ntcs.ndlayer") == "nd"
    assert layer_name("repro.wm.server") == "apps"
    assert layer_name("repro.netsim.network") == "netsim"
    assert layer_name("not_repro.thing") is None


# ---------------------------------------------------------------------------
# Protocol (PRO001–PRO004) — Sec. 5.2 type-id reservations
# ---------------------------------------------------------------------------

def test_protocol_rules_fire_exactly():
    findings = fixture_findings("bad_protocol")
    assert rule_lines(findings) == [
        ("PRO001", 14),   # id 99 outside repro.naming's 10..39
        ("PRO002", 17),   # id 12 duplicates ok_message
        ("PRO003", 21),   # unknown field type float32
        ("PRO003", 22),   # bytes field not in last position
        ("PRO004", 23),   # duplicate field name
    ]
    assert "10..39" in findings[0].message
    assert "ok_message" in findings[1].message


def test_protocol_rule_resolves_constant_ids():
    # T_OUT_OF_RANGE = 99 is referenced by name, not literal.
    finding = fixture_findings("bad_protocol")[0]
    assert "type id 99" in finding.message


# ---------------------------------------------------------------------------
# Determinism (DET001–DET004) — virtual time only
# ---------------------------------------------------------------------------

def test_determinism_rules_fire_exactly():
    findings = fixture_findings("bad_clock")
    assert rule_lines(findings) == [
        ("DET001", 10),   # time.time()
        ("DET002", 11),   # time.sleep()
        ("DET003", 12),   # global random.random()
        ("DET003", 13),   # unseeded random.Random()
        ("DET004", 14),   # argless datetime.now()
    ]


def test_seeded_random_is_sanctioned():
    findings = fixture_findings("bad_clock")
    # The sanctioned() helper at the bottom of the fixture uses
    # random.Random(seed) and must produce no finding.
    assert all(f.line <= 14 for f in findings)


def test_repair_module_seeded_random_fires_det005():
    # The fixture's module name is repro.netsim.chaos — one of the
    # restricted chaos/repair modules — so even a *seeded*
    # random.Random(7) fires DET005 (the stream must come from
    # repro.util.seeds.derive_rng).
    findings = fixture_findings("netsim/chaos")
    assert rule_lines(findings) == [("DET005", 12)]
    assert "derive_rng" in findings[0].message


def test_live_repair_modules_carry_no_direct_rng():
    # The real chaos harness and repair paths must stay DET005-clean.
    for rel in ("netsim/chaos.py", "ntcs/lcm.py",
                "ntcs/iplayer.py", "ntcs/gateway.py"):
        findings = [f for f in analyze([SRC_TREE / rel])
                    if f.rule == "DET005"]
        assert findings == [], rel


def test_realnet_is_exempt_from_determinism():
    # The real-socket substrate legitimately reads the wall clock.
    findings = [f for f in analyze([SRC_TREE / "realnet"])
                if f.rule.startswith("DET")]
    assert findings == []


def test_private_heap_fires_det006_even_in_realnet():
    # The fixture lives under repro.realnet: the wall-clock exemption
    # must not extend to heapq — a private heap is a second,
    # unaccounted event queue outside the shared wheel's total order.
    findings = fixture_findings("rogue_heap")
    assert rule_lines(findings) == [("DET006", 6), ("DET006", 7)]
    assert "timerwheel" in findings[0].message
    assert "timerwheel" in findings[1].message


def test_shared_timer_module_is_det006_home():
    # The one sanctioned heapq user: repro.netsim.timerwheel itself.
    findings = [f for f in analyze([SRC_TREE / "netsim" / "timerwheel.py"])
                if f.rule == "DET006"]
    assert findings == []


# ---------------------------------------------------------------------------
# Hygiene (EXC001–EXC003)
# ---------------------------------------------------------------------------

def test_hygiene_rules_fire_exactly():
    findings = fixture_findings("bad_hygiene")
    assert rule_lines(findings) == [
        ("EXC001", 10),   # bare except:
        ("EXC002", 18),   # swallowed NtcsError
        ("EXC003", 22),   # mutable default argument
    ]


def test_pragma_waives_a_finding():
    # waived() in the fixture swallows NtcsError under an explicit
    # `# ntcslint: allow=EXC002` pragma: no finding past line 22.
    findings = fixture_findings("bad_hygiene")
    assert all(f.line <= 22 for f in findings)


# ---------------------------------------------------------------------------
# Performance (PERF001) — hot paths stay batched (PROTOCOL.md §13)
# ---------------------------------------------------------------------------

def test_perf_rule_fires_on_per_frame_post_loops():
    # The fixture's module name is repro.ntcs.ndlayer — a frame-train
    # hot-path module — so scheduler posts inside for/while loops fire.
    findings = fixture_findings("ntcs/ndlayer")
    assert rule_lines(findings) == [("PERF001", 12), ("PERF001", 16)]
    assert "train API" in findings[0].message


def test_perf_rule_ignores_single_posts_and_other_modules():
    # one_shot() in the fixture posts outside a loop: no finding past
    # line 16.  And the identical shapes elsewhere in the fixture tree
    # (non-hot-path modules) produce no PERF001 at all.
    assert all(f.line <= 16 for f in fixture_findings("ntcs/ndlayer"))
    others = [f for f in fixture_findings() if f.rule == "PERF001"
              and "ntcs/ndlayer" not in f.path]
    assert others == []


def test_live_hot_paths_satisfy_perf001():
    # The real ND-Layer and gateway deliver trains through the batched
    # entry points — no per-frame dispatch loops, no waivers.
    for rel in ("ntcs/ndlayer.py", "ntcs/gateway.py"):
        findings = [f for f in analyze([SRC_TREE / rel])
                    if f.rule == "PERF001"]
        assert findings == [], rel


# ---------------------------------------------------------------------------
# The fast-path splice pattern is lint-clean without waivers
# ---------------------------------------------------------------------------

def test_memoryview_splice_pattern_is_clean():
    """The zero-copy splice idiom (memoryview patch of the aux and
    checksum words, as in repro.ntcs.message.patch_frame_aux) passes
    every rule family with no `ntcslint: allow` pragma."""
    fixture = FIXTURE_PROJ / "repro" / "ntcs" / "message.py"
    assert "ntcslint: allow" not in fixture.read_text()
    assert fixture_findings("ntcs/message") == []


def test_live_fastpath_modules_are_clean():
    """The real fast-path code (message frame cache + splice, batched
    shift codecs, gateway forwarding) carries no waiver pragmas and
    yields zero findings on its own."""
    for rel in ("ntcs/message.py", "conversion/shiftmode.py",
                "ntcs/gateway.py", "ntcs/ndlayer.py"):
        path = SRC_TREE / rel
        assert "ntcslint: allow" not in path.read_text(), rel
    findings = analyze([SRC_TREE / "ntcs", SRC_TREE / "conversion"])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_sharded_naming_modules_are_clean():
    """The PROTOCOL.md §14 sharding code — the ring, the shard servers,
    and the stores they extend — carries no `ntcslint: allow` pragma
    and yields zero findings: consistent hashing is built on CRC-32,
    not the salted builtin ``hash``, so the determinism family has
    nothing to waive."""
    for rel in ("naming/shards.py", "naming/replicated.py",
                "naming/database.py", "naming/protocol.py"):
        path = SRC_TREE / rel
        assert "ntcslint: allow" not in path.read_text(), rel
    findings = analyze([SRC_TREE / "naming"])
    assert findings == [], "\n".join(f.render() for f in findings)


# ---------------------------------------------------------------------------
# CLI: formats, filtering, exit codes
# ---------------------------------------------------------------------------

def test_cli_json_format_is_machine_readable(capsys):
    status = main([str(FIXTURE_PROJ), "--format", "json"])
    assert status == 1
    records = json.loads(capsys.readouterr().out)
    assert {r["rule"] for r in records} >= {
        "LAY001", "LAY002", "PRO001", "PRO002", "PRO003", "PRO004",
        "DET001", "DET002", "DET003", "DET004", "DET005",
        "EXC001", "EXC002", "EXC003",
    }
    sample = records[0]
    assert set(sample) == {"rule", "severity", "path", "line", "message"}


def test_cli_rule_filtering(capsys):
    status = main([str(FIXTURE_PROJ), "--rule", "DET", "--format", "json"])
    assert status == 1
    records = json.loads(capsys.readouterr().out)
    assert records and all(r["rule"].startswith("DET") for r in records)

    status = main([str(FIXTURE_PROJ), "--rule", "hygiene", "--format", "json"])
    assert status == 1
    records = json.loads(capsys.readouterr().out)
    assert records and all(r["rule"].startswith("EXC") for r in records)


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for family in ("layering", "protocol", "determinism", "hygiene"):
        assert family in out


def test_cli_missing_path_is_usage_error(capsys):
    assert main([str(FIXTURE_PROJ / "does-not-exist")]) == 2


def test_cli_unknown_rule_token_is_usage_error(capsys):
    # A typo must not silently report "clean" and disable the gate.
    assert main([str(FIXTURE_PROJ), "--rule", "BOGUS"]) == 2
    assert "unknown rule token" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Engine plumbing
# ---------------------------------------------------------------------------

def test_module_names_resolve_from_fixture_tree():
    project = Project.load([FIXTURE_PROJ])
    assert "repro.netsim.evil_netsim" in project.by_name
    assert "repro.naming.bad_protocol" in project.by_name


def test_findings_are_sorted_and_stable():
    first = fixture_findings()
    second = fixture_findings()
    assert first == second
    assert first == sorted(first, key=lambda f: (f.path, f.line, f.rule))


def test_finding_render_shape():
    finding = Finding(rule="LAY001", severity="error",
                      path="x.py", line=3, message="boom")
    assert finding.render() == "x.py:3: LAY001 [error] boom"


# ---------------------------------------------------------------------------
# The runtime counterpart: ConversionRegistry duplicate registration
# ---------------------------------------------------------------------------

def test_registry_raises_typed_error_on_duplicate_type_id():
    registry = ConversionRegistry()
    registry.register(StructDef("first", 100, [Field("a", "u8")]))
    with pytest.raises(DuplicateTypeId) as exc_info:
        registry.register(StructDef("second", 100, [Field("b", "u8")]))
    assert exc_info.value.type_id == 100
    assert "first" in str(exc_info.value)
    # Still a ConversionError for callers catching the family.
    assert isinstance(exc_info.value, ConversionError)


def test_registry_raises_typed_error_on_duplicate_name():
    registry = ConversionRegistry()
    registry.register(StructDef("same_name", 100, [Field("a", "u8")]))
    with pytest.raises(DuplicateTypeId):
        registry.register(StructDef("same_name", 101, [Field("a", "u8")]))
    # No silent overwrite happened.
    assert registry.get(100).sdef.name == "same_name"
    assert 101 not in registry


# ---------------------------------------------------------------------------
# Pragma edge cases: allow=all, messy comma lists, unknown ids,
# multi-line statements
# ---------------------------------------------------------------------------

def _mini_tree(tmp_path, body):
    """A one-file repro tree under tmp_path; returns the tree root."""
    pkg = tmp_path / "repro" / "machine"
    pkg.mkdir(parents=True)
    (pkg / "clocky.py").write_text(body)
    return tmp_path


def test_pragma_allow_all_waives_every_rule(tmp_path):
    tree = _mini_tree(tmp_path, (
        "import time, random\n"
        "\n"
        "def tick():\n"
        "    # Both DET001 and DET003 on one line, one blanket pragma.\n"
        "    return time.time() + random.random()"
        "  # ntcslint: allow=all — bootstrap shim\n"
    ))
    assert analyze([tree]) == []


def test_pragma_comma_list_tolerates_stray_whitespace(tmp_path):
    tree = _mini_tree(tmp_path, (
        "import time, random\n"
        "\n"
        "def tick():\n"
        "    return time.time() + random.random()"
        "  # ntcslint: allow= DET001 ,  DET003 — messy but legal\n"
    ))
    assert analyze([tree]) == []


def test_pragma_unknown_rule_id_warns_wvr001(tmp_path):
    tree = _mini_tree(tmp_path, (
        "def quiet():\n"
        "    return 1  # ntcslint: allow=ZZZ999 — typo'd id\n"
    ))
    findings = analyze([tree])
    assert [(f.rule, f.severity, f.line) for f in findings] == [
        ("WVR001", "warning", 2)]
    assert "ZZZ999" in findings[0].message


def test_pragma_on_multiline_statement_waives(tmp_path):
    # The pragma sits on a *different physical line* of the same
    # statement as the offending call — it must still match.
    tree = _mini_tree(tmp_path, (
        "import time\n"
        "\n"
        "def tick():\n"
        "    value = (  # ntcslint: allow=DET001 — frozen in this shim\n"
        "        time.time()\n"
        "    )\n"
        "    return value\n"
    ))
    assert analyze([tree]) == []


# ---------------------------------------------------------------------------
# The waiver ratchet (--max-waivers / --list-waivers) and the
# committed baseline
# ---------------------------------------------------------------------------

def _two_waiver_tree(tmp_path):
    return _mini_tree(tmp_path, (
        "import time\n"
        "\n"
        "def tick():\n"
        "    a = time.time()  # ntcslint: allow=DET001 — first shim\n"
        "    b = time.time()  # ntcslint: allow=DET001 — second shim\n"
        "    return a + b\n"
    ))


def test_cli_max_waivers_within_budget(tmp_path, capsys):
    tree = _two_waiver_tree(tmp_path)
    assert main([str(tree), "--max-waivers", "2"]) == 0


def test_cli_max_waivers_over_budget(tmp_path, capsys):
    tree = _two_waiver_tree(tmp_path)
    assert main([str(tree), "--max-waivers", "1"]) == 1
    err = capsys.readouterr().err
    assert "2 waiver(s) active, budget is 1" in err
    assert "DET001 waived" in err


def test_cli_list_waivers_shows_justifications(tmp_path, capsys):
    tree = _two_waiver_tree(tmp_path)
    assert main([str(tree), "--list-waivers"]) == 0
    out = capsys.readouterr().out
    assert "DET001 waived — first shim" in out
    assert "DET001 waived — second shim" in out
    assert "2 waiver(s) active" in out


def test_committed_baseline_matches_repo_waiver_count():
    """The ratchet CI runs: src + tests + benchmarks (fixtures
    excluded) must carry exactly the baselined number of waivers —
    fewer means ratchet the file down, more means justify the new
    pragma in review."""
    baseline = int((REPO_ROOT / ".ntcslint-baseline").read_text())
    from repro.analysis.engine import run_rules_with_waivers
    project = Project.load(
        [SRC_TREE, REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        exclude=("tests/fixtures",))
    findings, waivers = run_rules_with_waivers(project)
    assert findings == [], "\n".join(f.render() for f in findings)
    assert len(waivers) == baseline, "\n".join(w.render() for w in waivers)


# ---------------------------------------------------------------------------
# SARIF output (satellite for the code-scanning upload)
# ---------------------------------------------------------------------------

def test_cli_sarif_format_is_valid_shape(capsys):
    assert main([str(FIXTURE_PROJ), "--format", "sarif"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["version"] == "2.1.0"
    run = doc["runs"][0]
    driver = run["tool"]["driver"]
    assert driver["name"] == "ntcslint"
    rule_ids = {r["id"] for r in driver["rules"]}
    # Every family is indexed, the model stage and WVR001 included.
    assert {"LAY001", "PRO001", "DET001", "EXC001",
            "MDL001", "TRC001", "WVR001"} <= rule_ids
    assert run["results"], "fixture tree must produce results"
    sample = run["results"][0]
    assert sample["ruleId"] in rule_ids
    assert sample["level"] in ("error", "warning")
    location = sample["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"]
    assert location["region"]["startLine"] >= 1


# ---------------------------------------------------------------------------
# --exclude (how CI scans tests/ without the seeded fixture trees)
# ---------------------------------------------------------------------------

def test_cli_exclude_skips_matching_paths(capsys):
    assert main([str(FIXTURE_PROJ), "--format", "json",
                 "--exclude", "bad_hygiene"]) == 1
    records = json.loads(capsys.readouterr().out)
    assert records and not any("bad_hygiene" in r["path"] for r in records)


def test_exclude_whole_fixture_tree_is_clean(capsys):
    status = main([str(REPO_ROOT / "tests" / "fixtures"),
                   "--exclude", "tests/fixtures"])
    assert status == 0
    assert "ntcslint: clean" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# Result caching (--cache): content-hash keyed, whole-tree invalidation
# ---------------------------------------------------------------------------

def test_cache_round_trip_and_invalidation(tmp_path, capsys):
    from repro.analysis import cache as result_cache

    tree = _mini_tree(tmp_path / "proj", (
        "import time\n"
        "\n"
        "def tick():\n"
        "    return time.time()\n"
    ))
    cache_file = tmp_path / "cache.json"

    # Cold run stores; exit code and findings as normal.
    assert main([str(tree), "--cache", str(cache_file),
                 "--format", "json"]) == 1
    cold = json.loads(capsys.readouterr().out)
    assert cache_file.exists()

    # Warm run must be a pure cache hit with identical output.
    key = result_cache.cache_key([tree], None, ())
    assert result_cache.load(cache_file, key) is not None
    assert main([str(tree), "--cache", str(cache_file),
                 "--format", "json"]) == 1
    assert json.loads(capsys.readouterr().out) == cold

    # Editing any file changes the manifest: the key moves, so the
    # stored entry misses and the CLI reruns against the new content.
    source = tree / "repro" / "machine" / "clocky.py"
    source.write_text(source.read_text() + "\n# touched\n")
    new_key = result_cache.cache_key([tree], None, ())
    assert new_key != key
    assert result_cache.load(cache_file, new_key) is None
    assert main([str(tree), "--cache", str(cache_file),
                 "--format", "json"]) == 1
    assert json.loads(capsys.readouterr().out) == cold  # same findings


def test_cache_corrupt_file_is_a_miss_not_a_crash(tmp_path):
    from repro.analysis import cache as result_cache

    cache_file = tmp_path / "cache.json"
    cache_file.write_text("{not json")
    key = result_cache.cache_key([SRC_TREE], None, ())
    assert result_cache.load(cache_file, key) is None


def test_cache_key_depends_on_rule_filter_and_exclude():
    from repro.analysis import cache as result_cache

    base = result_cache.cache_key([SRC_TREE], None, ())
    assert result_cache.cache_key([SRC_TREE], ["DET"], ()) != base
    assert result_cache.cache_key([SRC_TREE], None, ("x",)) != base
    assert result_cache.cache_key([SRC_TREE], None, ()) == base
