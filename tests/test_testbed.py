"""Unit tests for the deployment builders (Testbed / RealDeployment)."""

import pytest

from repro import SUN3, Testbed, VAX
from repro.errors import SimulationError
from repro.realnet import RealDeployment
from repro.testbed import make_registry


def test_make_registry_has_all_internal_types():
    registry = make_registry()
    # Nucleus control types, naming types, DRTS types.
    for type_id in (1, 2, 3, 10, 12, 14, 40, 41):
        assert type_id in registry
    # Application space is free.
    assert 64 not in registry


def test_network_validation():
    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    with pytest.raises(SimulationError, match="already exists"):
        bed.network("ether0", protocol="tcp")
    with pytest.raises(SimulationError, match="unknown IPCS"):
        bed.network("weird", protocol="carrier-pigeon")


def test_machine_validation():
    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    bed.machine("m1", VAX, networks=["ether0"])
    with pytest.raises(SimulationError, match="already exists"):
        bed.machine("m1", VAX, networks=["ether0"])


def test_machine_gets_matching_ipcs_per_network():
    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    bed.network("ring0", protocol="mbx")
    machine = bed.machine("dual", SUN3, networks=["ether0", "ring0"])
    assert machine.ipcs_for("ether0", "tcp").protocol == "tcp"
    assert machine.ipcs_for("ring0", "mbx").protocol == "mbx"


def test_single_name_server_enforced():
    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    bed.machine("m1", VAX, networks=["ether0"])
    bed.name_server("m1")
    with pytest.raises(SimulationError, match="already has a Name Server"):
        bed.name_server("m1")


def test_name_server_binding_is_wellknown():
    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    bed.machine("m1", VAX, networks=["ether0"])
    server = bed.name_server("m1")
    assert server.listen_blob == "tcp:ether0:m1:411"
    assert bed.wellknown.ns_reachable_directly("ether0")


def test_module_registry_and_clock_options():
    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    bed.machine("m1", VAX, networks=["ether0"], clock_offset=2.5,
                clock_drift=1e-4)
    bed.name_server("m1")
    commod = bed.module("worker", "m1")
    assert bed.modules["worker"] is commod
    assert bed.machines["m1"].clock.offset == 2.5


def test_settle_and_run_for():
    bed = Testbed()
    bed.network("ether0", protocol="tcp")
    bed.machine("m1", VAX, networks=["ether0"])
    bed.name_server("m1")
    assert bed.now >= 0.0
    before = bed.now
    bed.run_for(1.0)
    assert bed.now == pytest.approx(before + 1.0)
    bed.settle()


def test_real_deployment_validation():
    deployment = RealDeployment()
    from repro.machine import VAX as vax
    deployment.machine("m1", vax)
    with pytest.raises(SimulationError):
        deployment.machine("m1", vax)
    deployment.name_server("m1")
    with pytest.raises(SimulationError):
        deployment.name_server("m1")
    deployment.shutdown()
