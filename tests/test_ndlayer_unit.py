"""Focused tests for ND-Layer mechanics: open retry, resolution paths,
malformed-message handling, fault notification."""

import pytest

from deployments import echo_server, single_net
from repro.errors import AddressFault
from repro.naming.protocol import NameRecord
from repro.ntcs import message as m
from repro.ntcs.address import make_uadd


@pytest.fixture
def bed():
    return single_net()


def test_open_retries_then_faults(bed):
    """"There is no automatic relocation or recovery from failed
    channels (except for retry on open)" — Sec. 2.2."""
    client = bed.module("client", "vax1")
    nd = client.nucleus.nd
    target = make_uadd(50)
    with pytest.raises(AddressFault):
        nd.open_lvc(target, "tcp:ether0:sun1:9999")  # nobody listening
    assert client.nucleus.counters["nd_open_retries"] == nd.OPEN_RETRIES


def test_open_to_wrong_network_blob_faults(bed):
    client = bed.module("client", "vax1")
    with pytest.raises(AddressFault, match="not on local network"):
        client.nucleus.nd.open_lvc(make_uadd(50), "tcp:othernet:x:1")


def test_resolution_via_nsp_when_uncached(bed):
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    assert client.nucleus.addr_cache.lookup(uadd) is None
    lvc = client.nucleus.nd.open_lvc(uadd)  # no blob: ND resolves
    assert lvc.open
    assert client.nucleus.addr_cache.lookup(uadd) is not None


def test_hello_exchanges_machine_types(bed):
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    lvc = client.nucleus.nd.open_lvc(uadd)
    assert lvc.peer_mtype_name == "Sun-3"
    assert lvc.peer_addr == uadd
    assert "sun1" in lvc.peer_blob


def test_malformed_message_closes_circuit(bed):
    """Garbage on an LVC trips the header checks, closes the channel
    and counts the event — not a crash."""
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    lvc = client.nucleus.nd.open_lvc(uadd)
    # Inject raw garbage under the message layer.
    lvc.mchan.send_message(b"this is not an NTCS message")
    bed.settle()
    server = bed.modules["dest"]
    assert server.nucleus.counters["nd_malformed_messages"] == 1


def test_fault_notification_passed_upward(bed):
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 1, "text": "x"})
    faults_before = client.nucleus.counters["nd_channel_faults"]
    bed.modules["dest"].process.kill()
    bed.settle()
    assert client.nucleus.counters["nd_channel_faults"] > faults_before
    assert client.nucleus.counters["lcm_circuit_faults"] >= 1


def test_open_lvc_counts(bed):
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    nd = client.nucleus.nd
    base = nd.open_lvc_count()
    uadd = client.ali.locate("dest")
    lvc = nd.open_lvc(uadd)
    assert nd.open_lvc_count() == base + 1
    nd.close(lvc, "test over")
    assert nd.open_lvc_count() == base


def test_ns_address_blob_never_invalidated(bed):
    """The Sec. 6.3 guard: a failed open toward the naming service must
    not purge its well-known cache entry."""
    client = bed.module("client", "vax1")
    nucleus = client.nucleus
    ns_uadd = bed.wellknown.ns_uadd
    nucleus.addr_cache.store(ns_uadd, "tcp:ether0:vax1:411", "VAX")
    bed.name_server_instance.process.kill()
    bed.settle()
    with pytest.raises(AddressFault):
        nucleus.nd.open_lvc(ns_uadd, "tcp:ether0:vax1:411")
    assert nucleus.addr_cache.lookup(ns_uadd) is not None


def test_regular_address_invalidated_on_open_failure(bed):
    victim = bed.module("victim", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("victim")
    # Prime the cache, then kill the victim.
    client.nucleus.nd.open_lvc(uadd)
    assert client.nucleus.addr_cache.lookup(uadd) is not None
    victim.process.kill()
    bed.settle()
    blob = "tcp:ether0:sun1:32768"
    entry = client.nucleus.addr_cache.lookup(uadd)
    with pytest.raises(AddressFault):
        client.nucleus.nd.open_lvc(uadd, entry.blob if entry else blob)
    assert client.nucleus.addr_cache.lookup(uadd) is None
