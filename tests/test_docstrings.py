"""Documentation quality gate: every public module, class and function
in the library carries a docstring (deliverable (e): "doc comments on
every public item")."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for module_info in pkgutil.walk_packages(repro.__path__,
                                             prefix="repro."):
        yield importlib.import_module(module_info.name)


_MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", _MODULES,
                         ids=[m.__name__ for m in _MODULES])
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"{module.__name__} lacks a module docstring"
    )


def _public_items(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-export; documented at home
        yield name, obj


@pytest.mark.parametrize("module", _MODULES,
                         ids=[m.__name__ for m in _MODULES])
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, obj in _public_items(module):
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for method_name, method in vars(obj).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )
