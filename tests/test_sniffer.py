"""Tests for the wire sniffer, including wire-level faithfulness checks
of the paper's conversion claims."""

import pytest

from deployments import echo_server, single_net
from repro.netsim import Sniffer
from repro.ntcs import message as m
from repro.ntcs.message import HEADER_BYTES


@pytest.fixture
def bed():
    return single_net()


def test_sniffer_records_frames(bed):
    sniffer = Sniffer().attach(bed.networks["ether0"])
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 1, "text": "x"})
    assert len(sniffer) > 0
    assert sniffer.between("vax1", "sun1")
    sniffer.detach()
    count = len(sniffer)
    client.ali.call(uadd, "echo", {"n": 2, "text": "y"})
    assert len(sniffer) == count  # detached: nothing new


def test_sniffer_filter(bed):
    sniffer = Sniffer(
        keep=lambda d: d.payload and d.payload[0] == "SYN"
    ).attach(bed.networks["ether0"])
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 1, "text": "x"})
    assert len(sniffer) >= 1
    assert all(f.payload[0] == "SYN" for f in sniffer.frames)


def test_double_attach_rejected(bed):
    sniffer = Sniffer().attach(bed.networks["ether0"])
    with pytest.raises(RuntimeError):
        sniffer.attach(bed.networks["ether0"])


def _ntcs_messages(sniffer):
    """Parse NTCS messages out of sniffed TCP segments (length-framed)."""
    messages = []
    for blob in sniffer.payload_bytes():
        # Each TCP segment carries one framed message in these tests.
        if len(blob) >= 4 + HEADER_BYTES:
            try:
                messages.append(m.Msg.decode(bytes(blob[4:])))
            except Exception:
                pass
    return messages


def test_wire_headers_are_shift_mode_everywhere(bed):
    """Every NTCS message on the wire starts with the shift-mode magic
    in the same byte order, whatever machines are involved."""
    sniffer = Sniffer().attach(bed.networks["ether0"])
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    client.ali.call(uadd, "echo", {"n": 1, "text": "x"})
    framed = [b for b in sniffer.payload_bytes()
              if len(b) >= 4 + HEADER_BYTES]
    assert framed
    for blob in framed:
        assert bytes(blob[4:8]) == b"NTCS"  # magic, MSB first, always


def test_wire_bodies_between_unlike_machines_are_character_data(bed):
    """Sec. 5 at the byte level: sniff VAX→Sun application traffic and
    check the packed body really is the ASCII character transport
    format."""
    sniffer = Sniffer().attach(bed.networks["ether0"])
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    sniffer.clear()
    client.ali.call(uadd, "echo", {"n": 0x01020304, "text": "wired"})
    app_messages = [msg for msg in _ntcs_messages(sniffer)
                    if msg.kind == m.DATA and msg.type_id == 100]
    assert app_messages
    for msg in app_messages:
        assert msg.mode == 1  # packed on the wire
        assert all(9 <= byte < 127 for byte in msg.body), (
            "packed body must be character data"
        )
        assert b"16909060" in msg.body  # 0x01020304 as decimal ASCII
