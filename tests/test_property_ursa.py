"""Property-based URSA test: random boolean queries evaluated by the
distributed system must match a local reference evaluation."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from deployments import single_net
from repro import SUN3
from repro.ursa import Corpus, deploy_ursa
from repro.ursa.search_server import parse_query

# One shared deployment for all examples (hypothesis-friendly: cheap
# per-example work, deterministic state).
_CORPUS = Corpus(n_docs=40, seed=99)
_TERMS = _CORPUS.common_terms(6)
_TRUTH_INDEX = _CORPUS.build_inverted_index(_CORPUS.doc_ids())
_SYSTEM = None


def _system():
    global _SYSTEM
    if _SYSTEM is None:
        bed = single_net()
        bed.machine("sun2", SUN3, networks=["ether0"])
        ursa = deploy_ursa(
            bed, _CORPUS,
            index_machines=["sun1", "sun2"],
            search_machine="sun1",
            docs_machine="sun2",
            host_machines=["vax1"],
        )
        _SYSTEM = (bed, ursa)
    return _SYSTEM


def _local_eval(node):
    kind = node[0]
    if kind == "term":
        return set(_TRUTH_INDEX.get(node[1], []))
    if kind == "and":
        return _local_eval(node[1]) & _local_eval(node[2])
    if kind == "or":
        return _local_eval(node[1]) | _local_eval(node[2])
    return set(_CORPUS.doc_ids()) - _local_eval(node[1])


# Random query *text* built from a recursive strategy.
_query_text = st.recursive(
    st.sampled_from(_TERMS),
    lambda inner: st.one_of(
        st.tuples(inner, inner).map(lambda t: f"( {t[0]} AND {t[1]} )"),
        st.tuples(inner, inner).map(lambda t: f"( {t[0]} OR {t[1]} )"),
        inner.map(lambda q: f"NOT {q}"),
    ),
    max_leaves=6,
)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(query=_query_text)
def test_property_distributed_search_matches_local(query):
    bed, ursa = _system()
    host = ursa.hosts[0]
    expected = sorted(_local_eval(parse_query(query)))
    assert host.search(query) == expected


@settings(max_examples=40, deadline=None)
@given(query=_query_text)
def test_property_parser_round_trips_structure(query):
    """Parsing is deterministic and total over generated queries."""
    ast1 = parse_query(query)
    ast2 = parse_query(query)
    assert ast1 == ast2
