"""Focused tests for LCM-Layer mechanics: forwarding chains, call
handles, connectionless behaviour, queue semantics."""

import pytest

from deployments import echo_server, single_net
from repro.errors import DestinationUnavailable, ReplyTimeout
from repro.ntcs.address import make_uadd


@pytest.fixture
def bed():
    return single_net()


def test_forwarding_chain_followed_transitively(bed):
    client = bed.module("client", "vax1")
    lcm = client.nucleus.lcm
    a, b, c = make_uadd(101), make_uadd(102), make_uadd(103)
    lcm.forwarding[a] = b
    lcm.forwarding[b] = c
    assert lcm._follow_forwarding(a) == c
    assert lcm._follow_forwarding(b) == c
    assert lcm._follow_forwarding(c) == c


def test_forwarding_cycle_detected(bed):
    client = bed.module("client", "vax1")
    lcm = client.nucleus.lcm
    a, b = make_uadd(101), make_uadd(102)
    lcm.forwarding[a] = b
    lcm.forwarding[b] = a
    with pytest.raises(DestinationUnavailable, match="cycle"):
        lcm._follow_forwarding(a)


def test_rekey_route_moves_forwarding_too(bed):
    client = bed.module("client", "vax1")
    lcm = client.nucleus.lcm
    from repro.ntcs.address import Address
    tadd = Address(value=5, temporary=True)
    target = make_uadd(200)
    lcm.forwarding[tadd] = target
    real = make_uadd(201)
    lcm.rekey_route(tadd, real)
    assert lcm.forwarding == {real: target}


def test_call_handle_states(bed):
    echo_server(bed, "dest", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("dest")
    handle = client.ali.call_async(uadd, "echo", {"n": 1, "text": "x"})
    assert not handle.ready
    reply = handle.result(timeout=2.0)
    assert handle.ready
    assert reply.values["text"] == "X"


def test_call_handle_timeout(bed):
    silent = bed.module("silent", "sun1")  # no handler: requests queue
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("silent")
    handle = client.ali.call_async(uadd, "echo", {"n": 1, "text": "x"})
    with pytest.raises(ReplyTimeout):
        handle.result(timeout=0.3)


def test_call_handle_error_on_peer_death(bed):
    victim = bed.module("victim", "sun1")
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("victim")
    handle = client.ali.call_async(uadd, "echo", {"n": 1, "text": "x"})
    victim.process.kill()
    bed.settle()
    with pytest.raises(DestinationUnavailable):
        handle.result(timeout=1.0)


def test_receive_queue_fifo(bed):
    sink = bed.module("sink", "sun1")
    src = bed.module("src", "vax1")
    uadd = src.ali.locate("sink")
    for i in range(5):
        src.ali.send(uadd, "echo", {"n": i, "text": ""})
    bed.settle()
    got = [sink.ali.receive(timeout=0.1).values["n"] for _ in range(5)]
    assert got == [0, 1, 2, 3, 4]
    assert sink.nucleus.lcm.queued() == 0


def test_handler_bypasses_queue(bed):
    handled = []
    sink = bed.module("sink", "sun1")
    sink.ali.set_request_handler(lambda m: handled.append(m.values["n"]))
    src = bed.module("src", "vax1")
    uadd = src.ali.locate("sink")
    src.ali.send(uadd, "echo", {"n": 7, "text": ""})
    bed.settle()
    assert handled == [7]
    assert sink.nucleus.lcm.queued() == 0
    # Removing the handler restores queueing.
    sink.ali.set_request_handler(None)
    src.ali.send(uadd, "echo", {"n": 8, "text": ""})
    bed.settle()
    assert sink.nucleus.lcm.queued() == 1


def test_orphan_reply_counted_not_crashing(bed):
    """A reply whose correlation id no longer matches any pending call
    (e.g. after a timeout) must be dropped gracefully."""
    slow = bed.module("slow", "sun1")

    def handle_later(request):
        slow.nucleus.scheduler.schedule(
            1.0, lambda: slow.ali.reply(request, "echo", {
                "n": request.values["n"], "text": "late"}))

    slow.ali.set_request_handler(handle_later)
    client = bed.module("client", "vax1")
    uadd = client.ali.locate("slow")
    with pytest.raises(ReplyTimeout):
        client.ali.call(uadd, "echo", {"n": 1, "text": "x"}, timeout=0.2)
    bed.settle()  # the late reply arrives now
    assert client.nucleus.counters["lcm_orphan_replies"] == 1


def test_undecodable_message_counted_not_crashing(bed):
    """A message whose type id is unknown at the receiver is logged and
    dropped, not fatal (the registry mismatch case)."""
    from repro.conversion import Field, StructDef

    sink = bed.module("sink", "sun1")
    src = bed.module("src", "vax1")
    # Register a type only the sender knows.
    private = StructDef("private_type", 999, [Field("x", "u32")])
    src_entry = bed.registry  # shared registry in the testbed...
    # Simulate the mismatch by sending a type id the receiver's decode
    # path will reject: craft a raw DATA message with a bogus type id.
    uadd = src.ali.locate("sink")
    src.ali.send(uadd, "echo", {"n": 1, "text": "good"})
    bed.settle()
    # Now inject a corrupted body directly through the send path.
    lcm = src.nucleus.lcm
    ivc = lcm._routes[uadd]
    from repro.ntcs import message as m
    bogus = m.Msg(kind=m.DATA, src=src.address, dst=uadd,
                  flags=m.FLAG_PACKED, type_id=9999, corr_id=0,
                  body=b"garbage")
    src.nucleus.ip.send_raw(ivc, bogus)
    bed.settle()
    assert sink.nucleus.counters["lcm_undecodable_messages"] == 1
    assert sink.nucleus.error_log  # logged for the Sec. 6.3 error table
    # The good message is still there; the module survived.
    assert sink.ali.receive(timeout=0.1).values["n"] == 1


def test_datagram_flag_visible_to_receiver(bed):
    sink = bed.module("sink", "sun1")
    src = bed.module("src", "vax1")
    uadd = src.ali.locate("sink")
    src.ali.datagram(uadd, "echo", {"n": 1, "text": ""})
    bed.settle()
    message = sink.ali.receive(timeout=0.1)
    assert message.connectionless
    assert not message.reply_expected
